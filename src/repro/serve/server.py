"""The asyncio serving tier: fair admission in front of the governor.

:class:`AQPServer` turns the process-local :class:`QueryGovernor` into
a multi-tenant network service with an explicit lifecycle for every
query: ``queued → running → done`` on the happy path, and *typed*
``rejected`` / ``cancelled`` / ``error`` / ``lost`` everywhere else.
The design invariant is the serving-tier restatement of the repo's
honesty contract: **an accepted query is never silent** — it resolves
to a result, a typed rejection with a computed retry-after, or an
honest cancelled/lost outcome, even across a SIGTERM or a crash.

Architecture notes:

* All serving state (records, tenant accounting, the fair queue) is
  touched only on the event-loop thread.  Query execution happens in a
  small thread pool (``governor.execute`` blocks), and outcomes are
  marshalled back with ``call_soon_threadsafe`` — no locks in the
  serving tier itself.
* The server's weighted fair queue is the *primary* queue; the
  dispatcher admits at most the governor's slot count concurrently, so
  the governor's own bounded queue is only a safety net and the WFQ
  ordering is what actually decides who runs next.
* Deadlines propagate end to end: a client deadline (relative seconds
  or an absolute wall-clock instant, clock-skew clamped) becomes the
  monotonic deadline on the query's
  :class:`~repro.governor.cancel.CancelToken`, which the pipeline,
  pool, and retry-backoff paths already honour.
* Retry-after is computed, not guessed: queue depth times the EWMA
  service time per slot, floored by the circuit breaker's remaining
  cooldown — the instant at which retrying can actually succeed.
* Identical concurrently-queued queries (same shape *and* bindings —
  byte-identical work, so sharing cannot change any answer) are
  superset-batched: one leader executes, followers fan out its result.
  A leader failure never poisons followers: they are retried
  individually at the head of the queue.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import (
    AdmissionRejectedError,
    BoundUnachievableError,
    ProtocolError,
    QueryCancelledError,
    ReproError,
)
from repro.governor.cancel import CancelToken
from repro.obs.metrics import METRICS
from repro.serve import protocol
from repro.serve.journal import ServingJournal
from repro.serve.tenants import FairQueue, TenantConfig, TenantState
from repro.sql.ast import WithinClause
from repro.sql.fingerprint import share_key

logger = logging.getLogger(__name__)

__all__ = ["AQPServer", "ServeConfig", "ServerThread"]


@dataclass
class ServeConfig:
    """Tunable behaviour of :class:`AQPServer`.

    Attributes:
        host / port: listen address; port 0 picks a free port
            (``server.port`` reports the bound one).
        tenants: explicit per-tenant policies by name.  Unknown tenants
            are admitted under ``default_tenant`` re-labelled for their
            name when ``allow_dynamic_tenants`` is set, else rejected.
        default_tenant: the policy template for dynamic tenants.
        allow_dynamic_tenants: admit tenants not configured up front.
        max_queue_depth: global bound on queued-but-not-running
            queries across all tenants; beyond it submissions are shed
            with ``reason="queue_full"``.
        max_deadline_seconds: clock-skew clamp — no client deadline,
            relative or absolute, may exceed this horizon.  An absolute
            deadline from a skewed clock lands in
            ``[0, max_deadline_seconds]`` instead of creating a query
            that can never be shed (deadline in the far future) or one
            rejected spuriously (deadline in the past by skew alone).
        drain_budget_seconds: default graceful-drain budget: in-flight
            queries get this long to finish before their tokens are
            cancelled.
        allow_remote_drain: accept the ``drain`` op over the wire
            (operators embedding the server in-process can always call
            :meth:`AQPServer.drain` directly).
        sharing: enable cross-query superset batching.
        max_share_fanout: cap on followers attached to one leader.
        sweep_interval_seconds: cadence of the background sweeper that
            rejects queue-expired entries and prunes old records.
        result_retention_seconds: how long a terminal record stays
            pollable before the sweeper prunes it.
        max_records: hard cap on retained records (oldest terminal
            records are pruned first).
        journal_dir: where the crash-consistency journal lives; ``None``
            disables journaling (honest-across-restart outcomes are
            lost, everything else works).
        journal_fsync: fsync journal appends (see
            :class:`~repro.serve.journal.ServingJournal`).
    """

    host: str = "127.0.0.1"
    port: int = 0
    tenants: Optional[dict[str, TenantConfig]] = None
    default_tenant: TenantConfig = field(
        default_factory=lambda: TenantConfig(name="default")
    )
    allow_dynamic_tenants: bool = True
    max_queue_depth: int = 64
    max_deadline_seconds: float = 300.0
    drain_budget_seconds: float = 5.0
    # After a SIGTERM-initiated drain, keep the listener answering
    # polls for this long so clients can collect their outcomes
    # before the process exits.
    drain_linger_seconds: float = 2.0
    allow_remote_drain: bool = False
    sharing: bool = True
    max_share_fanout: int = 16
    sweep_interval_seconds: float = 0.25
    result_retention_seconds: float = 600.0
    max_records: int = 4096
    journal_dir: Optional[str] = None
    journal_fsync: bool = True

    def __post_init__(self):
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be non-negative")
        if self.max_deadline_seconds <= 0:
            raise ValueError("max_deadline_seconds must be positive")
        if self.max_share_fanout < 0:
            raise ValueError("max_share_fanout must be non-negative")


#: Engine options a submit message may carry, forwarded verbatim to
#: ``governor.execute`` after type checking.
_ENGINE_OPTIONS = {
    "confidence": float,
    "error_bound": float,
    "run_diagnostics": bool,
    "within_relative_error": float,
    "within_absolute_error": float,
    "within_time_budget_seconds": float,
}

#: Submit fields folded into one ``WithinClause`` engine kwarg (the
#: bounded-query contract; exactly one bound kind may be given).
_WITHIN_FIELDS = (
    "within_relative_error",
    "within_absolute_error",
    "within_time_budget_seconds",
)


@dataclass
class QueryRecord:
    """One query's serving-side lifecycle (event-loop-thread only)."""

    query_id: str
    sql: str
    tenant: str
    token: CancelToken
    engine_kwargs: dict
    share: Optional[tuple] = None
    state: str = "queued"
    vft: float = 0.0
    requeued: bool = False
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    deadline_seconds: Optional[float] = None
    result_json: Optional[dict] = None
    error: Optional[dict] = None
    shared_with: Optional[str] = None
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def terminal(self) -> bool:
        return self.state in protocol.TERMINAL_STATES


class AQPServer:
    """Multi-tenant line-protocol server over a :class:`QueryGovernor`.

    Args:
        governor: the admission/execution layer; the server never
            executes SQL itself.
        config: serving policy; defaults are test-appropriate
            (loopback, free port, dynamic tenants, no journal).
    """

    def __init__(self, governor, config: ServeConfig | None = None):
        self.governor = governor
        self.config = config or ServeConfig()
        gov = governor.config
        extra = gov.max_overflow if gov.shed_policy == "degrade" else 0
        #: Leader executions allowed concurrently — exactly the
        #: governor's slot count, so its internal queue stays empty and
        #: WFQ order is the true dispatch order.
        self.dispatch_limit = gov.max_concurrency + extra
        self.journal: Optional[ServingJournal] = None
        if self.config.journal_dir is not None:
            self.journal = ServingJournal(
                self.config.journal_dir, fsync=self.config.journal_fsync
            )
        self._tenants: dict[str, TenantState] = {}
        for name, tconf in (self.config.tenants or {}).items():
            self._tenants[name] = TenantState(config=tconf.for_name(name))
        self._queue = FairQueue()
        self._queued_by_key: dict[tuple, list[QueryRecord]] = {}
        self._records: dict[str, QueryRecord] = {}
        self._order = itertools.count(1)
        self._running = 0
        self._ewma_service = 0.5  # seconds; refined by real completions
        self._draining = False
        self._drain_deadline: Optional[float] = None
        self._closed = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._work: Optional[asyncio.Event] = None
        self._tasks: list[asyncio.Task] = []
        self._connections: set[asyncio.StreamWriter] = set()
        self.recovered_lost = 0

    # -- lifecycle ---------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind, recover the journal, and start background tasks."""
        self._loop = asyncio.get_running_loop()
        self._work = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.dispatch_limit,
            thread_name_prefix="repro-serve",
        )
        self._recover_journal()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=protocol.MAX_LINE_BYTES + 1024,
        )
        self._tasks.append(self._loop.create_task(self._dispatcher()))
        self._tasks.append(self._loop.create_task(self._sweeper()))
        logger.info(
            "serving on %s:%d (dispatch_limit=%d, sharing=%s, journal=%s)",
            self.config.host,
            self.port,
            self.dispatch_limit,
            self.config.sharing,
            self.config.journal_dir or "off",
        )

    def _recover_journal(self) -> None:
        """Turn the previous generation's in-flight queries into honest
        ``lost`` outcomes, pollable by their original ids."""
        if self.journal is None:
            return
        open_entries = self.journal.recover()
        for query_id, entry in open_entries.items():
            tenant_name = entry.get("tenant", "default")
            tenant = self._tenant_for(tenant_name, create=True)
            if tenant is not None:
                tenant.lost += 1
            record = QueryRecord(
                query_id=query_id,
                sql=str(entry.get("sql", "")),
                tenant=tenant_name,
                token=CancelToken(),
                engine_kwargs={},
                state="lost",
                submitted_at=time.monotonic(),
            )
            record.finished_at = time.monotonic()
            record.error = {
                "reason": "server_restart",
                "message": (
                    "the server restarted while this query was "
                    f"{entry.get('state', 'in flight')}; it may or may "
                    "not have executed and no result was retained"
                ),
            }
            record.done_event.set()
            self._records[query_id] = record
            self.journal.record(query_id, "lost", tenant=tenant_name)
            METRICS.counter("serve.lost").inc()
            self.recovered_lost += 1
        if open_entries:
            logger.warning(
                "journal recovery: %d in-flight query(ies) from the "
                "previous run reported as lost",
                len(open_entries),
            )
        self.journal.compact({})

    async def drain(self, budget_seconds: float | None = None) -> dict:
        """Graceful drain: stop admissions, finish or cancel, persist.

        Queued queries are rejected immediately (typed ``draining``,
        retry-after = the drain budget — the soonest a replacement
        process could be answering).  In-flight queries get the budget
        to finish honestly; past it their tokens are cancelled and the
        cooperative machinery unwinds them with cleanup guaranteed.
        """
        if self._draining:
            return {"ok": True, "already_draining": True}
        budget = (
            self.config.drain_budget_seconds
            if budget_seconds is None
            else max(0.0, float(budget_seconds))
        )
        self._draining = True
        self._drain_deadline = time.monotonic() + budget
        METRICS.gauge("serve.draining").set(1)
        rejected = 0
        for record in self._queue.drain_all():
            self._resolve_rejection(
                record,
                reason="draining",
                message=(
                    "the server is draining for shutdown; "
                    "the query never executed"
                ),
                retry_after=budget,
            )
            rejected += 1
        self._queued_by_key.clear()
        logger.info(
            "draining: %d queued rejected, %d in flight, budget %.1fs",
            rejected,
            self._running,
            budget,
        )
        # Phase 1: let in-flight work finish inside the budget.
        while self._running > 0 and time.monotonic() < self._drain_deadline:
            await asyncio.sleep(0.02)
        cancelled = 0
        if self._running > 0:
            for record in self._records.values():
                if record.state in ("running", "shared"):
                    record.token.cancel(
                        "server draining past its "
                        f"{budget:.1f}s budget"
                    )
                    cancelled += 1
            # Phase 2: cooperative cancellation unwinds quickly, but
            # bound the wait so a wedged worker cannot block shutdown
            # forever — anything still open becomes ``lost`` honestly
            # on the next start.
            grace = time.monotonic() + max(5.0, budget)
            while self._running > 0 and time.monotonic() < grace:
                await asyncio.sleep(0.02)
        if self.journal is not None:
            open_entries = {
                r.query_id: {
                    "v": 1,
                    "id": r.query_id,
                    "state": r.state,
                    "tenant": r.tenant,
                }
                for r in self._records.values()
                if not r.terminal
            }
            self.journal.compact(open_entries)
        summary = {
            "ok": True,
            "rejected_queued": rejected,
            "cancelled_in_flight": cancelled,
            "still_running": self._running,
        }
        logger.info("drain complete: %s", summary)
        return summary

    async def stop(self, drain_budget_seconds: float | None = None) -> None:
        """Drain, then tear everything down (idempotent)."""
        if self._closed:
            return
        await self.drain(drain_budget_seconds)
        self._closed = True
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._connections):
            writer.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
        if self.journal is not None:
            self.journal.close()
        METRICS.gauge("serve.draining").set(0)

    async def serve_forever(self) -> None:
        """Run until SIGTERM/SIGINT, then drain gracefully and exit."""
        import signal

        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop_requested.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await stop_requested.wait()
        logger.info("shutdown signal received; draining")
        await self.drain()
        linger = max(0.0, self.config.drain_linger_seconds)
        if linger > 0:
            # Every record is terminal now; give clients a window to
            # poll their outcomes before the listener goes away.
            logger.info(
                "drain complete; answering polls for %.1fs before exit",
                linger,
            )
            await asyncio.sleep(linger)
        await self.stop()

    # -- tenants -----------------------------------------------------------
    def _tenant_for(
        self, name: str, create: bool | None = None
    ) -> Optional[TenantState]:
        tenant = self._tenants.get(name)
        if tenant is not None:
            return tenant
        allowed = (
            self.config.allow_dynamic_tenants if create is None else create
        )
        if not allowed:
            return None
        tenant = TenantState(config=self.config.default_tenant.for_name(name))
        self._tenants[name] = tenant
        return tenant

    # -- submit ------------------------------------------------------------
    def _retry_after(self) -> float:
        """When could a retry plausibly be admitted?

        Queue depth × EWMA service seconds ÷ slots estimates when the
        backlog ahead of a new arrival clears; while the breaker is
        open nothing good happens before its next probe, so that
        cooldown is the floor.
        """
        per_slot = self._ewma_service / max(1, self.dispatch_limit)
        estimate = (len(self._queue) + 1) * per_slot
        return max(
            0.05,
            estimate,
            self.governor.breaker.cooldown_remaining(),
        )

    def _resolve_deadline(
        self, message: dict
    ) -> tuple[Optional[float], Optional[str]]:
        """Client deadline → clamped relative seconds (or typed error).

        Returns ``(relative_seconds_or_None, error_message_or_None)``.
        Absolute wall-clock deadlines are converted against this
        server's clock and clamped into ``[0, max_deadline_seconds]``:
        a client whose clock runs ahead cannot buy an unshardable
        query, and one whose clock lags is not rejected by skew alone
        (a small positive budget survives the clamp; a deadline beyond
        one full horizon in the past is genuinely expired).
        """
        cap = self.config.max_deadline_seconds
        relative = message.get("deadline_seconds")
        absolute = message.get("deadline_unix")
        if relative is not None and absolute is not None:
            return None, "give deadline_seconds or deadline_unix, not both"
        if relative is not None:
            try:
                relative = float(relative)
            except (TypeError, ValueError):
                return None, "deadline_seconds must be a number"
            if relative <= 0:
                return None, None  # expired on arrival
            return min(relative, cap), None
        if absolute is not None:
            try:
                absolute = float(absolute)
            except (TypeError, ValueError):
                return None, "deadline_unix must be a number"
            remaining = absolute - time.time()
            if remaining <= -cap:
                return None, None  # expired beyond any plausible skew
            return min(max(remaining, 0.0), cap) or None, None
        return None, None

    def _op_submit(self, message: dict) -> dict:
        METRICS.counter("serve.submitted").inc()
        sql = message.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            return protocol.error_response(
                "bad_request", "submit requires a non-empty 'sql' string"
            )
        tenant_name = message.get("tenant", "default")
        if not isinstance(tenant_name, str) or not tenant_name:
            return protocol.error_response(
                "bad_request", "'tenant' must be a non-empty string"
            )
        tenant = self._tenant_for(tenant_name)
        if tenant is None:
            return protocol.error_response(
                "bad_request",
                f"unknown tenant {tenant_name!r} and dynamic tenants "
                "are disabled",
            )
        tenant.submitted += 1

        engine_kwargs: dict[str, Any] = {}
        for key, kind in _ENGINE_OPTIONS.items():
            if key in message and message[key] is not None:
                try:
                    engine_kwargs[key] = kind(message[key])
                except (TypeError, ValueError):
                    return protocol.error_response(
                        "bad_request", f"{key!r} must be a {kind.__name__}"
                    )
        if any(key in engine_kwargs for key in _WITHIN_FIELDS):
            try:
                engine_kwargs["within"] = WithinClause(
                    relative_error=engine_kwargs.pop(
                        "within_relative_error", None
                    ),
                    absolute_error=engine_kwargs.pop(
                        "within_absolute_error", None
                    ),
                    time_budget_seconds=engine_kwargs.pop(
                        "within_time_budget_seconds", None
                    ),
                    confidence=engine_kwargs.get("confidence"),
                )
            except ValueError as exc:
                return protocol.error_response("bad_request", str(exc))

        # Backpressure ladder, cheapest check first; every rung is a
        # typed 429 with a computed retry-after.
        if self._draining:
            remaining = (
                max(0.0, self._drain_deadline - time.monotonic())
                if self._drain_deadline is not None
                else self.config.drain_budget_seconds
            )
            return self._reject_submit(
                tenant,
                reason="draining",
                message_text="the server is draining for shutdown",
                retry_after=remaining + 1.0,
            )
        rate_wait = tenant.rate_retry_after()
        if rate_wait is not None:
            return self._reject_submit(
                tenant,
                reason="rate_limited",
                message_text=(
                    f"tenant {tenant_name!r} exceeded "
                    f"{tenant.config.rate_limit} submissions per "
                    f"{tenant.config.rate_window_seconds}s window"
                ),
                retry_after=rate_wait,
            )
        if tenant.in_flight >= tenant.config.max_in_flight:
            return self._reject_submit(
                tenant,
                reason="tenant_concurrency",
                message_text=(
                    f"tenant {tenant_name!r} already has "
                    f"{tenant.in_flight} queries in flight "
                    f"(cap {tenant.config.max_in_flight})"
                ),
                retry_after=self._retry_after(),
            )
        if len(self._queue) >= self.config.max_queue_depth:
            return self._reject_submit(
                tenant,
                reason="queue_full",
                message_text=(
                    f"the serving queue is full "
                    f"({self.config.max_queue_depth} waiting)"
                ),
                retry_after=self._retry_after(),
            )

        deadline_rel, deadline_err = self._resolve_deadline(message)
        if deadline_err is not None:
            return protocol.error_response("bad_request", deadline_err)
        if deadline_rel is None and (
            "deadline_seconds" in message or "deadline_unix" in message
        ):
            return self._reject_submit(
                tenant,
                reason="deadline_expired",
                message_text=(
                    "the deadline had already passed at submission "
                    "(after clock-skew clamping); the query never ran"
                ),
                retry_after=None,
            )

        token = (
            CancelToken(deadline=time.monotonic() + deadline_rel)
            if deadline_rel is not None
            else CancelToken()
        )
        query_id = uuid.uuid4().hex[:16]
        record = QueryRecord(
            query_id=query_id,
            sql=sql,
            tenant=tenant_name,
            token=token,
            engine_kwargs=engine_kwargs,
            share=share_key(sql) if self.config.sharing else None,
            submitted_at=time.monotonic(),
            deadline_seconds=deadline_rel,
        )
        self._records[query_id] = record
        tenant.note_admitted()
        if self.journal is not None:
            self.journal.record(
                query_id,
                "accepted",
                tenant=tenant_name,
                sql=sql[:200],
            )
        self._queue.push(tenant, record)
        if record.share is not None:
            self._queued_by_key.setdefault(record.share, []).append(record)
        METRICS.counter("serve.accepted").inc()
        METRICS.counter(f"serve.tenant.{tenant_name}.accepted").inc()
        METRICS.gauge("serve.queue_depth").set(len(self._queue))
        self._work.set()
        return {
            "ok": True,
            "query_id": query_id,
            "state": "queued",
            "queue_depth": len(self._queue),
        }

    def _reject_submit(
        self,
        tenant: TenantState,
        reason: str,
        message_text: str,
        retry_after: Optional[float],
    ) -> dict:
        tenant.rejected += 1
        METRICS.counter("serve.rejected").inc()
        METRICS.counter(f"serve.rejected.{reason}").inc()
        METRICS.counter(f"serve.tenant.{tenant.name}.rejected").inc()
        return protocol.rejection_response(reason, message_text, retry_after)

    # -- dispatch ----------------------------------------------------------
    async def _dispatcher(self) -> None:
        while True:
            await self._work.wait()
            self._work.clear()
            while (
                not self._draining
                and self._running < self.dispatch_limit
                and len(self._queue) > 0
            ):
                record = self._queue.pop()
                if record is None:
                    break
                self._unindex_share(record)
                METRICS.gauge("serve.queue_depth").set(len(self._queue))
                if record.terminal:
                    continue  # cancelled while queued; already resolved
                if record.token.expired:
                    self._reject_queue_expired(record)
                    continue
                if record.token.cancelled:
                    self._resolve_cancelled(
                        record, "cancelled while queued; never executed"
                    )
                    continue
                followers = self._gather_followers(record)
                self._start_execution(record, followers)

    def _unindex_share(self, record: QueryRecord) -> None:
        if record.share is None:
            return
        peers = self._queued_by_key.get(record.share)
        if peers is not None:
            try:
                peers.remove(record)
            except ValueError:
                pass
            if not peers:
                self._queued_by_key.pop(record.share, None)

    def _gather_followers(self, leader: QueryRecord) -> list[QueryRecord]:
        """Attach queued byte-identical queries to ``leader``.

        Only never-requeued entries share (a follower whose leader
        failed retries strictly individually), and only up to
        ``max_share_fanout`` — a bounded blast radius for one bad
        batch.
        """
        if (
            leader.share is None
            or leader.requeued
            or not self.config.sharing
        ):
            return []
        peers = self._queued_by_key.get(leader.share, [])
        followers: list[QueryRecord] = []
        for peer in list(peers):
            if len(followers) >= self.config.max_share_fanout:
                break
            if peer.requeued or peer.terminal:
                continue
            if not self._queue.remove(peer):
                continue
            self._unindex_share(peer)
            peer.state = "shared"
            peer.shared_with = leader.query_id
            followers.append(peer)
            if self.journal is not None:
                self.journal.record(
                    peer.query_id,
                    "shared",
                    tenant=peer.tenant,
                    leader=leader.query_id,
                )
            METRICS.counter("serve.shared").inc()
        if followers:
            METRICS.gauge("serve.queue_depth").set(len(self._queue))
        return followers

    def _start_execution(
        self, leader: QueryRecord, followers: list[QueryRecord]
    ) -> None:
        leader.state = "running"
        leader.started_at = time.monotonic()
        self._running += 1
        METRICS.gauge("serve.running").set(self._running)
        if self.journal is not None:
            self.journal.record(
                leader.query_id, "running", tenant=leader.tenant
            )

        def run() -> None:
            try:
                result = self.governor.execute(
                    leader.sql,
                    cancel=leader.token,
                    **leader.engine_kwargs,
                )
                outcome = ("done", result)
            except BaseException as error:  # marshalled, never raised here
                outcome = ("raised", error)
            self._loop.call_soon_threadsafe(
                self._on_execution_done, leader, followers, outcome
            )

        self._executor.submit(run)

    def _on_execution_done(
        self,
        leader: QueryRecord,
        followers: list[QueryRecord],
        outcome: tuple,
    ) -> None:
        self._running -= 1
        METRICS.gauge("serve.running").set(self._running)
        kind, payload = outcome
        if kind == "done":
            elapsed = time.monotonic() - (
                leader.started_at or leader.submitted_at
            )
            self._ewma_service = 0.8 * self._ewma_service + 0.2 * elapsed
            result_json = protocol.result_to_json(payload)
            self._resolve_done(leader, result_json, shared=False)
            for follower in followers:
                if follower.token.cancelled and not follower.token.expired:
                    # Explicit cancel while attached: honour it even
                    # though the answer exists.
                    self._resolve_cancelled(
                        follower,
                        "cancelled while sharing a leader's execution",
                    )
                else:
                    # The result exists and is exactly this query's
                    # answer; delivering it beats rejecting on a
                    # deadline that expired moments ago.
                    self._resolve_done(follower, result_json, shared=True)
        else:
            self._resolve_raised(leader, payload)
            # Leader failure is isolated: followers go back to the
            # *head* of the queue (they already waited their fair
            # turn) and retry individually, never re-shared.
            for follower in reversed(followers):
                if follower.token.cancelled:
                    if follower.token.expired:
                        self._reject_queue_expired(follower)
                    else:
                        self._resolve_cancelled(
                            follower,
                            "cancelled while sharing a leader's execution",
                        )
                    continue
                follower.state = "queued"
                follower.shared_with = None
                follower.requeued = True
                METRICS.counter("serve.share_retry").inc()
                if self._draining:
                    self._resolve_rejection(
                        follower,
                        reason="draining",
                        message=(
                            "the server began draining while this query "
                            "was awaiting a shared result; it never "
                            "executed individually"
                        ),
                        retry_after=self.config.drain_budget_seconds,
                    )
                    continue
                self._queue.push_front(follower)
            METRICS.gauge("serve.queue_depth").set(len(self._queue))
        self._work.set()

    # -- resolution --------------------------------------------------------
    def _finish(self, record: QueryRecord, state: str) -> None:
        record.state = state
        record.finished_at = time.monotonic()
        tenant = self._tenants.get(record.tenant)
        if tenant is not None:
            tenant.in_flight = max(0, tenant.in_flight - 1)
        if self.journal is not None:
            self.journal.record(record.query_id, state, tenant=record.tenant)
        record.done_event.set()

    def _resolve_done(
        self, record: QueryRecord, result_json: dict, shared: bool
    ) -> None:
        record.result_json = result_json
        if shared:
            record.result_json = dict(result_json, shared=True)
            tenant = self._tenants.get(record.tenant)
            if tenant is not None:
                tenant.shared += 1
        self._finish(record, "done")
        tenant = self._tenants.get(record.tenant)
        if tenant is not None:
            tenant.completed += 1
        METRICS.counter("serve.completed").inc()
        METRICS.counter(f"serve.tenant.{record.tenant}.completed").inc()

    def _resolve_raised(self, record: QueryRecord, error: BaseException):
        if isinstance(error, AdmissionRejectedError):
            self._resolve_rejection(
                record,
                reason=error.reason,
                message=str(error),
                retry_after=(
                    error.retry_after_seconds
                    if error.retry_after_seconds is not None
                    else self._retry_after()
                ),
            )
        elif isinstance(error, QueryCancelledError):
            self._resolve_cancelled(record, str(error))
        else:
            record.error = {
                "type": type(error).__name__,
                "message": str(error),
                "recoverable": isinstance(error, ReproError),
            }
            if isinstance(error, BoundUnachievableError):
                # The honest refusal carries everything a client needs
                # to resubmit with a feasible contract.
                record.error["bound_kind"] = error.kind
                record.error["requested_bound"] = error.requested
                record.error["achievable_bound"] = error.achievable
            self._finish(record, "error")
            tenant = self._tenants.get(record.tenant)
            if tenant is not None:
                tenant.errors += 1
            METRICS.counter("serve.errors").inc()
            if not isinstance(error, ReproError):
                logger.exception(
                    "internal error executing %s", record.query_id,
                    exc_info=error,
                )

    def _resolve_rejection(
        self,
        record: QueryRecord,
        reason: str,
        message: str,
        retry_after: Optional[float],
    ) -> None:
        record.error = {
            "reason": reason,
            "message": message,
            "retry_after_seconds": retry_after,
        }
        self._finish(record, "rejected")
        tenant = self._tenants.get(record.tenant)
        if tenant is not None:
            tenant.rejected += 1
        METRICS.counter("serve.rejected").inc()
        METRICS.counter(f"serve.rejected.{reason}").inc()

    def _resolve_cancelled(self, record: QueryRecord, message: str) -> None:
        record.error = {"reason": "cancelled", "message": message}
        self._finish(record, "cancelled")
        tenant = self._tenants.get(record.tenant)
        if tenant is not None:
            tenant.cancelled += 1
        METRICS.counter("serve.cancelled").inc()

    def _reject_queue_expired(self, record: QueryRecord) -> None:
        waited = time.monotonic() - record.submitted_at
        METRICS.counter("serve.queue_deadline_expired").inc()
        self._resolve_rejection(
            record,
            reason="queue_deadline_expired",
            message=(
                f"deadline expired after {waited:.2f}s in the serving "
                "queue; the query never executed"
            ),
            retry_after=None,
        )

    # -- poll / cancel -----------------------------------------------------
    def _poll_payload(self, record: QueryRecord) -> dict:
        payload: dict[str, Any] = {
            "ok": True,
            "query_id": record.query_id,
            "state": record.state,
            "tenant": record.tenant,
        }
        if record.state == "done":
            payload["result"] = record.result_json
        elif record.error is not None:
            payload.update(record.error)
        if record.finished_at is not None:
            payload["elapsed_seconds"] = round(
                record.finished_at - record.submitted_at, 4
            )
        return payload

    async def _op_poll(self, message: dict) -> dict:
        query_id = message.get("query_id")
        record = self._records.get(query_id) if isinstance(query_id, str) else None
        if record is None:
            return protocol.error_response(
                "unknown_query",
                f"no query {query_id!r} (expired, pruned, or never "
                "accepted)",
            )
        wait = message.get("wait_seconds")
        if wait is not None and not record.terminal:
            try:
                wait = max(0.0, min(float(wait), 60.0))
            except (TypeError, ValueError):
                return protocol.error_response(
                    "bad_request", "'wait_seconds' must be a number"
                )
            try:
                await asyncio.wait_for(record.done_event.wait(), wait)
            except asyncio.TimeoutError:
                pass
        return self._poll_payload(record)

    def _op_cancel(self, message: dict) -> dict:
        query_id = message.get("query_id")
        record = self._records.get(query_id) if isinstance(query_id, str) else None
        if record is None:
            return protocol.error_response(
                "unknown_query", f"no query {query_id!r}"
            )
        if record.terminal:
            return self._poll_payload(record)
        if record.state == "queued" and self._queue.remove(record):
            # Satellite case: Ctrl-C (or any client cancel) while the
            # query is still queued removes it cleanly — no slot was
            # ever consumed, no execution ever starts.
            self._unindex_share(record)
            METRICS.counter("serve.queue_cancelled").inc()
            METRICS.gauge("serve.queue_depth").set(len(self._queue))
            record.token.cancel("cancelled by client while queued")
            self._resolve_cancelled(
                record, "cancelled while queued; never executed"
            )
            return self._poll_payload(record)
        record.token.cancel("cancelled by client")
        return {
            "ok": True,
            "query_id": record.query_id,
            "state": record.state,
            "cancelling": True,
        }

    def _op_stats(self) -> dict:
        return {
            "ok": True,
            "draining": self._draining,
            "queue_depth": len(self._queue),
            "queue_depths": self._queue.depths(),
            "running": self._running,
            "records": len(self._records),
            "recovered_lost": self.recovered_lost,
            "ewma_service_seconds": round(self._ewma_service, 4),
            "retry_after_seconds": round(self._retry_after(), 4),
            "dispatch_limit": self.dispatch_limit,
            "tenants": {
                name: tenant.snapshot()
                for name, tenant in self._tenants.items()
            },
            "governor": self.governor.stats(),
        }

    # -- background sweeper ------------------------------------------------
    async def _sweeper(self) -> None:
        """Reject queue-expired entries; prune old terminal records."""
        while True:
            await asyncio.sleep(self.config.sweep_interval_seconds)
            expired = [
                record
                for fifo in self._queue._fifos.values()
                for record in fifo
                if record.token.expired
            ]
            for record in expired:
                if self._queue.remove(record):
                    self._unindex_share(record)
                    self._reject_queue_expired(record)
            if expired:
                METRICS.gauge("serve.queue_depth").set(len(self._queue))
                self._work.set()
            self._prune_records()

    def _prune_records(self) -> None:
        now = time.monotonic()
        retention = self.config.result_retention_seconds
        stale = [
            query_id
            for query_id, record in self._records.items()
            if record.terminal
            and record.finished_at is not None
            and now - record.finished_at > retention
        ]
        for query_id in stale:
            del self._records[query_id]
        overflow = len(self._records) - self.config.max_records
        if overflow > 0:
            terminal = sorted(
                (r for r in self._records.values() if r.terminal),
                key=lambda r: r.finished_at or 0.0,
            )
            for record in terminal[:overflow]:
                del self._records[record.query_id]

    # -- connection handling -----------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # line too long for the stream limit
                    writer.write(
                        protocol.encode_message(
                            protocol.error_response(
                                "bad_request",
                                "request line exceeds "
                                f"{protocol.MAX_LINE_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                except (ConnectionResetError, OSError):
                    break
                if not line:
                    break  # EOF — client went away; its queries live on
                if not line.strip():
                    continue
                response = await self._handle_message(line)
                try:
                    writer.write(protocol.encode_message(response))
                    await writer.drain()
                except (ConnectionResetError, OSError):
                    break
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    async def _handle_message(self, line: bytes) -> dict:
        try:
            message = protocol.decode_message(line)
        except ProtocolError as error:
            METRICS.counter("serve.bad_requests").inc()
            return protocol.error_response("bad_request", str(error))
        op = message["op"]
        try:
            if op == "submit":
                return self._op_submit(message)
            if op == "poll":
                return await self._op_poll(message)
            if op == "cancel":
                return self._op_cancel(message)
            if op == "stats":
                return self._op_stats()
            if op == "ping":
                return {
                    "ok": True,
                    "protocol": protocol.PROTOCOL_VERSION,
                    "draining": self._draining,
                }
            if op == "drain":
                if not self.config.allow_remote_drain:
                    return protocol.error_response(
                        "unsupported_op",
                        "remote drain is disabled on this server",
                    )
                return await self.drain(message.get("budget_seconds"))
            return protocol.error_response(
                "unsupported_op", f"unknown op {op!r}"
            )
        except Exception as error:  # a handler bug must not kill the loop
            logger.exception("internal error handling op %r", op)
            return protocol.error_response(
                "internal", f"{type(error).__name__}: {error}"
            )


class ServerThread:
    """Host an :class:`AQPServer` on a dedicated event-loop thread.

    The test suite, the chaos harness, and the benchmark all need a
    real listening server without committing their own process to
    asyncio; this wrapper owns the loop thread and forwards lifecycle
    calls with ``run_coroutine_threadsafe``.
    """

    def __init__(self, governor, config: ServeConfig | None = None):
        self.server = AQPServer(governor, config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = None

    def start(self, timeout: float = 10.0) -> tuple[str, int]:
        import threading

        ready = threading.Event()
        failure: list[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as error:  # startup failed
                failure.append(error)
                ready.set()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        import threading as _threading

        self._thread = _threading.Thread(
            target=run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout):
            raise RuntimeError("server failed to start within the timeout")
        if failure:
            raise failure[0]
        return (self.server.config.host, self.server.port)

    def drain(self, budget_seconds: float | None = None) -> dict:
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(budget_seconds), self._loop
        )
        return future.result()

    def stop(self, drain_budget_seconds: float | None = None) -> None:
        if self._loop is None or not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(drain_budget_seconds), self._loop
        )
        future.result()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop = None
