"""Per-tenant admission state: quotas, rate windows, weighted fairness.

One flooding tenant must not starve the others.  Three mechanisms
compose, checked in order at submit time and at dispatch time:

* **Sliding-window rate limit** — each tenant may *submit* at most
  ``rate_limit`` queries per ``rate_window_seconds``; beyond that the
  submission is rejected with ``reason="rate_limited"`` and a
  retry-after equal to the instant the oldest admission leaves the
  window (the cheapest possible backpressure: the client learns
  exactly when trying again can work).
* **Concurrency cap** — at most ``max_in_flight`` accepted-but-
  unresolved queries per tenant (queued + running together), so a
  burst inside the rate window still cannot occupy the whole global
  queue.
* **Weighted fair queueing** — accepted queries dispatch in
  virtual-finish-time order: tenant *t*'s ``k``-th query finishes (in
  virtual time) ``1/weight_t`` after its ``k-1``-th, so over any busy
  interval each tenant receives service proportional to its weight
  regardless of how many requests it stuffs into the queue.  This is
  the classic WFQ approximation (start-time fair queueing with unit
  cost); with equal weights it degenerates to round-robin across
  tenants, never FIFO across a flood.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

__all__ = ["FairQueue", "TenantConfig", "TenantState"]


@dataclass(frozen=True)
class TenantConfig:
    """Static per-tenant policy.

    Attributes:
        name: tenant identifier (also the metrics label).
        weight: WFQ share; a weight-2 tenant gets twice the dispatch
            rate of a weight-1 tenant while both are backlogged.
        max_in_flight: accepted-but-unresolved cap (queued + running).
        rate_limit: submissions admitted per sliding window, or
            ``None`` for unlimited.
        rate_window_seconds: the sliding window length.
    """

    name: str
    weight: float = 1.0
    max_in_flight: int = 8
    rate_limit: Optional[int] = None
    rate_window_seconds: float = 1.0

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )
        if self.rate_limit is not None and self.rate_limit < 1:
            raise ValueError(
                f"rate_limit must be >= 1 or None, got {self.rate_limit}"
            )
        if self.rate_window_seconds <= 0:
            raise ValueError(
                "rate_window_seconds must be positive, got "
                f"{self.rate_window_seconds}"
            )

    def for_name(self, name: str) -> "TenantConfig":
        """This policy re-labelled for a dynamically created tenant."""
        return replace(self, name=name)


@dataclass
class TenantState:
    """One tenant's live accounting (event-loop-thread only)."""

    config: TenantConfig
    clock: Callable[[], float] = time.monotonic
    in_flight: int = 0
    submitted: int = 0
    accepted: int = 0
    completed: int = 0
    rejected: int = 0
    cancelled: int = 0
    errors: int = 0
    lost: int = 0
    shared: int = 0
    _admits: deque = field(default_factory=deque)
    #: Virtual finish time of this tenant's most recently enqueued
    #: query (the WFQ chaining state).
    last_vft: float = 0.0

    @property
    def name(self) -> str:
        return self.config.name

    def rate_retry_after(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds until a submission could be admitted, or ``None`` if now.

        Does *not* consume a window slot — call :meth:`note_admitted`
        once the submission is actually accepted.
        """
        limit = self.config.rate_limit
        if limit is None:
            return None
        now = self.clock() if now is None else now
        window = self.config.rate_window_seconds
        while self._admits and now - self._admits[0] >= window:
            self._admits.popleft()
        if len(self._admits) < limit:
            return None
        return max(0.0, window - (now - self._admits[0]))

    def note_admitted(self, now: Optional[float] = None) -> None:
        now = self.clock() if now is None else now
        if self.config.rate_limit is not None:
            self._admits.append(now)
        self.accepted += 1
        self.in_flight += 1

    def snapshot(self) -> dict[str, Any]:
        return {
            "weight": self.config.weight,
            "max_in_flight": self.config.max_in_flight,
            "rate_limit": self.config.rate_limit,
            "in_flight": self.in_flight,
            "submitted": self.submitted,
            "accepted": self.accepted,
            "completed": self.completed,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "errors": self.errors,
            "lost": self.lost,
            "shared": self.shared,
        }


class FairQueue:
    """Virtual-finish-time weighted fair queue over per-tenant FIFOs.

    Entries are any objects with a writable ``vft`` attribute and a
    ``tenant`` attribute naming their tenant.  All operations are
    O(#tenants) or better — the serving tier has few tenants and
    possibly deep FIFOs, so per-tenant deques with a linear scan over
    heads beats a global heap that would need lazy-deletion bookkeeping.
    """

    def __init__(self) -> None:
        self._fifos: dict[str, deque] = {}
        self._vtime = 0.0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def depth(self, tenant: str) -> int:
        fifo = self._fifos.get(tenant)
        return 0 if fifo is None else len(fifo)

    def depths(self) -> dict[str, int]:
        return {
            name: len(fifo) for name, fifo in self._fifos.items() if fifo
        }

    def push(self, tenant: TenantState, entry: Any) -> None:
        """Enqueue, stamping the entry's virtual finish time."""
        start = max(self._vtime, tenant.last_vft)
        entry.vft = start + 1.0 / tenant.config.weight
        tenant.last_vft = entry.vft
        self._fifos.setdefault(tenant.name, deque()).append(entry)
        self._size += 1

    def push_front(self, entry: Any) -> None:
        """Re-enqueue at the head, keeping the original virtual stamp.

        Used when a shared batch's leader fails and its followers are
        retried individually: they already waited their fair turn, so
        they go back first in line rather than to the tail.
        """
        self._fifos.setdefault(entry.tenant, deque()).appendleft(entry)
        self._size += 1

    def pop(self) -> Optional[Any]:
        """Dequeue the entry with the smallest head virtual finish time."""
        best_name = None
        best_entry = None
        for name, fifo in self._fifos.items():
            if not fifo:
                continue
            head = fifo[0]
            if best_entry is None or head.vft < best_entry.vft:
                best_name = name
                best_entry = head
        if best_entry is None:
            return None
        self._fifos[best_name].popleft()
        self._size -= 1
        self._vtime = max(self._vtime, best_entry.vft)
        return best_entry

    def remove(self, entry: Any) -> bool:
        """Drop one entry (cancelled / expired while queued)."""
        fifo = self._fifos.get(entry.tenant)
        if not fifo:
            return False
        try:
            fifo.remove(entry)
        except ValueError:
            return False
        self._size -= 1
        return True

    def drain_all(self) -> list[Any]:
        """Empty every FIFO and return the entries (drain path)."""
        entries: list[Any] = []
        for fifo in self._fifos.values():
            entries.extend(fifo)
            fifo.clear()
        self._size = 0
        return entries
