"""The resilient multi-tenant serving tier (PR 9).

Puts a network front on the query governor with the same honesty
contract the rest of the stack keeps: every accepted query resolves to
a result, a typed rejection with a computed retry-after, or an honest
cancelled/lost outcome — under overload, across a graceful drain, and
across a crash (via the fsynced serving journal).

Public surface:

* :class:`~repro.serve.server.AQPServer` /
  :class:`~repro.serve.server.ServeConfig` — the asyncio server.
* :class:`~repro.serve.server.ServerThread` — host a server on a
  dedicated loop thread (tests, benchmarks, chaos).
* :class:`~repro.serve.client.ServeClient` — blocking typed client.
* :class:`~repro.serve.tenants.TenantConfig` — per-tenant policy
  (weight, concurrency cap, rate window).
* :class:`~repro.serve.journal.ServingJournal` — crash-consistent
  outcome journal.

Run a server from the command line with ``python -m repro.serve`` or
``python -m repro serve``.
"""

from repro.serve.client import RemoteQueryError, ServeClient
from repro.serve.journal import ServingJournal
from repro.serve.server import AQPServer, ServeConfig, ServerThread
from repro.serve.tenants import TenantConfig

__all__ = [
    "AQPServer",
    "RemoteQueryError",
    "ServeClient",
    "ServeConfig",
    "ServerThread",
    "ServingJournal",
    "TenantConfig",
]
