"""The serving tier's line protocol: JSON objects, one per line.

Deliberately the simplest thing that can carry the contract: every
request and every response is a single JSON object terminated by
``\\n``, over a plain TCP stream.  Zero dependencies, trivially
scriptable (``nc`` works), and the framing failure modes — torn lines,
oversized lines, garbage bytes — are all typed.

Requests carry an ``op``:

=========  ==========================================================
op         fields
=========  ==========================================================
submit     ``sql`` (required), ``tenant``, ``deadline_seconds``
           (relative) or ``deadline_unix`` (absolute wall clock,
           clock-skew clamped), plus engine options ``confidence``,
           ``error_bound``, ``run_diagnostics``, and the bounded-query
           contract (one of ``within_relative_error``,
           ``within_absolute_error``, ``within_time_budget_seconds``;
           equivalent to a SQL ``WITHIN`` clause — an unachievable
           bound resolves the query to ``error`` with
           ``achievable_bound`` set, the planner's honest refusal)
poll       ``query_id`` (required), ``wait_seconds`` (long-poll)
cancel     ``query_id`` (required)
stats      —
ping       —
drain      ``budget_seconds`` (admin; gated by ``ServeConfig``)
=========  ==========================================================

Responses always carry ``ok``.  Failures carry ``error`` (a
machine-readable code), ``message``, and — for admission rejections —
``reason`` and ``retry_after_seconds``, the backpressure signal a
well-behaved client sleeps on before resubmitting.

Error codes: ``bad_request``, ``admission_rejected``,
``unknown_query``, ``unsupported_op``, ``internal``.

Query states reported by ``poll``: ``queued``, ``running``, ``done``,
``error``, ``cancelled``, ``rejected`` (accepted but shed before
executing, e.g. deadline expired in the queue or the server drained),
and ``lost`` (the server restarted while the query was in flight; the
serving journal makes this outcome honest instead of silent).
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.errors import ProtocolError

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "TERMINAL_STATES",
    "decode_message",
    "encode_message",
    "error_response",
    "rejection_response",
    "result_to_json",
]

#: Protocol revision, reported by ``ping``.
PROTOCOL_VERSION = 1

#: Hard cap on one request/response line.  SQL measured in megabytes is
#: not a query, it is an attack (or a bug) — either way it is refused
#: before it can balloon server memory.
MAX_LINE_BYTES = 1 << 20

#: Query states that will never change again.
TERMINAL_STATES = frozenset(
    {"done", "error", "cancelled", "rejected", "lost"}
)


def encode_message(message: dict) -> bytes:
    """One JSON object, one line, UTF-8."""
    return (
        json.dumps(message, separators=(",", ":"), default=str) + "\n"
    ).encode("utf-8")


def decode_message(line: bytes) -> dict:
    """Parse one request line; raise :class:`ProtocolError` when broken."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"request line of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte cap"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"request is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(message).__name__}"
        )
    if not isinstance(message.get("op"), str):
        raise ProtocolError("request is missing the string field 'op'")
    return message


def error_response(code: str, message: str, **extra: Any) -> dict:
    """An ``ok: false`` envelope with a machine-readable code."""
    payload = {"ok": False, "error": code, "message": message}
    payload.update(extra)
    return payload


def rejection_response(
    reason: str,
    message: str,
    retry_after_seconds: Optional[float],
    **extra: Any,
) -> dict:
    """The 429-equivalent: typed reason plus a computed retry-after."""
    return error_response(
        "admission_rejected",
        message,
        reason=reason,
        retry_after_seconds=(
            None
            if retry_after_seconds is None
            else round(float(retry_after_seconds), 4)
        ),
        **extra,
    )


def result_to_json(result) -> dict:
    """Serialize an :class:`~repro.core.pipeline.AQPResult` for the wire.

    Carries everything the honesty contract needs on the client side:
    per-value intervals, methods, fallback flags, the degradation
    summary, and the catalog route.  The trace and event objects stay
    server-side (they are surfaces for the operator, not the tenant).
    """
    rows = []
    for row in result.rows:
        values = []
        for value in row.values.values():
            interval = None
            if value.interval is not None:
                interval = {
                    "estimate": value.interval.estimate,
                    "half_width": value.interval.half_width,
                    "confidence": value.interval.confidence,
                    "method": value.interval.method,
                }
            values.append(
                {
                    "name": value.name,
                    "estimate": value.estimate,
                    "interval": interval,
                    "method": value.method,
                    "fell_back": bool(value.fell_back),
                    "fallback_reason": value.fallback_reason or None,
                }
            )
        rows.append({"group": dict(row.group), "values": values})
    report = result.execution_report
    payload = {
        "rows": rows,
        "sample": None if result.sample is None else result.sample.name,
        "elapsed_seconds": result.elapsed_seconds,
        "degraded": bool(result.degraded),
        "report": None if report is None else report.summary(),
        "catalog_route": result.catalog_route,
    }
    if report is not None and report.bound_kind is not None:
        # The bounded-query contract, closed on the wire: what was
        # asked, what was achieved.
        payload["bound"] = {
            "kind": report.bound_kind,
            "target": report.bound_target,
            "achieved": report.achieved_bound,
        }
    plan = getattr(result, "plan", None)
    if plan is not None:
        payload["plan"] = {
            "summary": plan.summary(),
            "chosen_fraction": plan.chosen_fraction,
            "replicates": plan.replicates,
            "pilot_rows": plan.pilot_rows,
            "fixed_budget": bool(plan.fixed_budget),
            "reason": plan.reason,
        }
    return payload
