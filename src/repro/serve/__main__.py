"""``python -m repro.serve`` — run the multi-tenant serving tier."""

import sys

from repro.cli import run_serve_command

sys.exit(run_serve_command(sys.argv[1:]))
