"""Ablation — resampling-operator pushdown (§5.3.2) vs selectivity.

Runs the same bootstrap error-estimation plan with the Poissonized
resampling operator in its naive position (right after the scan, weights
drawn for every row) and in its pushed-down position (after the filters,
weights only for surviving rows), across filter selectivities, measuring
both the weight cells generated (the resource the rewrite saves) and
local wall time.

Expected shape: the saving is ~1/selectivity; at selectivity 1.0 the
rewrite is a no-op.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.engine import Table
from repro.plan.executor import PlanRunner, analyze_sql
from repro.plan.logical import build_naive_error_plan
from repro.plan.rewriter import rewrite_plan
from repro.sampling import SampleCatalog

from _bench_utils import scaled

SAMPLE_ROWS = scaled(50_000)
NUM_RESAMPLES = 50
SELECTIVITIES = (0.01, 0.1, 0.5, 1.0)


@pytest.fixture(scope="module")
def catalog():
    rng = np.random.default_rng(12)
    table = Table(
        {
            "value": rng.lognormal(3.0, 1.0, SAMPLE_ROWS),
            "selector": rng.random(SAMPLE_ROWS),
        },
        name="t",
    )
    catalog = SampleCatalog(seed=1)
    catalog.register_table("t", table)
    catalog.create_sample("t", size=SAMPLE_ROWS, name="s")
    return catalog


def run_at_selectivity(catalog, selectivity, rewritten: bool):
    table = catalog.table("t")
    sql = f"SELECT AVG(value) AS a FROM t WHERE selector < {selectivity}"
    query = analyze_sql(sql, table)
    plan = build_naive_error_plan(query, NUM_RESAMPLES, sample_name="s")
    if rewritten:
        plan = rewrite_plan(plan).plan
    runner = PlanRunner(catalog, rng=np.random.default_rng(3))
    start = time.perf_counter()
    result = runner.run(plan)
    elapsed = time.perf_counter() - start
    return result.cost, elapsed, result.intervals["a"]


def test_pushdown_weight_savings(benchmark, catalog, figure_report):
    def collect():
        rows = []
        for selectivity in SELECTIVITIES:
            naive_cost, naive_time, naive_ci = run_at_selectivity(
                catalog, selectivity, rewritten=False
            )
            optimized_cost, optimized_time, optimized_ci = run_at_selectivity(
                catalog, selectivity, rewritten=True
            )
            rows.append(
                {
                    "selectivity": selectivity,
                    "naive_cells": naive_cost.weight_cells,
                    "optimized_cells": optimized_cost.weight_cells,
                    "naive_time": naive_time,
                    "optimized_time": optimized_time,
                    "widths": (naive_ci.half_width, optimized_ci.half_width),
                }
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1)
    lines = [
        f"{SAMPLE_ROWS:,}-row sample, K={NUM_RESAMPLES}; weight cells and "
        "local wall time, naive resample position vs pushdown",
        f"{'selectivity':>12s}{'naive cells':>14s}{'pushdown':>12s}"
        f"{'saving':>9s}{'naive ms':>10s}{'pushdown ms':>12s}",
    ]
    for row in rows:
        saving = row["naive_cells"] / max(row["optimized_cells"], 1)
        lines.append(
            f"{row['selectivity']:12.2f}{row['naive_cells']:14,d}"
            f"{row['optimized_cells']:12,d}{saving:8.1f}x"
            f"{row['naive_time'] * 1e3:10.1f}{row['optimized_time'] * 1e3:12.1f}"
        )
    lines.append(
        "shape: the weight-cell saving tracks 1/selectivity; pushdown is "
        "a no-op on unfiltered queries."
    )
    figure_report("Ablation — resampling pushdown vs selectivity", lines)

    for row in rows:
        saving = row["naive_cells"] / max(row["optimized_cells"], 1)
        expected = 1.0 / row["selectivity"]
        assert saving == pytest.approx(expected, rel=0.25)
        # Both positions produce statistically equivalent intervals.
        naive_width, optimized_width = row["widths"]
        assert optimized_width == pytest.approx(naive_width, rel=0.6)
    # At high selectivity pushdown must also save wall time locally.
    most_selective = rows[0]
    assert most_selective["optimized_time"] < most_selective["naive_time"]
