"""Observability overhead — tracing, event logging, and audits.

Tracing and event logging are default-on, so their cost must be
provably negligible: the span tree is built from a few dozen
``perf_counter`` calls per query, far from the hot resampling loops
(which run with tracing suppressed), and an event record is one small
dict construction.  Calibration audits recompute exact ground truth,
but only for the (deterministically) sampled fraction — the median
query pays nothing.  This bench puts numbers on those claims: it runs
a fixed-seed Conviva query mix with tracing off, tracing on, tracing
plus Chrome JSON export, tracing plus event logging, and tracing plus
event logging plus a 10 % audit fraction, and reports the per-query
median latency of each mode.

Target (EXPERIMENTS.md): < 2 % median overhead for every default-on
surface.  The assertion bound is looser (10 %) because shared CI
runners add scheduling noise far above the effect being measured; the
printed numbers are the record.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.pipeline import AQPEngine, EngineConfig
from repro.obs import write_chrome_trace
from repro.workloads import conviva_sessions_table, conviva_workload
from repro.workloads.queries import register_workload_functions

from _bench_utils import scaled

NUM_QUERIES = scaled(12)
TABLE_ROWS = scaled(60_000)
SAMPLE_ROWS = scaled(12_000)
REPEATS = 5


def _make_engine(
    tracing: bool, event_log: bool = False, audit_fraction: float = 0.0
) -> AQPEngine:
    rng = np.random.default_rng(7)
    engine = AQPEngine(
        EngineConfig(
            tracing=tracing,
            run_diagnostics=False,
            event_log=event_log,
            audit_fraction=audit_fraction,
            # The materialized catalog would replay every post-warmup
            # repeat from its result cache in ~25 µs, reducing this
            # bench to measuring fixed per-query bookkeeping against a
            # near-zero baseline.  Overhead percentages only mean
            # something against real sampled executions, so route cold.
            catalog=False,
        ),
        seed=42,
    )
    engine.register_table(
        "media_sessions", conviva_sessions_table(TABLE_ROWS, rng)
    )
    engine.create_sample("media_sessions", size=SAMPLE_ROWS, name="s")
    register_workload_functions(engine)
    return engine


@pytest.fixture(scope="module")
def query_mix() -> list[str]:
    queries = conviva_workload(NUM_QUERIES, np.random.default_rng(3))
    return [query.sql() for query in queries]


def test_tracing_overhead(query_mix, figure_report, tmp_path):
    # Modes are interleaved within each repeat so machine-load drift
    # hits all three equally; best-of-REPEATS per (mode, query) then
    # discards the worst of the remaining noise.
    setups = {
        "tracing off": (_make_engine(False), None),
        "tracing on": (_make_engine(True), None),
        "tracing on + --trace-out": (
            _make_engine(True),
            tmp_path / "trace.json",
        ),
        "tracing + events": (
            _make_engine(True, event_log=True),
            None,
        ),
        "tracing + events + audit 10%": (
            _make_engine(True, event_log=True, audit_fraction=0.1),
            None,
        ),
    }
    modes = {name: [float("inf")] * len(query_mix) for name in setups}
    for engine, _ in setups.values():  # cache-warming pass
        for sql in query_mix:
            engine.execute(sql)
    for _ in range(REPEATS):
        for name, (engine, trace_out) in setups.items():
            for index, sql in enumerate(query_mix):
                start = time.perf_counter()
                result = engine.execute(sql)
                if trace_out is not None and result.trace is not None:
                    write_chrome_trace(result.trace, trace_out)
                modes[name][index] = min(
                    modes[name][index], time.perf_counter() - start
                )
    medians = {
        name: float(np.median(values)) for name, values in modes.items()
    }
    base = medians["tracing off"]
    lines = [
        f"{NUM_QUERIES} Conviva-mix queries, best of {REPEATS}, "
        f"{SAMPLE_ROWS:,}-row sample; per-query median latency",
    ]
    for name, median in medians.items():
        overhead = (median / base - 1.0) * 100.0
        lines.append(
            f"  {name:26s} {median * 1e3:8.2f} ms  ({overhead:+5.1f} %)"
        )
    lines.append(
        "target: < 2 % median overhead for default-on tracing + events"
    )
    figure_report("Observability overhead — Conviva query mix", lines)

    assert medians["tracing on"] <= base * 1.10
    # --trace-out is an explicit opt-in that serialises and writes a
    # ~300-span JSON file per query; on these ~7 ms micro queries the
    # file write itself is a large fraction, so the bound is loose.
    assert medians["tracing on + --trace-out"] <= base * 2.5
    # Event logging is default-on; audits hit only the sampled queries,
    # so the *median* latency must stay at the traced baseline.
    traced = medians["tracing on"]
    assert medians["tracing + events"] <= max(base, traced) * 1.10
    assert medians["tracing + events + audit 10%"] <= (
        max(base, traced) * 1.10
    )
