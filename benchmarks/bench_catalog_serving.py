"""Catalog serving benchmark: repeated Conviva dashboard traffic.

Replays the dashboard slice of the Conviva workload (fixed query shapes
with rotating predicate literals, see
:func:`repro.workloads.conviva_dashboard_mix`) against two engines:

* **cold** — catalog disabled; every refresh recomputes from the sample
  (the pre-catalog behaviour);
* **warm** — catalog enabled, one rollup cube over the drill-down
  dimensions materialized, and one warm-up round so repeated shapes are
  in the result store.

Reports the warm rounds' exact/partial/miss mix and the p50/p99 latency
speedup over the cold engine.  With ``--check`` the run fails unless
the warm hit rate is ≥ 90 % and the median speedup is ≥ 20× — the
acceptance bar for the materialized catalog.

Usage::

    PYTHONPATH=src python benchmarks/bench_catalog_serving.py --smoke \\
        --out benchmarks/results/catalog_serving.json --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.pipeline import AQPEngine, EngineConfig
from repro.workloads.conviva import conviva_dashboard_mix
from repro.workloads.datagen import conviva_sessions_table

MIN_HIT_RATE = 0.90
MIN_MEDIAN_SPEEDUP = 20.0


def build_engine(table, catalog: bool, sample_size: int) -> AQPEngine:
    engine = AQPEngine(config=EngineConfig(catalog=catalog), seed=42)
    engine.register_table("media_sessions", table)
    engine.create_sample("media_sessions", size=sample_size, name="dash")
    return engine


def timed_round(engine: AQPEngine, queries: list[str]):
    """One pass over the mix; per-query seconds and catalog routes."""
    latencies: list[float] = []
    routes: list[str | None] = []
    for sql in queries:
        start = time.perf_counter()
        result = engine.execute(sql)
        latencies.append(time.perf_counter() - start)
        routes.append(result.catalog_route)
    return latencies, routes


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the table for a seconds-long CI canary run",
    )
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="write the report JSON here",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless hit rate >= 90%% and median "
        "speedup >= 20x",
    )
    args = parser.parse_args()
    num_rows = 60_000 if args.smoke else 200_000
    sample_size = 10_000 if args.smoke else 20_000
    rounds = args.rounds or (3 if args.smoke else 5)

    rng = np.random.default_rng(7)
    table = conviva_sessions_table(num_rows, rng)
    queries = conviva_dashboard_mix()

    print(f"dashboard mix: {len(queries)} shapes, {rounds} warm round(s)")

    cold_engine = build_engine(table, catalog=False, sample_size=sample_size)
    cold_latencies: list[float] = []
    with cold_engine:
        for _ in range(rounds):
            latencies, __ = timed_round(cold_engine, queries)
            cold_latencies.extend(latencies)

    warm_engine = build_engine(table, catalog=True, sample_size=sample_size)
    warm_latencies: list[float] = []
    warm_routes: list[str | None] = []
    with warm_engine:
        warm_engine.materialize("media_sessions", ("city", "isp"))
        # Warm-up round: misses run cold and populate the result store.
        timed_round(warm_engine, queries)
        for _ in range(rounds):
            latencies, routes = timed_round(warm_engine, queries)
            warm_latencies.extend(latencies)
            warm_routes.extend(routes)

    cold = np.array(cold_latencies)
    warm = np.array(warm_latencies)
    hits = sum(1 for r in warm_routes if r in ("exact", "partial"))
    hit_rate = hits / len(warm_routes)
    p50_speedup = float(np.percentile(cold, 50) / np.percentile(warm, 50))
    p99_speedup = float(np.percentile(cold, 99) / np.percentile(warm, 99))

    route_mix = {
        route: warm_routes.count(route) for route in ("exact", "partial", "miss")
    }
    report = {
        "schema": 1,
        "mode": "smoke" if args.smoke else "full",
        "num_rows": num_rows,
        "sample_size": sample_size,
        "rounds": rounds,
        "queries_per_round": len(queries),
        "hit_rate": round(hit_rate, 4),
        "route_mix": route_mix,
        "cold_p50_ms": round(float(np.percentile(cold, 50)) * 1e3, 3),
        "cold_p99_ms": round(float(np.percentile(cold, 99)) * 1e3, 3),
        "warm_p50_ms": round(float(np.percentile(warm, 50)) * 1e3, 3),
        "warm_p99_ms": round(float(np.percentile(warm, 99)) * 1e3, 3),
        "p50_speedup": round(p50_speedup, 1),
        "p99_speedup": round(p99_speedup, 1),
        "catalog": warm_engine.catalog_info(),
    }

    print(
        f"warm hit rate {hit_rate:.1%} "
        f"(exact {route_mix['exact']}, partial {route_mix['partial']}, "
        f"miss {route_mix['miss']})"
    )
    print(
        f"p50 {report['cold_p50_ms']:.1f}ms -> {report['warm_p50_ms']:.2f}ms "
        f"({p50_speedup:.0f}x); "
        f"p99 {report['cold_p99_ms']:.1f}ms -> {report['warm_p99_ms']:.2f}ms "
        f"({p99_speedup:.0f}x)"
    )

    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")

    if args.check:
        failures = []
        if hit_rate < MIN_HIT_RATE:
            failures.append(
                f"hit rate {hit_rate:.1%} < {MIN_HIT_RATE:.0%}"
            )
        if p50_speedup < MIN_MEDIAN_SPEEDUP:
            failures.append(
                f"median speedup {p50_speedup:.1f}x < "
                f"{MIN_MEDIAN_SPEEDUP:.0f}x"
            )
        if failures:
            print("CHECK FAILED: " + "; ".join(failures))
            return 1
        print("check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
