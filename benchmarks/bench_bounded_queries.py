"""Bounded-query planner benchmark: Conviva mix under WITHIN contracts.

Replays a Conviva-style query mix — scalar and grouped aggregates with
rotating predicate literals — at 1 %/2 %/5 % relative-error contracts
against two engines over the same table, sample, and seed:

* **planner** — the pilot-based planner sizes each execution to the
  minimal (fraction, K) predicted to meet the bound;
* **fixed** — the planner disabled (``REPRO_PLANNER=off`` equivalent):
  the WITHIN bound degrades to the legacy fixed-budget error gate over
  the full sample, diagnostics and all.

Both engines run with the calibration auditor at ``audit_fraction=1.0``
(the PR-8 audit path): every answer's intervals are checked against an
exact recomputation, so *realized coverage* is measured, not assumed.
Latency is the engine's own ``elapsed_seconds`` (pilot included, audit
excluded — the audit is observability, not execution).

Queries the planner honestly refuses (``BoundUnachievableError``) are
counted and excluded from the pairing.  A kill-switch probe asserts
that ``planner=False`` WITHIN execution is bit-identical to the legacy
``error_bound`` path.

With ``--check`` the run fails unless the median per-query speedup is
≥ 3×, realized coverage of the two engines agrees within ±2 pp, and
the kill-switch probe is bit-identical.

Usage::

    PYTHONPATH=src python benchmarks/bench_bounded_queries.py --smoke \\
        --out benchmarks/results/bounded_queries.json --check
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.pipeline import AQPEngine, EngineConfig
from repro.errors import BoundUnachievableError
from repro.workloads.datagen import conviva_sessions_table

MIN_MEDIAN_SPEEDUP = 3.0
MAX_COVERAGE_DELTA = 0.02
#: Every contract in the mix is stated AT 95% CONFIDENCE.
NOMINAL_COVERAGE = 0.95

#: Popular literals under the Zipfian generators — filtered subsets
#: stay large enough that the contracts below are mostly achievable
#: (infeasible combinations are part of the story: they are counted as
#: honest refusals, not failures).
_CITIES = [f"city_{i:02d}" for i in range(8)]
_ISPS = [f"isp_{i}" for i in range(4)]


def build_queries() -> list[str]:
    """The bounded Conviva mix: 1 %/2 %/5 % contracts."""
    queries: list[str] = []
    # 1 % — unfiltered scalars only: tight contracts need the bulk of
    # the sample, filters would push them straight to refusal.
    for metric in ("startup_ms", "buffering_ratio"):
        queries.append(
            f"SELECT AVG({metric}) FROM media_sessions "
            "WITHIN 1% AT 95% CONFIDENCE"
        )
    # 2 % — unfiltered and lightly filtered scalars.
    for metric in ("startup_ms", "buffering_ratio", "bitrate"):
        queries.append(
            f"SELECT AVG({metric}) FROM media_sessions "
            "WITHIN 2% AT 95% CONFIDENCE"
        )
    for isp in _ISPS:
        queries.append(
            f"SELECT AVG(startup_ms) FROM media_sessions "
            f"WHERE isp = '{isp}' WITHIN 2% AT 95% CONFIDENCE"
        )
    # 5 % — filtered scalars across the popular literals, plus the
    # heavy-tailed metrics.
    for city in _CITIES:
        queries.append(
            f"SELECT AVG(session_time) FROM media_sessions "
            f"WHERE city = '{city}' WITHIN 5% AT 95% CONFIDENCE"
        )
        queries.append(
            f"SELECT AVG(startup_ms) FROM media_sessions "
            f"WHERE city = '{city}' WITHIN 5% AT 95% CONFIDENCE"
        )
    for isp in _ISPS:
        queries.append(
            f"SELECT AVG(buffering_ratio) FROM media_sessions "
            f"WHERE isp = '{isp}' WITHIN 5% AT 95% CONFIDENCE"
        )
        queries.append(
            f"SELECT SUM(bytes_streamed) FROM media_sessions "
            f"WHERE isp = '{isp}' WITHIN 5% AT 95% CONFIDENCE"
        )
    # Grouped drill-downs: every group must meet the bound (rare groups
    # ride the per-value gate/escalation/exact machinery).
    queries.append(
        "SELECT isp, AVG(startup_ms) FROM media_sessions "
        "GROUP BY isp WITHIN 5% AT 95% CONFIDENCE"
    )
    queries.append(
        "SELECT bitrate, AVG(session_time) FROM media_sessions "
        "GROUP BY bitrate WITHIN 5% AT 95% CONFIDENCE"
    )
    return queries


def build_engine(table, planner: bool, sample_size: int) -> AQPEngine:
    engine = AQPEngine(
        config=EngineConfig(
            catalog=False,
            planner=planner,
            audit_fraction=1.0,
        ),
        seed=42,
    )
    engine.register_table("media_sessions", table)
    engine.create_sample("media_sessions", size=sample_size, name="bench")
    return engine


def run_mix(engine: AQPEngine, queries: list[str]):
    """Execute the mix; per-query latency, coverage, and refusals."""
    latencies: dict[int, float] = {}
    audited = covered = 0
    refusals: list[str] = []
    for index, sql in enumerate(queries):
        try:
            result = engine.execute(sql)
        except BoundUnachievableError:
            refusals.append(sql)
            continue
        latencies[index] = result.elapsed_seconds
        event = result.event
        if event is not None and event.audited:
            audited += int(event.audit.get("audited_values", 0))
            covered += int(event.audit.get("covered_values", 0))
    return latencies, audited, covered, refusals


def kill_switch_probe(table, sample_size: int) -> bool:
    """``planner=False`` WITHIN must equal the legacy error_bound path."""

    def snapshot(result):
        rows = []
        for row in result.rows:
            for name, value in row.values.items():
                interval = value.interval
                rows.append(
                    (
                        tuple(sorted(row.group.items())),
                        name,
                        value.estimate,
                        None
                        if interval is None
                        else (interval.lower, interval.upper),
                    )
                )
        return rows

    with build_engine(table, planner=False, sample_size=sample_size) as a:
        bounded = a.execute(
            "SELECT AVG(startup_ms) FROM media_sessions WITHIN 2%"
        )
    with build_engine(table, planner=False, sample_size=sample_size) as b:
        legacy = b.execute(
            "SELECT AVG(startup_ms) FROM media_sessions", error_bound=0.02
        )
    return snapshot(bounded) == snapshot(legacy)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the table for a seconds-long CI canary run",
    )
    parser.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="write the report JSON here",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless median speedup >= 3x, coverage "
        "agrees within 2pp, and the kill switch is bit-identical",
    )
    args = parser.parse_args()
    num_rows = 120_000 if args.smoke else 300_000
    sample_size = 40_000 if args.smoke else 80_000

    rng = np.random.default_rng(7)
    table = conviva_sessions_table(num_rows, rng)
    queries = build_queries()
    print(
        f"bounded Conviva mix: {len(queries)} queries over "
        f"{num_rows:,} rows (sample {sample_size:,})"
    )

    with build_engine(table, planner=True, sample_size=sample_size) as engine:
        planned, p_audited, p_covered, refusals = run_mix(engine, queries)
    with build_engine(table, planner=False, sample_size=sample_size) as engine:
        fixed, f_audited, f_covered, _ = run_mix(engine, queries)

    paired = sorted(set(planned) & set(fixed))
    if not paired:
        print("no paired executions — every query refused?")
        return 1
    ratios = np.array([fixed[i] / planned[i] for i in paired])
    planner_ms = np.array([planned[i] for i in paired]) * 1e3
    fixed_ms = np.array([fixed[i] for i in paired]) * 1e3
    median_speedup = float(np.median(ratios))
    planner_coverage = p_covered / p_audited if p_audited else float("nan")
    fixed_coverage = f_covered / f_audited if f_audited else float("nan")
    coverage_delta = abs(planner_coverage - fixed_coverage)
    identical = kill_switch_probe(table, sample_size)

    report = {
        "schema": 1,
        "mode": "smoke" if args.smoke else "full",
        "num_rows": num_rows,
        "sample_size": sample_size,
        "queries": len(queries),
        "paired": len(paired),
        "refusals": len(refusals),
        "refused_queries": refusals,
        "median_speedup": round(median_speedup, 2),
        "p90_speedup": round(float(np.percentile(ratios, 90)), 2),
        "planner_p50_ms": round(float(np.median(planner_ms)), 3),
        "fixed_p50_ms": round(float(np.median(fixed_ms)), 3),
        "planner_coverage": round(planner_coverage, 4),
        "fixed_coverage": round(fixed_coverage, 4),
        "coverage_delta": round(coverage_delta, 4),
        "audited_values": {"planner": p_audited, "fixed": f_audited},
        "kill_switch_identical": identical,
    }

    print(
        f"paired {len(paired)}/{len(queries)} "
        f"({len(refusals)} honest refusal(s))"
    )
    print(
        f"latency p50 {report['fixed_p50_ms']:.1f}ms -> "
        f"{report['planner_p50_ms']:.1f}ms "
        f"(median speedup {median_speedup:.1f}x, "
        f"p90 {report['p90_speedup']:.1f}x)"
    )
    print(
        f"realized coverage: planner {planner_coverage:.1%} "
        f"({p_covered}/{p_audited}), fixed {fixed_coverage:.1%} "
        f"({f_covered}/{f_audited}), delta {coverage_delta:.2%}"
    )
    print(f"kill switch bit-identical: {identical}")

    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")

    if args.check:
        failures = []
        if median_speedup < MIN_MEDIAN_SPEEDUP:
            failures.append(
                f"median speedup {median_speedup:.2f}x < "
                f"{MIN_MEDIAN_SPEEDUP:.0f}x"
            )
        if not coverage_delta <= MAX_COVERAGE_DELTA:
            failures.append(
                f"coverage delta {coverage_delta:.2%} > "
                f"{MAX_COVERAGE_DELTA:.0%}"
            )
        # Nominal-coverage band, widened by two binomial standard
        # errors at the audited count (the same convention as the
        # audit-calibration bench): the gate bounds systematic
        # miscalibration, not sampling noise.  One-sided below
        # nominal — intervals wider than promised are conservative,
        # not dishonest.
        for label, coverage, audited in (
            ("planner", planner_coverage, p_audited),
            ("fixed", fixed_coverage, f_audited),
        ):
            if not audited:
                failures.append(f"{label}: no audited values")
                continue
            slack = MAX_COVERAGE_DELTA + 2.0 * float(
                np.sqrt(NOMINAL_COVERAGE * (1 - NOMINAL_COVERAGE) / audited)
            )
            if coverage < NOMINAL_COVERAGE - slack:
                failures.append(
                    f"{label} realized coverage {coverage:.1%} below "
                    f"nominal {NOMINAL_COVERAGE:.0%} - {slack:.1%}"
                )
        if not identical:
            failures.append("kill switch is not bit-identical")
        if failures:
            print("CHECK FAILED: " + "; ".join(failures))
            return 1
        print("check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
