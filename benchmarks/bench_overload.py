"""Overload stress harness: the governor vs. an ungoverned engine.

Drives concurrent clients issuing a Conviva-mix workload at an AQP
engine two ways:

* **ungoverned** — one engine per client, no admission control, no
  memory budget (a shared track-only accountant records the peak
  reserved footprint);
* **governed** — a :class:`~repro.governor.QueryGovernor` with the
  ``degrade`` shed policy and a memory budget of **one quarter of the
  ungoverned peak**, so the same offered load must be absorbed by
  queueing, stepping queries down the honest-degradation ladder, and
  rejecting the remainder.

Measured per mode: completion/shed counts, p50/p99 latency, the
degradation mix (full / reduced-K / closed-form / point-estimate, plus
per-result honesty: every completed answer either carries its stated
confidence interval or is flagged degraded), and peak reserved bytes.
The invariants the run must uphold:

1. zero crashes in either mode;
2. governed peak reserved bytes never exceed the budget;
3. every degraded governed answer says so in its execution report.

Run directly for a report (``--smoke`` for the deterministic
seconds-long CI variant, which also writes a JSON artifact)::

    PYTHONPATH=src python benchmarks/bench_overload.py --smoke

or under pytest, where the smoke variant runs as a test.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.pipeline import AQPEngine, EngineConfig
from repro.errors import ReproError, ResourceError
from repro.governor import (
    DegradationLevel,
    GovernorConfig,
    MemoryAccountant,
    QueryGovernor,
)
from repro.workloads.conviva import conviva_workload
from repro.workloads.datagen import conviva_sessions_table
from repro.workloads.queries import register_workload_functions

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def build_workload(num_queries: int, seed: int) -> list[str]:
    """A deterministic Conviva-mix list of SQL texts."""
    queries = conviva_workload(num_queries, np.random.default_rng(seed))
    return [query.sql() for query in queries]


def make_engine_factory(rows: int, sample_rows: int, seed: int):
    """A factory producing identically seeded engines over one table.

    The table and sample are built once; every engine shares them (the
    catalog registers by reference), so factory calls are cheap and
    deterministic.
    """
    table = conviva_sessions_table(rows, np.random.default_rng(seed))

    def factory(memory: MemoryAccountant | None = None) -> AQPEngine:
        engine = AQPEngine(
            config=EngineConfig(run_diagnostics=False, tracing=False),
            seed=seed,
            memory=memory,
        )
        register_workload_functions(engine)
        engine.register_table("media_sessions", table)
        engine.create_sample("media_sessions", size=sample_rows)
        return engine

    return factory


def _drive(client_queries: list[list[str]], execute_one):
    """Run one thread per client; collect per-query outcome records."""
    records: list[dict] = []
    lock = threading.Lock()

    def client(index: int, sqls: list[str]) -> None:
        for sql in sqls:
            started = time.perf_counter()
            outcome: dict = {"client": index}
            try:
                result = execute_one(sql)
                report = result.execution_report
                outcome["status"] = "completed"
                outcome["degraded"] = bool(result.degraded)
                outcome["honest"] = bool(
                    result.degraded
                    or all(
                        value.interval is not None or value.fell_back
                        for row in result.rows
                        for value in row.values.values()
                    )
                )
                outcome["report"] = "" if report is None else report.summary()
            except ResourceError as error:
                outcome["status"] = "shed"
                outcome["error"] = str(error)
            except ReproError as error:
                outcome["status"] = "query_error"
                outcome["error"] = str(error)
            except BaseException as error:  # the zero-crashes invariant
                outcome["status"] = "crash"
                outcome["error"] = f"{type(error).__name__}: {error}"
            outcome["seconds"] = time.perf_counter() - started
            with lock:
                records.append(outcome)

    threads = [
        threading.Thread(target=client, args=(i, sqls), daemon=True)
        for i, sqls in enumerate(client_queries)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return records


def _summary(records: list[dict]) -> dict:
    latencies = sorted(
        record["seconds"]
        for record in records
        if record["status"] == "completed"
    )
    counts = {
        status: sum(1 for r in records if r["status"] == status)
        for status in ("completed", "shed", "query_error", "crash")
    }
    total = len(records)
    return {
        "queries": total,
        **counts,
        "shed_rate": counts["shed"] / total if total else 0.0,
        "degraded": sum(1 for r in records if r.get("degraded")),
        "dishonest": sum(
            1
            for r in records
            if r["status"] == "completed" and not r.get("honest", True)
        ),
        "p50_seconds": float(np.percentile(latencies, 50)) if latencies else None,
        "p99_seconds": float(np.percentile(latencies, 99)) if latencies else None,
    }


def run_overload(
    clients: int = 8,
    queries_per_client: int = 6,
    rows: int = 200_000,
    sample_rows: int = 5_000,
    seed: int = 2014,
    budget_fraction: float = 0.25,
) -> dict:
    """The full two-phase experiment; returns a JSON-friendly report."""
    factory = make_engine_factory(rows, sample_rows, seed)
    client_queries = [
        build_workload(queries_per_client, seed + 100 + i)
        for i in range(clients)
    ]

    # Phase 1: ungoverned.  One engine per client, one shared track-only
    # accountant to learn the workload's peak reserved footprint.
    tracker = MemoryAccountant(name="ungoverned")
    engines = [factory(memory=tracker) for _ in range(clients)]
    try:
        ungoverned_records = _drive(
            client_queries,
            # Bind each call to the caller's own engine by thread ident.
            _PerThreadExecutor(engines).execute,
        )
    finally:
        for engine in engines:
            engine.close()
    ungoverned = _summary(ungoverned_records)
    ungoverned["peak_reserved_bytes"] = tracker.peak_bytes

    # Phase 2: governed, at a quarter of the observed peak.
    budget = max(1, int(tracker.peak_bytes * budget_fraction))
    config = GovernorConfig(
        max_concurrency=max(1, clients // 4),
        shed_policy="degrade",
        max_overflow=max(1, clients // 4),
        overflow_level=DegradationLevel.REDUCED_K,
        max_queue_depth=clients,
        queue_timeout_seconds=30.0,
        memory_budget_bytes=budget,
        memory_wait_seconds=0.2,
    )
    with QueryGovernor(lambda: factory(), config) as governor:
        # The governor owns one shared accountant; engines built by its
        # factory are re-pointed at it on checkout.
        governed_records = _drive(client_queries, governor.execute)
        governor_stats = governor.stats()
    governed = _summary(governed_records)
    governed["peak_reserved_bytes"] = governor.memory.peak_bytes
    governed["budget_bytes"] = budget

    return {
        "config": {
            "clients": clients,
            "queries_per_client": queries_per_client,
            "rows": rows,
            "sample_rows": sample_rows,
            "seed": seed,
            "budget_fraction": budget_fraction,
        },
        "ungoverned": ungoverned,
        "governed": governed,
        "governor": governor_stats,
    }


class _PerThreadExecutor:
    """Route each client thread to its own (ungoverned) engine."""

    def __init__(self, engines: list[AQPEngine]):
        self._engines = engines
        self._assignment: dict[int, AQPEngine] = {}
        self._lock = threading.Lock()

    def execute(self, sql: str):
        ident = threading.get_ident()
        with self._lock:
            engine = self._assignment.get(ident)
            if engine is None:
                engine = self._engines[len(self._assignment)]
                self._assignment[ident] = engine
        return engine.execute(sql)


def _render(report: dict) -> list[str]:
    lines = []
    for mode in ("ungoverned", "governed"):
        stats = report[mode]
        lines.append(
            f"{mode:>10}: {stats['completed']}/{stats['queries']} completed, "
            f"{stats['shed']} shed ({stats['shed_rate']:.0%}), "
            f"{stats['crash']} crashes, {stats['degraded']} degraded, "
            f"p99 {stats['p99_seconds']:.3f}s"
            if stats["p99_seconds"] is not None
            else f"{mode:>10}: no completions"
        )
        lines.append(
            f"{'':>10}  peak reserved "
            f"{stats['peak_reserved_bytes']:,} bytes"
            + (
                f" (budget {stats['budget_bytes']:,})"
                if "budget_bytes" in stats
                else ""
            )
        )
    levels = report["governor"]["levels"]
    lines.append(
        "  degradation mix: "
        + ", ".join(f"{label}={count}" for label, count in levels.items())
    )
    memory = report["governor"]["memory"]
    lines.append(
        f"  governor memory: used {memory['used_bytes']:,} / budget "
        f"{memory['budget_bytes']:,}, {memory['rejections']} rejections"
    )
    return lines


def _check_invariants(report: dict) -> None:
    assert report["ungoverned"]["crash"] == 0, report["ungoverned"]
    assert report["governed"]["crash"] == 0, report["governed"]
    assert report["governed"]["dishonest"] == 0, report["governed"]
    budget = report["governed"]["budget_bytes"]
    assert report["governed"]["peak_reserved_bytes"] <= budget
    assert report["governor"]["memory"]["used_bytes"] == 0


def test_overload_smoke(figure_report):
    """Pytest smoke: tiny workload, every invariant enforced."""
    report = run_overload(
        clients=4,
        queries_per_client=2,
        rows=20_000,
        sample_rows=2_000,
    )
    _check_invariants(report)
    figure_report("Overload: governed vs ungoverned", _render(report))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--queries-per-client", type=int, default=6)
    parser.add_argument("--rows", type=int, default=200_000)
    parser.add_argument("--sample-rows", type=int, default=5_000)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument(
        "--budget-fraction",
        type=float,
        default=0.25,
        help="governed memory budget as a fraction of ungoverned peak",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="deterministic seconds-long variant (CI)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the JSON report here "
        "(default benchmarks/results/overload.json)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.clients, args.queries_per_client = 4, 2
        args.rows, args.sample_rows = 20_000, 2_000
    report = run_overload(
        clients=args.clients,
        queries_per_client=args.queries_per_client,
        rows=args.rows,
        sample_rows=args.sample_rows,
        seed=args.seed,
        budget_fraction=args.budget_fraction,
    )
    _check_invariants(report)
    print("\n".join(_render(report)))
    out = Path(args.out) if args.out else RESULTS_DIR / "overload.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"-- report written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
