"""Ablation — diagnostic parameters (p and the subsample ladder).

Algorithm 1 costs ``p × k`` point estimates (each with K bootstrap
resamples when ξ is the bootstrap), so p is the main cost knob.  This
ablation measures the diagnostic's decision quality on a labelled query
panel — queries where error estimation provably works (means on benign
data) and provably fails (MIN/MAX/extreme quantiles on heavy tails) —
as p varies.

Expected shape: small p is noisy (false positives and negatives creep
in); the paper's p = 100 is comfortably stable; cost scales linearly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BootstrapEstimator,
    DiagnosticConfig,
    EstimationTarget,
    diagnose,
)
from repro.engine.aggregates import get_aggregate

from _bench_utils import scaled

SAMPLE_ROWS = scaled(60_000)
P_VALUES = (10, 25, 50, 100)
PANEL_REPEATS = 6


@pytest.fixture(scope="module")
def panel():
    """(target, should_pass) pairs with known ground truth."""
    rng = np.random.default_rng(9)
    benign = rng.lognormal(2.0, 0.5, SAMPLE_ROWS)
    hostile = (rng.pareto(1.5, SAMPLE_ROWS) + 1.0) * 100.0
    return [
        (EstimationTarget(benign, get_aggregate("AVG")), True),
        (EstimationTarget(benign, get_aggregate("SUM"),
                          dataset_rows=SAMPLE_ROWS * 20, extensive=True), True),
        (EstimationTarget(benign, get_aggregate("PERCENTILE", 0.5)), True),
        (EstimationTarget(hostile, get_aggregate("MAX")), False),
        (EstimationTarget(hostile, get_aggregate("MIN")), False),
        (EstimationTarget(hostile, get_aggregate("PERCENTILE", 0.999)), False),
    ]


def accuracy_at(panel, p, rng) -> tuple[float, int]:
    estimator = BootstrapEstimator(80, rng)
    config = DiagnosticConfig(num_subsamples=p, num_sizes=3)
    correct = 0
    total = 0
    subqueries = 0
    for __ in range(PANEL_REPEATS):
        for target, should_pass in panel:
            result = diagnose(target, estimator, 0.95, config, rng)
            correct += result.passed == should_pass
            total += 1
            subqueries += result.num_subqueries
    return correct / total, subqueries // (total)


def test_diagnostic_p_sweep(benchmark, panel, figure_report):
    rng = np.random.default_rng(10)
    results = benchmark.pedantic(
        lambda: {p: accuracy_at(panel, p, rng) for p in P_VALUES}, rounds=1
    )
    lines = [
        f"panel of {len(panel)} labelled queries × {PANEL_REPEATS} repeats; "
        "decision accuracy and per-query subquery cost vs p",
        f"{'p':>6s}{'accuracy':>12s}{'subqueries/query':>20s}",
    ]
    for p, (accuracy, cost) in results.items():
        lines.append(f"{p:6d}{accuracy:12.1%}{cost:20,d}")
    lines.append(
        "shape: accuracy saturates well before the paper's p=100; cost "
        "is linear in p (×K for bootstrap ξ)."
    )
    figure_report("Ablation — diagnostic subsample count p", lines)

    accuracy_100 = results[100][0]
    assert accuracy_100 >= 0.85
    # Cost scales linearly with p (3 sizes → 3p subqueries per query).
    assert results[100][1] == 300
    assert results[10][1] == 30
