"""Hedged speculative retries vs the sequential retry ladder (§6.3).

The paper's straggler mitigation speculatively re-launches slow units
and reports tail-latency wins with "no deterioration in the quality of
our results".  This bench reproduces that tradeoff on the real worker
pool: a seeded fraction of rounds contains one hung task, and we
compare round latency with

* **sequential recovery** — the straggler costs its full
  ``task_timeout_seconds`` before the retry even starts; and
* **hedged recovery** — a backup of the same unit launches once the
  task straggles past the percentile threshold, first result wins.

Expected shape: clean-round latency is nearly identical (hedging is
lazy — no straggler, no backup), while straggler-round p99 drops from
roughly the timeout to roughly the hedge threshold.  Results are
asserted bit-identical between the two modes, which is the "no
deterioration" half of the claim.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.faults import FaultPlan
from repro.parallel.pool import WorkerPool
from repro.parallel.supervise import (
    HedgePolicy,
    RetryPolicy,
    Supervision,
)

from _bench_utils import scaled

ROUNDS = scaled(12)
TASKS_PER_ROUND = 8
#: Stragglers are slow, not dead (the tail-at-scale scenario): the hang
#: finishes well inside the timeout, so sequential recovery waits out
#: the full hang while the hedge path pays only its threshold.
HANG_SECONDS = 1.5
TIMEOUT_SECONDS = 8.0
STRAGGLER_EVERY = 3  # every third round has one hung task


@pytest.fixture
def eight_cpus(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 8)


def _work(x):
    return float(np.sum(np.sin(np.arange(200) * (x + 1))))


def _policy(hedged: bool) -> RetryPolicy:
    return RetryPolicy(
        task_timeout_seconds=TIMEOUT_SECONDS,
        backoff_base_seconds=0.0,
        backoff_jitter=0.0,
        hedge=(
            HedgePolicy(
                quantile=0.5,
                multiplier=2.0,
                min_observations=2,
                floor_seconds=0.02,
            )
            if hedged
            else None
        ),
    )


def _run_rounds(hedged: bool) -> tuple[list[float], list, int, int]:
    """Latency per round + results; returns (latencies, results, h, w)."""
    latencies: list[float] = []
    results: list = []
    hedges = wins = 0
    with WorkerPool(4) as pool:
        for round_index in range(ROUNDS):
            plan = None
            if round_index % STRAGGLER_EVERY == 0:
                # One first-attempt hang per straggler round; the
                # victim task rotates deterministically.
                plan = FaultPlan(seed=round_index).with_hang(
                    round_index % TASKS_PER_ROUND, seconds=HANG_SECONDS
                )
            supervision = Supervision(plan=plan, policy=_policy(hedged))
            payloads = list(range(TASKS_PER_ROUND))
            started = time.perf_counter()
            results.append(pool.map(_work, payloads, supervision))
            latencies.append(time.perf_counter() - started)
            hedges += supervision.report.hedges_launched
            wins += supervision.report.hedges_won
            if plan is not None:
                # Interactive rounds arrive spaced out; let a worker
                # still finishing an abandoned straggler drain so the
                # next round starts from full capacity in both modes.
                time.sleep(HANG_SECONDS + 0.2)
    return latencies, results, hedges, wins


def test_hedging_tail_latency(eight_cpus, figure_report):
    sequential_lat, sequential_res, __, __ = _run_rounds(hedged=False)
    hedged_lat, hedged_res, hedges, wins = _run_rounds(hedged=True)

    # "No deterioration in the quality of our results": bit-identical.
    assert hedged_res == sequential_res

    sequential_p99 = float(np.percentile(sequential_lat, 99))
    hedged_p99 = float(np.percentile(hedged_lat, 99))
    sequential_p50 = float(np.percentile(sequential_lat, 50))
    hedged_p50 = float(np.percentile(hedged_lat, 50))

    figure_report(
        "hedged retries vs sequential recovery (straggler rounds)",
        [
            f"rounds={ROUNDS} tasks/round={TASKS_PER_ROUND} "
            f"straggler rounds=1/{STRAGGLER_EVERY} "
            f"hang={HANG_SECONDS:.1f}s timeout={TIMEOUT_SECONDS:.1f}s",
            f"sequential: p50={sequential_p50 * 1e3:8.1f} ms   "
            f"p99={sequential_p99 * 1e3:8.1f} ms",
            f"hedged:     p50={hedged_p50 * 1e3:8.1f} ms   "
            f"p99={hedged_p99 * 1e3:8.1f} ms",
            f"hedges launched={hedges} won by backup={wins}",
            f"p99 speedup: {sequential_p99 / max(hedged_p99, 1e-9):.1f}x",
        ],
    )

    # The acceptance claim: hedging improves straggler-round p99 over
    # sequential-retry-only.  Sequential pays >= the task timeout in
    # every straggler round; the hedge threshold is ~tens of ms.
    assert hedges >= 1 and wins >= 1
    assert hedged_p99 < sequential_p99


def test_hedging_is_lazy_on_clean_rounds(eight_cpus, figure_report):
    # No stragglers at all: the policy must not launch backups, and
    # latency must stay within noise of the unhedged pool.
    supervision = Supervision(policy=_policy(hedged=True))
    with WorkerPool(4) as pool:
        for __ in range(scaled(5)):
            pool.map(_work, list(range(TASKS_PER_ROUND)), supervision)
    figure_report(
        "hedging overhead on clean rounds",
        [
            f"hedges launched on {scaled(5)} clean rounds: "
            f"{supervision.report.hedges_launched}"
        ],
    )
    # Default threshold = 3x the round's p90: a homogeneous round
    # should essentially never trip it.
    assert supervision.report.hedges_launched <= 1
