"""Shared machinery for the §3 / Fig. 3 / Fig. 4 benchmarks.

Evaluates error-estimation procedures and the diagnostic against ground
truth over generated workloads, per the paper's protocol: for each query,
compute the true confidence interval from repeated samples of the full
dataset, then judge each estimator's per-sample δ deviations
(correct / optimistic / pessimistic), and separately ask the diagnostic
for its runtime prediction.

Workload queries are independent of one another, so the evaluation fans
out *per query* when given a pool (or worker count): the dataset's
columns go into shared memory once, and query ``q`` always draws from
child RNG stream ``q`` of a single root seed — verdicts are
bit-identical at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import (
    BootstrapEstimator,
    ClosedFormEstimator,
    DiagnosticConfig,
    Verdict,
    diagnose,
    evaluate_estimator,
)
from repro.errors import EstimationError
from repro.parallel import (
    WorkerPool,
    detach,
    pool_scope,
    resolve_table,
    seed_from_rng,
    share_table,
    spawn_children,
)
from repro.parallel.shm import SharedArena
from repro.workloads import WorkloadQuery


@dataclass
class QueryEvaluation:
    """Ground-truth verdicts (and optional diagnostic call) for one query."""

    query: WorkloadQuery
    verdicts: dict[str, Verdict]
    diagnostic_passed: Optional[bool] = None
    diagnostic_estimator: Optional[str] = None

    @property
    def excluded(self) -> bool:
        return not self.verdicts


def _evaluate_query_kernel(
    table,
    query: WorkloadQuery,
    sample_size: int,
    stream: np.random.SeedSequence,
    *,
    num_trials: int,
    bootstrap_k: int,
    truth_trials: int,
) -> dict[str, Verdict]:
    """The §3 verdicts for one query, from its own RNG stream."""
    rng = np.random.default_rng(stream)
    estimators = {
        "bootstrap": BootstrapEstimator(bootstrap_k, rng),
        "closed_form": ClosedFormEstimator(),
    }
    dataset_query = query.dataset_query(table)
    verdicts: dict[str, Verdict] = {}
    truth = None
    for name, estimator in estimators.items():
        try:
            outcome = evaluate_estimator(
                dataset_query,
                estimator,
                sample_size,
                rng,
                num_trials=num_trials,
                truth_trials=truth_trials,
                true_ci=truth,
            )
        except EstimationError:
            # Degenerate sampling distribution (e.g. a saturated
            # distinct count): excluded, like a zero-variance trace
            # query would be.
            return {}
        if outcome.true_ci is not None:
            truth = outcome.true_ci
        verdicts[name] = outcome.verdict
    return verdicts


def _evaluate_query_task(payload: dict) -> dict[str, Verdict]:
    segments: list = []
    try:
        table = resolve_table(
            payload["columns"], segments, name=payload["table_name"]
        )
        return _evaluate_query_kernel(
            table,
            payload["query"],
            payload["sample_size"],
            payload["stream"],
            num_trials=payload["num_trials"],
            bootstrap_k=payload["bootstrap_k"],
            truth_trials=payload["truth_trials"],
        )
    finally:
        detach(segments)


def evaluate_workload(
    table,
    queries: list[WorkloadQuery],
    sample_size: int,
    rng: np.random.Generator,
    num_trials: int = 16,
    bootstrap_k: int = 100,
    truth_trials: int = 500,
    pool: WorkerPool | int | None = None,
) -> list[QueryEvaluation]:
    """§3 protocol: verdicts for bootstrap and closed forms per query.

    ``truth_trials`` controls the Monte-Carlo precision of the reference
    interval.  It must be high: the same true width is reused for every
    trial δ of a query, so reference error shifts all of them coherently
    and flips borderline verdicts.

    Queries fan out across ``pool`` (a
    :class:`~repro.parallel.pool.WorkerPool`, a worker count, or
    ``None`` for inline); query ``q`` always evaluates from child
    stream ``q`` of one seed drawn from ``rng``, so the verdicts do not
    depend on the worker count.
    """
    children = spawn_children(seed_from_rng(rng), len(queries))
    params = dict(
        num_trials=num_trials,
        bootstrap_k=bootstrap_k,
        truth_trials=truth_trials,
    )
    with pool_scope(pool) as scoped:
        if scoped is None:
            all_verdicts = [
                _evaluate_query_kernel(
                    table, query, sample_size, child, **params
                )
                for query, child in zip(queries, children)
            ]
        else:
            with SharedArena() as arena:
                columns = share_table(arena, table)
                payloads = [
                    {
                        "columns": columns,
                        "table_name": table.name,
                        "query": query,
                        "sample_size": sample_size,
                        "stream": child,
                        **params,
                    }
                    for query, child in zip(queries, children)
                ]
                all_verdicts = scoped.map(_evaluate_query_task, payloads)
    return [
        QueryEvaluation(query=query, verdicts=verdicts)
        for query, verdicts in zip(queries, all_verdicts)
    ]


def verdict_breakdown(
    evaluations: list[QueryEvaluation], estimator_name: str
) -> dict[str, float]:
    """Fig. 3 stacked shares for one estimator (fractions of all queries)."""
    total = len(evaluations)
    counts = {verdict: 0 for verdict in Verdict}
    excluded = 0
    for evaluation in evaluations:
        if evaluation.excluded:
            excluded += 1
            continue
        counts[evaluation.verdicts[estimator_name]] += 1
    shares = {
        verdict.value: counts[verdict] / total for verdict in Verdict
    }
    shares["excluded"] = excluded / total
    return shares


def failure_rate(
    evaluations: list[QueryEvaluation],
    estimator_name: str,
    predicate=lambda query: True,
) -> tuple[float, int]:
    """Failure rate of an estimator among queries matching ``predicate``.

    Returns ``(rate, population)``; not-applicable and excluded queries
    are left out of the population.
    """
    population = 0
    failures = 0
    for evaluation in evaluations:
        if evaluation.excluded or not predicate(evaluation.query):
            continue
        verdict = evaluation.verdicts[estimator_name]
        if verdict is Verdict.NOT_APPLICABLE:
            continue
        population += 1
        if verdict in (Verdict.OPTIMISTIC, Verdict.PESSIMISTIC):
            failures += 1
    rate = failures / population if population else float("nan")
    return rate, population


def run_diagnostics(
    table,
    evaluations: list[QueryEvaluation],
    estimator_name: str,
    sample_size: int,
    rng: np.random.Generator,
    num_subsamples: int = 50,
    bootstrap_k: int = 100,
    pool: WorkerPool | int | None = None,
) -> None:
    """Attach a runtime diagnostic prediction to each evaluation (Fig. 4).

    Each query's p×k subsample evaluations fan out across ``pool``; the
    query draws from its own child stream (excluded queries still
    consume theirs, keeping the stream layout a pure function of the
    evaluation list), so predictions are worker-count independent.
    """
    config = DiagnosticConfig(num_subsamples=num_subsamples, num_sizes=3)
    children = spawn_children(seed_from_rng(rng), len(evaluations))
    with pool_scope(pool) as scoped:
        for evaluation, child in zip(evaluations, children):
            if evaluation.excluded:
                continue
            query_rng = np.random.default_rng(child)
            dataset_query = evaluation.query.dataset_query(table)
            target = dataset_query.sample_target(sample_size, query_rng)
            estimator = (
                ClosedFormEstimator()
                if estimator_name == "closed_form"
                else BootstrapEstimator(bootstrap_k, query_rng)
            )
            result = diagnose(
                target, estimator, 0.95, config, query_rng, pool=scoped
            )
            evaluation.diagnostic_passed = result.passed
            evaluation.diagnostic_estimator = estimator_name


def diagnostic_confusion(
    evaluations: list[QueryEvaluation], estimator_name: str
) -> dict[str, float]:
    """Fig. 4 categories as fractions of diagnosable queries.

    ``accurate``: diagnostic passed and estimation was actually correct;
    ``false_positive``: passed but estimation fails;
    ``false_negative``: rejected but estimation was correct;
    ``correct_rejection``: rejected and estimation indeed fails.
    """
    total = 0
    accurate = false_positive = false_negative = correct_rejection = 0
    for evaluation in evaluations:
        if evaluation.excluded or evaluation.diagnostic_passed is None:
            continue
        verdict = evaluation.verdicts[estimator_name]
        if verdict is Verdict.NOT_APPLICABLE:
            continue
        total += 1
        works = verdict is Verdict.CORRECT
        if evaluation.diagnostic_passed and works:
            accurate += 1
        elif evaluation.diagnostic_passed and not works:
            false_positive += 1
        elif not evaluation.diagnostic_passed and works:
            false_negative += 1
        else:
            correct_rejection += 1
    if total == 0:
        raise EstimationError("no diagnosable queries")
    return {
        "accurate": accurate / total,
        "false_positive": false_positive / total,
        "false_negative": false_negative / total,
        "correct_rejection": correct_rejection / total,
        "population": total,
    }
