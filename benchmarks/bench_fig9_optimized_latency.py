"""Figure 9(a)/(b) — fully-optimised end-to-end response times.

All optimisations together: §5.3 plan rewriting plus §6 physical tuning
(20 machines, straggler mitigation).  The paper's result: per-query
response times of a few seconds — 10–200× better than the Fig. 7
baseline — "thus effectively providing interactivity".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSimulator, PAPER_CLUSTER, build_phases
from repro.workloads import qset1_specs, qset2_specs

from _bench_utils import scaled

NUM_QUERIES = scaled(100)
TUNED_MACHINES = 20


def simulate_qset(specs, rng):
    sim = ClusterSimulator(PAPER_CLUSTER)
    rows = []
    for spec in specs:
        optimized = build_phases(spec, optimized=True)
        naive = build_phases(spec, optimized=False)
        tuned = {
            "execution": sim.simulate(
                optimized.execution,
                num_machines=TUNED_MACHINES,
                straggler_mitigation=True,
                rng=rng,
            ).total_seconds,
            "error": sim.simulate(
                optimized.error_estimation,
                num_machines=TUNED_MACHINES,
                straggler_mitigation=True,
                rng=rng,
            ).total_seconds,
            "diagnostics": sim.simulate(
                optimized.diagnostics,
                num_machines=TUNED_MACHINES,
                straggler_mitigation=True,
                rng=rng,
            ).total_seconds,
        }
        naive_total = sum(
            sim.simulate(job, rng=rng).total_seconds
            for job in (naive.execution, naive.error_estimation, naive.diagnostics)
        )
        rows.append({"tuned": tuned, "naive_total": naive_total})
    return rows


@pytest.fixture(scope="module")
def qset_rows():
    rng = np.random.default_rng(99)
    return {
        "QSet-1": simulate_qset(qset1_specs(NUM_QUERIES, rng), rng),
        "QSet-2": simulate_qset(qset2_specs(NUM_QUERIES, rng), rng),
    }


def test_fig9_optimized_latencies(benchmark, qset_rows, figure_report):
    benchmark.pedantic(lambda: None, rounds=1)
    lines = [
        f"{NUM_QUERIES} queries per QSet; fully optimised "
        f"(§5.3 + §6: {TUNED_MACHINES} machines, speculative execution)",
    ]
    for name, rows in qset_rows.items():
        totals = np.array([sum(row["tuned"].values()) for row in rows])
        speedups = np.array(
            [row["naive_total"] / sum(row["tuned"].values()) for row in rows]
        )
        per_phase = {
            phase: float(
                np.median([row["tuned"][phase] for row in rows])
            )
            for phase in ("execution", "error", "diagnostics")
        }
        lines.append(
            f"  {name}: median total {np.median(totals):6.2f}s "
            f"(max {totals.max():6.2f}s); median phases "
            f"exec={per_phase['execution']:.2f}s "
            f"err={per_phase['error']:.2f}s "
            f"diag={per_phase['diagnostics']:.2f}s; "
            f"speedup vs naive p10/p50/p90 = "
            f"{np.percentile(speedups, 10):.0f}x/"
            f"{np.percentile(speedups, 50):.0f}x/"
            f"{np.percentile(speedups, 90):.0f}x"
        )
    lines += [
        "paper Fig. 9: end-to-end response times of a few seconds,",
        "10-200x over the Fig. 7 baseline — interactive AQP with",
        "validated error bars.",
    ]
    figure_report("Figure 9 — optimised end-to-end response times", lines)

    for name, rows in qset_rows.items():
        totals = np.array([sum(row["tuned"].values()) for row in rows])
        speedups = np.array(
            [row["naive_total"] / sum(row["tuned"].values()) for row in rows]
        )
        # Interactive: the typical query completes within a few seconds.
        assert np.median(totals) < 8.0
        # The paper's 10–200× overall improvement band.
        assert np.percentile(speedups, 50) > 3.0
        assert np.percentile(speedups, 90) < 1000.0
    qset2_speedups = np.array(
        [
            row["naive_total"] / sum(row["tuned"].values())
            for row in qset_rows["QSet-2"]
        ]
    )
    assert np.median(qset2_speedups) > 10.0
