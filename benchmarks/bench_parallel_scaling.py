"""Multicore scaling — serial vs fanned-out execution at 1/2/4/8 workers.

Times the three fanned-out hot loops (bootstrap replicates, diagnostic
subsample evaluations, ground-truth trials) at increasing worker counts
and prints per-op speedup tables.  The determinism contract is asserted,
not just reported: every worker count must reproduce the serial results
bit for bit.

Speedups only materialise with physical cores to spare — on a 1-CPU
host every parallel row is pure IPC overhead, which this bench reports
honestly rather than hiding.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.bootstrap import BootstrapEstimator
from repro.core.diagnostics import DiagnosticConfig, diagnose
from repro.core.estimators import EstimationTarget
from repro.core.ground_truth import DatasetQuery, sampling_distribution
from repro.engine.aggregates import get_aggregate
from repro.parallel import WorkerPool

from _bench_utils import scaled

WORKER_COUNTS = (1, 2, 4, 8)
SAMPLE_ROWS = scaled(200_000)
DATASET_ROWS = scaled(1_000_000)
BOOTSTRAP_K = scaled(400)
TRUTH_TRIALS = scaled(200)


def _target(rng: np.random.Generator) -> EstimationTarget:
    return EstimationTarget(
        values=rng.lognormal(1.0, 0.6, SAMPLE_ROWS),
        aggregate=get_aggregate("AVG"),
        mask=rng.random(SAMPLE_ROWS) < 0.8,
        dataset_rows=DATASET_ROWS,
    )


def _ops(rng: np.random.Generator):
    """The timed operations: name -> fn(pool) returning a result array."""
    target = _target(rng)
    query = DatasetQuery(
        values=rng.lognormal(1.0, 0.6, scaled(300_000)),
        aggregate=get_aggregate("AVG"),
    )
    diag_config = DiagnosticConfig(num_subsamples=scaled(60), num_sizes=3)

    def run_bootstrap(pool):
        estimator = BootstrapEstimator(
            BOOTSTRAP_K, np.random.default_rng(17), pool=pool
        )
        return estimator.resample_distribution(target)

    def run_diagnostic(pool):
        result = diagnose(
            target,
            BootstrapEstimator(scaled(100), np.random.default_rng(19)),
            0.95,
            diag_config,
            np.random.default_rng(19),
            pool=pool,
        )
        return np.array(
            [r.mean_estimated_half_width for r in result.reports]
        )

    def run_ground_truth(pool):
        return sampling_distribution(
            query,
            scaled(20_000),
            TRUTH_TRIALS,
            np.random.default_rng(23),
            pool=pool,
        )

    return {
        "bootstrap replicates": run_bootstrap,
        "diagnostic subsamples": run_diagnostic,
        "ground-truth trials": run_ground_truth,
    }


@pytest.fixture(scope="module")
def sweep():
    rng = np.random.default_rng(29)
    ops = _ops(rng)
    timings: dict[str, dict[int, float]] = {name: {} for name in ops}
    references: dict[str, np.ndarray] = {}
    mismatches: list[str] = []
    for workers in WORKER_COUNTS:
        pool = None if workers <= 1 else WorkerPool(workers)
        try:
            for name, op in ops.items():
                start = time.perf_counter()
                result = op(pool)
                timings[name][workers] = time.perf_counter() - start
                if workers == 1:
                    references[name] = result
                elif not np.array_equal(
                    result, references[name], equal_nan=True
                ):
                    mismatches.append(f"{name} @ {workers} workers")
        finally:
            if pool is not None:
                pool.shutdown()
    return timings, mismatches


def test_parallel_scaling(benchmark, sweep, figure_report):
    benchmark.pedantic(lambda: None, rounds=1)
    timings, mismatches = sweep
    cpus = os.cpu_count() or 1
    lines = [
        f"host: {cpus} CPU(s); speedup = serial time / parallel time",
        f"sample rows {SAMPLE_ROWS:,}, K={BOOTSTRAP_K}, "
        f"truth trials {TRUTH_TRIALS}",
        "",
    ]
    for name, by_workers in timings.items():
        serial = by_workers[1]
        row = [f"  {name:24s}"]
        for workers in WORKER_COUNTS:
            elapsed = by_workers[workers]
            row.append(f"{workers}w {elapsed:6.2f}s ({serial / elapsed:4.2f}x)")
        lines.append("  ".join(row))
    lines += [
        "",
        "determinism: "
        + ("all worker counts bit-identical" if not mismatches else
           f"MISMATCHES: {mismatches}"),
    ]
    figure_report("Multicore scaling — worker-count sweep", lines)

    # The load-bearing guarantee at any core count: exact reproducibility.
    assert not mismatches
    # Sanity: every configuration actually ran.
    for by_workers in timings.values():
        assert set(by_workers) == set(WORKER_COUNTS)
