"""Figure 8(e)/(f) — speedups from physical-plan tuning.

The paper's second optimisation layer (§6): bounding the degree of
parallelism, sizing the input cache, and straggler mitigation.  The
baseline here is the §5.3 plan-optimised implementation (NOT the naive
one — Fig. 8(e)/(f)'s explicit baseline), run untuned on the full fleet;
the tuned configuration uses 20 machines plus speculative execution.

Paper shape: moderate per-query speedups (single-digit factors),
concentrated on error estimation and diagnostics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSimulator, PAPER_CLUSTER, build_phases
from repro.workloads import qset1_specs, qset2_specs

from _bench_utils import scaled

NUM_QUERIES = scaled(100)
PERCENTILES = (10, 25, 50, 75, 90)
TUNED_MACHINES = 20


def tuning_speedups(specs, rng):
    sim = ClusterSimulator(PAPER_CLUSTER)
    error_speedups = []
    diagnostic_speedups = []
    for spec in specs:
        phases = build_phases(spec, optimized=True)
        untuned_error = sim.simulate(
            phases.error_estimation, rng=rng
        ).total_seconds
        tuned_error = sim.simulate(
            phases.error_estimation,
            num_machines=TUNED_MACHINES,
            straggler_mitigation=True,
            rng=rng,
        ).total_seconds
        untuned_diag = sim.simulate(phases.diagnostics, rng=rng).total_seconds
        tuned_diag = sim.simulate(
            phases.diagnostics,
            num_machines=TUNED_MACHINES,
            straggler_mitigation=True,
            rng=rng,
        ).total_seconds
        error_speedups.append(untuned_error / tuned_error)
        diagnostic_speedups.append(untuned_diag / tuned_diag)
    return np.array(error_speedups), np.array(diagnostic_speedups)


@pytest.fixture(scope="module")
def all_speedups():
    rng = np.random.default_rng(86)
    return {
        "QSet-1": tuning_speedups(qset1_specs(NUM_QUERIES, rng), rng),
        "QSet-2": tuning_speedups(qset2_specs(NUM_QUERIES, rng), rng),
    }


def _cdf_line(label, values):
    quantiles = np.percentile(values, PERCENTILES)
    cells = "  ".join(
        f"p{p}={q:6.2f}x" for p, q in zip(PERCENTILES, quantiles)
    )
    return f"  {label:28s} {cells}"


def test_fig8ef_physical_tuning_speedups(
    benchmark, all_speedups, figure_report
):
    benchmark.pedantic(lambda: None, rounds=1)
    lines = [
        f"{NUM_QUERIES} queries per QSet; speedup CDF of tuned "
        f"({TUNED_MACHINES} machines + speculative execution) over the "
        "untuned §5.3 plan on the full fleet",
    ]
    for name, (error_speedups, diagnostic_speedups) in all_speedups.items():
        lines.append(_cdf_line(f"{name} error estimation", error_speedups))
        lines.append(_cdf_line(f"{name} diagnostics", diagnostic_speedups))
    lines += [
        "paper Fig. 8(e)/(f): single-digit factors — smaller than the",
        "plan-optimisation gains but what carries latency into the",
        "interactive range.",
    ]
    figure_report("Figure 8(e)/(f) — physical-tuning speedups", lines)

    for name, (error_speedups, diagnostic_speedups) in all_speedups.items():
        # Tuning helps the typical query, by a moderate factor.
        assert np.median(error_speedups) > 1.1
        assert np.median(diagnostic_speedups) > 1.1
        assert np.median(error_speedups) < 20
