"""Shared helpers for the figure/table benchmarks (non-fixture side).

Lives outside ``conftest.py`` so bench modules can import it by a
collision-free name regardless of which conftest pytest loaded first.
"""

from __future__ import annotations

import os
from pathlib import Path

#: Global scale knob (1.0 = minutes-long defaults; larger = closer to
#: paper scale).  Set via the REPRO_SCALE environment variable.
SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))

RESULTS_DIR = Path(__file__).parent / "results"

#: Report sections collected during the run, emitted by the conftest
#: terminal-summary hook and mirrored into RESULTS_DIR.
sections: list[tuple[str, list[str]]] = []


def scaled(value: int, minimum: int = 1) -> int:
    """Scale an iteration count or size by REPRO_SCALE."""
    return max(minimum, int(round(value * SCALE)))


def add_section(title: str, lines: list[str]) -> None:
    """Register a report section and mirror it to a results file."""
    sections.append((title, list(lines)))
    RESULTS_DIR.mkdir(exist_ok=True)
    head = title.lower().strip()
    slug = "".join(ch if ch.isalnum() else "_" for ch in head).strip("_")
    while "__" in slug:
        slug = slug.replace("__", "_")
    path = RESULTS_DIR / f"{slug[:80]}.txt"
    path.write_text(title + "\n" + "\n".join(lines) + "\n")
