"""Ablation — bootstrap resample count K.

The paper fixes K = 100 ("a reasonably large number"; K can be tuned
automatically per Efron & Tibshirani).  This ablation measures, per K:

* the Monte-Carlo stability of the interval half-width (relative
  standard deviation over repeated bootstraps of the same sample);
* the compute cost (weight cells ∝ K).

Expected shape: width noise falls ~1/sqrt(K); K = 100 puts it in the
mid-single-digit percent range — diminishing returns past that.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BootstrapEstimator, EstimationTarget
from repro.engine.aggregates import get_aggregate

from _bench_utils import scaled

SAMPLE_ROWS = scaled(20_000)
K_VALUES = (10, 25, 50, 100, 200, 400)
REPEATS = 30


@pytest.fixture(scope="module")
def target():
    rng = np.random.default_rng(5)
    return EstimationTarget(
        rng.lognormal(3.0, 1.0, SAMPLE_ROWS), get_aggregate("AVG")
    )


def width_noise(target, k, rng) -> float:
    estimator = BootstrapEstimator(k, rng)
    widths = np.array(
        [estimator.estimate(target, 0.95).half_width for __ in range(REPEATS)]
    )
    return float(widths.std() / widths.mean())


def test_bootstrap_k_stability(benchmark, target, figure_report):
    rng = np.random.default_rng(6)
    noise = benchmark.pedantic(
        lambda: {k: width_noise(target, k, rng) for k in K_VALUES}, rounds=1
    )
    lines = [
        f"{SAMPLE_ROWS:,}-row sample, AVG over lognormal; relative std of "
        f"the 95% half-width over {REPEATS} repeated bootstraps",
        f"{'K':>6s}{'width noise':>14s}{'weight cells':>16s}",
    ]
    for k in K_VALUES:
        lines.append(
            f"{k:6d}{noise[k]:14.1%}{k * SAMPLE_ROWS:16,d}"
        )
    lines.append(
        "shape: noise ~ 1/sqrt(K); the paper's K=100 sits at the knee."
    )
    figure_report("Ablation — bootstrap resample count K", lines)

    # Monotone-ish decrease and rough 1/sqrt(K) scaling across the sweep.
    assert noise[K_VALUES[0]] > noise[K_VALUES[-1]]
    ratio = noise[10] / noise[400]
    assert ratio == pytest.approx(np.sqrt(40), rel=0.6)
    # K=100 is already reasonably stable.
    assert noise[100] < 0.12
