"""Figure 1 — sample sizes suggested by different error-estimation
techniques for achieving different levels of relative error.

For each target relative error and each technique (ground truth, CLT
closed form, bootstrap, Bernstein, Hoeffding), we find the sample size
at which the technique's own confidence interval meets the target.  The
paper's finding: believing Hoeffding bounds forces samples 1–2 orders of
magnitude larger than necessary, while CLT/bootstrap track the truth.

Methodology: for each of several mean-like queries over a heavy-tailed
Conviva-like dataset, the technique's 95 % half-width is measured at a
probe size and the required n solved from the universal ``width ∝
1/sqrt(n)`` scaling (exact for Hoeffding/CLT, verified empirically for
the bootstrap and ground truth).  We report the median and .01/.99
quantiles over queries, like the paper's error bars.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BernsteinEstimator,
    BootstrapEstimator,
    ClosedFormEstimator,
    HoeffdingEstimator,
    true_interval,
)
from repro.core.error_control import (
    required_sample_size as _shared_required_sample_size,
)
from repro.workloads import conviva_sessions_table, conviva_workload

from _bench_utils import scaled

TARGET_RELATIVE_ERRORS = (0.32, 0.16, 0.08, 0.04, 0.02, 0.01)
PROBE_SIZE = scaled(20_000)
DATASET_ROWS = scaled(300_000)
NUM_QUERIES = scaled(12)
CONFIDENCE = 0.95


@pytest.fixture(scope="module")
def mean_like_queries(bench_rng):
    """AVG queries (the Fig. 1 setting) from the Conviva workload."""
    table = conviva_sessions_table(DATASET_ROWS, bench_rng)
    queries = []
    for query in conviva_workload(60 * 4, np.random.default_rng(17)):
        if query.aggregate_name == "AVG" and not query.has_udf:
            dataset_query = query.dataset_query(table)
            mask = dataset_query.mask
            matched = mask.sum() if mask is not None else DATASET_ROWS
            if matched > 10 * PROBE_SIZE:
                queries.append(dataset_query)
        if len(queries) == NUM_QUERIES:
            break
    assert len(queries) >= 4
    return queries


def required_sample_size(half_width_at_probe, estimate, target, probe):
    """Solve width(n) = target·|estimate| under width ∝ 1/sqrt(n).

    Thin adapter over the engine's own
    :func:`repro.core.error_control.required_sample_size` — the same
    extrapolation the bounded-query planner runs — keeping the figure
    honest about what production code would choose.  The only local
    twist: a non-positive probe half-width plots as NaN here (the
    engine rounds it to "1 row suffices", which would skew quantiles).
    """
    if half_width_at_probe <= 0:
        return float("nan")
    return float(
        _shared_required_sample_size(
            half_width_at_probe, estimate, probe, target
        )
    )


def measure_technique(query, estimator, rng):
    """The technique's half-width and estimate at the probe size."""
    target = query.sample_target(PROBE_SIZE, rng)
    interval = estimator.estimate(target, CONFIDENCE, rng)
    return interval.half_width, interval.estimate


def measure_ground_truth(query, rng):
    interval = true_interval(query, PROBE_SIZE, CONFIDENCE, 120, rng)
    return interval.half_width, interval.estimate


def _collect(mean_like_queries, rng):
    techniques = {
        "ground_truth": None,
        "closed_form": ClosedFormEstimator(),
        "bootstrap": BootstrapEstimator(100, rng),
        "bernstein": BernsteinEstimator(),
        "hoeffding": HoeffdingEstimator(),
    }
    table: dict[str, dict[float, np.ndarray]] = {}
    for name, estimator in techniques.items():
        per_target: dict[float, list[float]] = {
            target: [] for target in TARGET_RELATIVE_ERRORS
        }
        for query in mean_like_queries:
            if estimator is None:
                half, estimate = measure_ground_truth(query, rng)
            else:
                half, estimate = measure_technique(query, estimator, rng)
            for target in TARGET_RELATIVE_ERRORS:
                per_target[target].append(
                    required_sample_size(half, estimate, target, PROBE_SIZE)
                )
        table[name] = {
            target: np.asarray(sizes) for target, sizes in per_target.items()
        }
    return table


def test_fig1_sample_sizes(benchmark, mean_like_queries, bench_rng, figure_report):
    table = benchmark.pedantic(
        _collect, args=(mean_like_queries, bench_rng), rounds=1
    )

    lines = [
        f"{len(mean_like_queries)} AVG queries; probe n = {PROBE_SIZE:,}; "
        "median [p01, p99] required sample size",
        f"{'rel. error':>10s}"
        + "".join(f"{name:>26s}" for name in table),
    ]
    for target in TARGET_RELATIVE_ERRORS:
        row = [f"{target:10.2f}"]
        for name in table:
            sizes = table[name][target]
            median = np.median(sizes)
            low, high = np.quantile(sizes, [0.01, 0.99])
            row.append(f"{median:12.3g} [{low:.2g},{high:.2g}]")
        lines.append("".join(row))

    truth = {
        t: float(np.median(table["ground_truth"][t]))
        for t in TARGET_RELATIVE_ERRORS
    }
    hoeffding_ratio = np.median(
        [
            np.median(table["hoeffding"][t]) / truth[t]
            for t in TARGET_RELATIVE_ERRORS
        ]
    )
    closed_ratio = np.median(
        [
            np.median(table["closed_form"][t]) / truth[t]
            for t in TARGET_RELATIVE_ERRORS
        ]
    )
    bootstrap_ratio = np.median(
        [
            np.median(table["bootstrap"][t]) / truth[t]
            for t in TARGET_RELATIVE_ERRORS
        ]
    )
    lines += [
        "",
        f"median oversampling vs ground truth:  hoeffding {hoeffding_ratio:.0f}x,"
        f"  bernstein {np.median([np.median(table['bernstein'][t]) / truth[t] for t in TARGET_RELATIVE_ERRORS]):.1f}x,"
        f"  closed_form {closed_ratio:.2f}x,  bootstrap {bootstrap_ratio:.2f}x",
        "paper: Hoeffding demands samples 1-2 orders of magnitude larger",
        "than CLT/bootstrap/ground truth (Fig. 1).",
    ]
    figure_report("Figure 1 — sample sizes per technique", lines)

    # Shape assertions: Hoeffding 1–2 orders of magnitude above truth;
    # CLT and bootstrap within a small factor of it.  The factor bounds
    # must absorb Monte-Carlo noise: each ratio squares widths taken
    # from a single probe sample against a 120-trial reference, which
    # swings the measured value by ~2× across RNG streams (observed
    # 0.48–1.07 for the *closed form*, which has no resampling noise of
    # its own) — still an order of magnitude away from Hoeffding.
    assert hoeffding_ratio > 10
    assert 1 / 3 < closed_ratio < 3.0
    assert 1 / 3 < bootstrap_ratio < 3.0
