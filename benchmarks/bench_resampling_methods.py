"""§5.1 — Poissonized resampling vs exact Tuple Augmentation.

The paper motivates Poissonization by Pol & Jermaine's result that exact
with-replacement resampling (TA) runs the bootstrap ~8–9× slower than
the plain, un-bootstrapped query: the multinomial coupling forces each
resample to be drawn jointly and each *tuple* (all columns) to be
materialised per resample.  Poissonized weights stream instead, and with
operator pushdown (§5.3.2) are only drawn for rows that survive filters.

This bench runs a K=100 bootstrap of a filtered AVG over a wide
(8-column) media-sessions table four ways:

* plain query (no bootstrap) — the baseline the paper normalises by;
* TA: exact multinomial counts + full-tuple materialisation per resample;
* Poissonized, still materialising tuples per resample;
* Poissonized weight matrix over filtered rows only (the §5.3 strategy).

Expected shape: tuple-materialising strategies are orders of magnitude
above the plain query (the paper's ≥8–9×; worse here because our plain
query is a RAM-speed vector op rather than a disk-bound scan), and the
consolidated weight-matrix path recovers most of that gap.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.sampling import (
    TupleAugmentationResampler,
    materialize_poisson_resample,
    poisson_weight_matrix,
)
from repro.workloads import conviva_sessions_table

from _bench_utils import scaled

NUM_ROWS = scaled(100_000)
NUM_RESAMPLES = 100


@pytest.fixture(scope="module")
def sample():
    return conviva_sessions_table(NUM_ROWS, np.random.default_rng(1))


def plain_query(table) -> float:
    mask = table.column("bitrate") > 1000.0
    return float(table.column("session_time")[mask].mean())


def bootstrap_tuple_augmentation(table, rng) -> float:
    resampler = TupleAugmentationResampler(rng)
    estimates = [
        plain_query(resample)
        for resample in resampler.materialized_resamples(table, NUM_RESAMPLES)
    ]
    return float(np.std(estimates))


def bootstrap_poisson_materialized(table, rng) -> float:
    estimates = [
        plain_query(materialize_poisson_resample(table, rng))
        for __ in range(NUM_RESAMPLES)
    ]
    return float(np.std(estimates))


def bootstrap_weight_matrix(table, rng) -> float:
    # Pushdown: weights only for rows that pass the filter.
    mask = table.column("bitrate") > 1000.0
    values = table.column("session_time")[mask]
    weights = poisson_weight_matrix(
        len(values), NUM_RESAMPLES, rng, dtype=np.int32
    )
    totals = values @ weights
    sizes = weights.sum(axis=0)
    return float(np.std(totals / sizes))


def test_plain_query(benchmark, sample):
    assert benchmark(plain_query, sample) > 0


def test_bootstrap_tuple_augmentation(benchmark, sample):
    rng = np.random.default_rng(2)
    assert benchmark.pedantic(
        bootstrap_tuple_augmentation, args=(sample, rng), rounds=2
    ) > 0


def test_bootstrap_poissonized_materialized(benchmark, sample):
    rng = np.random.default_rng(3)
    assert benchmark.pedantic(
        bootstrap_poisson_materialized, args=(sample, rng), rounds=2
    ) > 0


def test_bootstrap_weight_matrix(benchmark, sample):
    rng = np.random.default_rng(4)
    assert benchmark.pedantic(
        bootstrap_weight_matrix, args=(sample, rng), rounds=3
    ) > 0


def test_report_relative_costs(benchmark, sample, figure_report):
    """Print the §5.1 comparison, normalised by the plain query."""

    def timed(fn, *args, repeat=3):
        best = float("inf")
        for __ in range(repeat):
            start = time.perf_counter()
            fn(*args)
            best = min(best, time.perf_counter() - start)
        return best

    rng = np.random.default_rng(5)
    plain = timed(plain_query, sample, repeat=5)
    ta = timed(bootstrap_tuple_augmentation, sample, rng, repeat=1)
    poisson_tuples = timed(bootstrap_poisson_materialized, sample, rng, repeat=1)
    matrix = timed(bootstrap_weight_matrix, sample, rng, repeat=3)
    lines = [
        f"sample: {sample.num_rows:,} rows × {len(sample.column_names)} "
        f"columns; K = {NUM_RESAMPLES}",
        f"plain query:                         {plain * 1e3:9.2f} ms (1x)",
        f"bootstrap, TA exact tuples:          {ta * 1e3:9.2f} ms "
        f"({ta / plain:8.0f}x plain)",
        f"bootstrap, Poissonized tuples:       {poisson_tuples * 1e3:9.2f} ms "
        f"({poisson_tuples / plain:8.0f}x plain)",
        f"bootstrap, weight matrix + pushdown: {matrix * 1e3:9.2f} ms "
        f"({matrix / plain:8.0f}x plain)",
        f"weight matrix vs TA speedup:         {ta / matrix:8.1f}x",
        "paper (§5.1): TA ≈ 8-9x the plain query on a disk-bound stack;",
        "the in-RAM gap here is larger, and Poissonized weighted execution",
        "removes the tuple-materialisation cost entirely.",
    ]
    figure_report("§5.1 — resampling strategy costs", lines)
    benchmark(lambda: None)
    # Qualitative §5.1 ordering: exact TA is far above the plain query,
    # and consolidated weighted execution recovers most of the gap.
    assert ta > 8 * plain
    assert matrix < ta / 2.5
