"""Calibration audit harness: are the fleet's error bars honest?

Every per-query surface in this repo asks "can this answer be
trusted?" *before* shipping it.  The calibration auditor asks the
complementary question *after the fact*, fleet-wide: across everything
we shipped, did the 95 % intervals actually contain the truth 95 % of
the time?  This bench drives the full loop over a Conviva-style
dashboard workload:

1. **Healthy sweep** — hundreds of distinct dashboard panels (rotating
   city/ISP literals over COUNT / AVG / SUM / PERCENTILE / MEDIAN,
   spread across several independently drawn samples so coverage
   observations decorrelate) executed through the engine with
   ``audit_fraction=1.0``.  Repeated panels exercise the materialized
   catalog's exact-replay route; cube-servable shapes exercise the
   partial route; governor degradation levels are imposed on dedicated
   slices so every rung of the ladder appears in the audit stream.
2. **Seeded fault** — one rollup cube's pre-aggregated sums for a
   single measure are silently scaled, the classic stale-materialization
   drift no per-query diagnostic can see (each served answer is
   internally consistent).  The audited partial-route traffic must
   breach its coverage SLO, the breach must invalidate the cube, and
   the breach must be visible in the event log, the auditor report,
   and the OpenMetrics export.
3. **Recovery** — the same panels re-run; with the poisoned cube gone
   they route cold and coverage returns.

Gates (the paper's reliability claim, made operational):

* >= ``audited_target`` audited queries spanning cold, exact, and
  partial routes and every degradation level;
* healthy full-fidelity realized coverage within +/- ``tolerance`` of
  the nominal 95 %;
* degraded levels that ship intervals stay within ``tolerance`` below
  nominal (one-sided; point estimates ship no intervals to audit);
* the seeded fault is detected, the cube invalidated, and traffic
  recovers.

Run directly for a report (also written to
``benchmarks/results/audit.json``)::

    PYTHONPATH=src python benchmarks/bench_audit_calibration.py

or under pytest, where the same run executes as a smoke test.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import warnings
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.pipeline import AQPEngine, EngineConfig
from repro.errors import DegradedResultWarning
from repro.governor import DegradationLevel
from repro.obs import (
    EVENTS,
    METRICS,
    AuditConfig,
    render_audit_report,
    render_openmetrics,
    summarize_events,
)
from repro.workloads.datagen import conviva_sessions_table

RESULTS_DIR = Path(__file__).resolve().parent / "results"

TABLE = "media_sessions"
CITIES = tuple(f"city_{i:02d}" for i in range(25))
ISPS = tuple(f"isp_{i}" for i in range(12))
MEASURES = ("session_time", "buffering_ratio", "startup_ms", "bitrate")
#: The measure the seeded fault poisons.
FAULT_MEASURE = "buffering_ratio"
FAULT_SCOPE = f"table:{TABLE}|route:partial"


def dashboard_panels() -> list[str]:
    """Distinct dashboard-panel queries: fixed shapes, rotating literals."""
    panels: list[str] = []
    for city in CITIES:
        panels.append(
            f"SELECT COUNT(*) FROM {TABLE} WHERE city = '{city}'"
        )
        panels.append(
            f"SELECT SUM(startup_ms) FROM {TABLE} WHERE city = '{city}'"
        )
        for measure in MEASURES:
            panels.append(
                f"SELECT AVG({measure}) FROM {TABLE} WHERE city = '{city}'"
            )
    for isp in ISPS:
        panels.append(f"SELECT COUNT(*) FROM {TABLE} WHERE isp = '{isp}'")
        panels.append(
            f"SELECT SUM(startup_ms) FROM {TABLE} WHERE isp = '{isp}'"
        )
        for measure in MEASURES:
            panels.append(
                f"SELECT AVG({measure}) FROM {TABLE} WHERE isp = '{isp}'"
            )
    for city in CITIES[:12]:
        panels.append(
            f"SELECT PERCENTILE(session_time, 0.5) FROM {TABLE} "
            f"WHERE city = '{city}'"
        )
        panels.append(
            f"SELECT MEDIAN(startup_ms) FROM {TABLE} WHERE city = '{city}'"
        )
    return panels


def interval_degraded_panels() -> list[str]:
    """Large-cell panels for the REDUCED_K / CLOSED_FORM slices.

    Unfiltered, ISP-level, and bitrate-threshold cells keep hundreds
    to thousands of sample rows behind every interval, so the
    closed-form intervals these levels still ship stay deep in CLT
    territory — the slice measures *degradation* calibration, not
    small-cell breakdown.
    """
    panels: list[str] = []
    for measure in MEASURES:
        panels.append(f"SELECT AVG({measure}) FROM {TABLE}")
        for isp in ISPS:
            panels.append(
                f"SELECT AVG({measure}) FROM {TABLE} WHERE isp = '{isp}'"
            )
        for threshold in (375, 560, 750, 1050, 1750):
            panels.append(
                f"SELECT AVG({measure}) FROM {TABLE} "
                f"WHERE bitrate >= {threshold}.0"
            )
    return panels


def point_estimate_panels() -> list[str]:
    """Bootstrap-backed panels for the POINT_ESTIMATE slice.

    At the ladder's bottom rung the bootstrap is skipped entirely, so
    these ship estimates with *no* interval — the audit must find
    nothing to check (closed-form aggregates would still carry their
    free intervals, which is the other slices' job to cover).  The
    measures deliberately avoid every MEDIAN/PERCENTILE panel phase 1a
    stored, so the catalog cannot replay a full-fidelity interval
    under this label.
    """
    return [
        f"SELECT MEDIAN({measure}) FROM {TABLE} WHERE city = '{city}'"
        for city in CITIES
        for measure in ("buffering_ratio", "bytes_streamed")
    ]


def make_engine(
    rows: int, sample_rows: int, num_samples: int, seed: int
) -> AQPEngine:
    engine = AQPEngine(
        EngineConfig(
            run_diagnostics=False,
            tracing=False,
            event_log=True,
            audit_config=AuditConfig(fraction=1.0),
        ),
        seed=seed,
    )
    engine.register_table(
        TABLE, conviva_sessions_table(rows, np.random.default_rng(seed))
    )
    for index in range(num_samples):
        engine.create_sample(TABLE, size=sample_rows, name=f"s{index}")
    return engine


def _poison_cubes(engine: AQPEngine, factor: float) -> int:
    """Scale one measure's pre-aggregated sums in every cube — the
    stale-cube drift.  Replicate and point moments shift together, so
    each served answer stays internally consistent (tight interval
    around a wrong estimate) and only a ground-truth audit can tell.
    """
    poisoned = 0
    for cube in engine.mv_catalog.cubes_for(TABLE):
        if FAULT_MEASURE not in cube.point_sums:
            continue
        cube.point_sums[FAULT_MEASURE] *= factor
        cube.point_sumsqs[FAULT_MEASURE] *= factor * factor
        cube.rep_sums[FAULT_MEASURE] *= factor
        cube.rep_sumsqs[FAULT_MEASURE] *= factor * factor
        poisoned += 1
    # Replayed exact-route answers for the table would serve the
    # pre-fault stored results; the fault models a refresh that went
    # stale *everywhere*, so drop them and let cube serving answer.
    engine.mv_catalog._results = {
        key: entry
        for key, entry in engine.mv_catalog._results.items()
        if entry.table_name != TABLE
    }
    return poisoned


def run_audit_calibration(
    rows: int = 60_000,
    sample_rows: int = 4_000,
    num_samples: int = 6,
    seed: int = 2014,
    tolerance: float = 0.02,
    audited_target: int = 500,
    fault_factor: float = 1.5,
) -> dict:
    """The full three-phase experiment; returns a JSON-friendly report."""
    EVENTS.clear()
    engine = make_engine(rows, sample_rows, num_samples, seed)
    breaches: list[tuple[str, dict]] = []
    engine.auditor.add_breach_listener(
        lambda scope, snap: breaches.append((scope, snap))
    )
    # A stepped-down answer warns by design; hundreds of deliberate
    # degraded executions would otherwise flood the bench output.
    warnings.filterwarnings("ignore", category=DegradedResultWarning)
    started = time.perf_counter()

    # Phase 1a: cold + exact dashboard traffic, rotated across samples.
    panels = dashboard_panels()
    for index, sql in enumerate(panels):
        engine.execute(sql, sample_name=f"s{index % num_samples}")
    # Verbatim repeats of two slices: the catalog's exact-replay route.
    for index, sql in enumerate(panels):
        if index % 3 != 2:
            engine.execute(sql, sample_name=f"s{index % num_samples}")

    # Phase 1b: cube-served (partial-route) traffic.
    engine.materialize(TABLE, ("city", "isp"), sample_name="s0")
    for city in CITIES:
        engine.execute(
            f"SELECT AVG({FAULT_MEASURE}) FROM {TABLE} "
            f"WHERE city = '{city}'"
        )
    for isp in ISPS:
        engine.execute(
            f"SELECT COUNT(*) FROM {TABLE} WHERE isp = '{isp}'"
        )
    engine.execute(
        f"SELECT city, AVG(session_time) FROM {TABLE} GROUP BY city"
    )

    # Phase 1c: every degradation rung, on dedicated slices.  The
    # interval-shipping slices run every panel on every sample —
    # quasi-independent draws behind each coverage observation.
    interval_panels = interval_degraded_panels()
    slices = {
        DegradationLevel.REDUCED_K: interval_panels[0::2],
        DegradationLevel.CLOSED_FORM: interval_panels[1::2],
    }
    for level, sqls in slices.items():
        for sample in range(num_samples):
            for sql in sqls:
                engine.execute(
                    sql, sample_name=f"s{sample}", degradation=level
                )
    for index, sql in enumerate(point_estimate_panels()[:40]):
        engine.execute(
            sql,
            sample_name=f"s{index % num_samples}",
            degradation=DegradationLevel.POINT_ESTIMATE,
        )

    healthy_events = EVENTS.recent()
    healthy = summarize_events(healthy_events, tolerance=tolerance)

    # Phase 2: the seeded stale-cube fault.
    poisoned = _poison_cubes(engine, fault_factor)
    fault_queries = 0
    for city in CITIES:
        if engine.mv_catalog.cubes_for(TABLE) == []:
            break  # breach fired and evicted the poisoned cube
        engine.execute(
            f"SELECT AVG({FAULT_MEASURE}) FROM {TABLE} "
            f"WHERE city = '{city}'"
        )
        fault_queries += 1
    fault_report = engine.auditor.report()
    fault_events = EVENTS.recent()[len(healthy_events):]
    openmetrics_text = render_openmetrics()

    # Phase 3: recovery — the poisoned cube is gone, panels route cold.
    recovery_start = len(EVENTS.recent())
    for city in CITIES:
        engine.execute(
            f"SELECT AVG({FAULT_MEASURE}) FROM {TABLE} "
            f"WHERE city = '{city}'"
        )
    recovery_events = EVENTS.recent()[recovery_start:]

    all_events = EVENTS.recent()
    audited = [event for event in all_events if event.audited]
    report = {
        "config": {
            "rows": rows,
            "sample_rows": sample_rows,
            "num_samples": num_samples,
            "seed": seed,
            "tolerance": tolerance,
            "audited_target": audited_target,
            "fault_factor": fault_factor,
        },
        "elapsed_seconds": round(time.perf_counter() - started, 3),
        "audited_queries": len(audited),
        "routes": sorted({event.route for event in audited}),
        "levels": sorted({event.level for event in audited}),
        "healthy": healthy,
        "fault": {
            "poisoned_cubes": poisoned,
            "queries_to_detection": fault_queries,
            "breach_scopes": sorted({scope for scope, _ in breaches}),
            "cubes_remaining": len(engine.mv_catalog.cubes_for(TABLE)),
            "quality_invalidations": METRICS.counter(
                "catalog.quality_invalidations"
            ).value,
            "uncovered_partial_events": sum(
                1
                for event in fault_events
                if event.route == "partial" and event.covered is False
            ),
            "auditor_breached": fault_report["breached"],
        },
        "recovery": {
            "queries": len(recovery_events),
            "routes": sorted({event.route for event in recovery_events}),
            "first_route": (
                recovery_events[0].route if recovery_events else None
            ),
            "uncovered": sum(
                1
                for event in recovery_events
                if event.covered is False
            ),
            "covered": sum(
                1 for event in recovery_events if event.covered
            ),
        },
        "audit_errors": fault_report["totals"]["audit_errors"],
    }
    report["renders"] = {
        "audit_report_has_breach": "BREACHED"
        in render_audit_report(fault_report),
        "openmetrics_has_breach_counter": _metric_value(
            openmetrics_text, "repro_audit_breaches_total"
        )
        >= 1,
        "openmetrics_has_invalidation": _metric_value(
            openmetrics_text, "repro_catalog_quality_invalidations_total"
        )
        >= 1,
    }
    engine.close()
    return report


def _metric_value(text: str, name: str) -> float:
    for line in text.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[-1])
    return 0.0


def _check_gates(report: dict) -> None:
    config = report["config"]
    tolerance = config["tolerance"]

    # Volume and diversity.
    assert report["audited_queries"] >= config["audited_target"], report[
        "audited_queries"
    ]
    assert set(report["routes"]) >= {"cold", "exact", "partial"}, report[
        "routes"
    ]
    assert set(report["levels"]) == {
        "full", "reduced_k", "closed_form", "point_estimate",
    }, report["levels"]
    assert report["audit_errors"] == 0

    # Healthy-phase calibration: realized coverage within tolerance of
    # nominal, two-sided for full fidelity, one-sided for degraded
    # levels that still ship intervals.  The tolerance bounds
    # *systematic* miscalibration; a bucket audited n times also
    # carries ~binomial sampling error, so each gate widens by two
    # standard errors at its own n (≈0.7 pp for the full bucket's
    # thousand-plus values, a few pp for the smaller degraded slices).
    levels = report["healthy"]["by"]["level"]

    def slack(summary: dict) -> float:
        nominal = summary["nominal"]
        n = summary["audited_values"]
        return tolerance + 2.0 * (nominal * (1 - nominal) / n) ** 0.5

    full = levels["full"]
    assert abs(full["delta"]) <= slack(full), full
    for level in ("reduced_k", "closed_form"):
        summary = levels[level]
        assert summary["audited_values"] >= 100, summary
        assert summary["delta"] >= -slack(summary), (level, summary)
    assert levels["point_estimate"]["coverage"] is None, levels[
        "point_estimate"
    ]

    # The seeded stale cube is caught, invalidated, and visible on
    # every surface.
    fault = report["fault"]
    assert fault["poisoned_cubes"] >= 1
    assert FAULT_SCOPE in fault["breach_scopes"], fault
    assert fault["cubes_remaining"] == 0, fault
    assert fault["quality_invalidations"] >= 1, fault
    assert fault["uncovered_partial_events"] >= 1, fault
    assert FAULT_SCOPE in fault["auditor_breached"], fault
    assert report["renders"]["audit_report_has_breach"]
    assert report["renders"]["openmetrics_has_breach_counter"]
    assert report["renders"]["openmetrics_has_invalidation"]

    # Recovery: the poisoned cube no longer answers (the first
    # post-invalidation query cannot route partial) and coverage
    # returns to honest-interval territory — the occasional 1-in-20
    # statistical miss is expected, the fault phase's near-total miss
    # rate is not.  A *fresh* cube auto-materialized from clean data
    # may legitimately reappear later in the phase.
    recovery = report["recovery"]
    assert recovery["first_route"] != "partial", recovery
    assert recovery["covered"] >= 0.8 * recovery["queries"], recovery


def _render(report: dict) -> list[str]:
    healthy = report["healthy"]["overall"]
    fault = report["fault"]
    lines = [
        f"{report['audited_queries']} audited queries in "
        f"{report['elapsed_seconds']:.1f}s; routes {report['routes']}, "
        f"levels {report['levels']}",
        f"  healthy coverage {healthy['coverage']:.3f} vs nominal "
        f"{healthy['nominal']:.3f} (delta {healthy['delta']:+.3f}, "
        f"tolerance {report['config']['tolerance']:.3f})",
        f"  fault: {fault['poisoned_cubes']} cube(s) poisoned, breach "
        f"after {fault['queries_to_detection']} queries, "
        f"{int(fault['quality_invalidations'])} invalidation(s), "
        f"{fault['uncovered_partial_events']} uncovered partial event(s)",
        f"  recovery: {report['recovery']['covered']}/"
        f"{report['recovery']['queries']} covered via "
        f"{report['recovery']['routes']}, "
        f"{report['recovery']['uncovered']} uncovered",
    ]
    return lines


def test_audit_calibration_smoke(figure_report):
    """Pytest smoke: the full three-phase loop, every gate enforced."""
    report = run_audit_calibration()
    _check_gates(report)
    figure_report(
        "Calibration audit — coverage, breach, recovery", _render(report)
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=60_000)
    parser.add_argument("--sample-rows", type=int, default=4_000)
    parser.add_argument("--num-samples", type=int, default=6)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--tolerance", type=float, default=0.02)
    parser.add_argument("--audited-target", type=int, default=500)
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the JSON report here "
        "(default benchmarks/results/audit.json)",
    )
    args = parser.parse_args(argv)
    report = run_audit_calibration(
        rows=args.rows,
        sample_rows=args.sample_rows,
        num_samples=args.num_samples,
        seed=args.seed,
        tolerance=args.tolerance,
        audited_target=args.audited_target,
    )
    _check_gates(report)
    out = Path(args.out) if args.out else RESULTS_DIR / "audit.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, default=str) + "\n")
    print("\n".join(_render(report)))
    print(f"report written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
