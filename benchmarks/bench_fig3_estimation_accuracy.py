"""Figure 3 + §3 in-text statistics — when error estimation fails.

Reproduces the stacked accuracy breakdown (not-applicable / optimistic /
correct / pessimistic) for bootstrap and closed-form error estimation on
the Facebook-like and Conviva-like workloads, plus the §3 headline
numbers:

* bootstrap error bars far too wide for ~23.94 % and too narrow for
  ~12.2 % of Facebook queries;
* closed forms applicable to ~56.78 % of Facebook queries;
* bootstrap failure on ~86.17 % of MIN/MAX queries;
* bootstrap failure on ~23.19 % of UDF queries.

Scale note: the paper used 69,438/18,321 production queries over
10⁶-row samples; the default here uses generated workloads of
``NUM_QUERIES`` queries over ``SAMPLE_SIZE``-row samples, so percentages
carry Monte-Carlo noise of a few points.  Raise ``REPRO_SCALE`` to
tighten them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Verdict
from repro.workloads import (
    conviva_sessions_table,
    conviva_workload,
    facebook_events_table,
    facebook_workload,
)

from _bench_utils import scaled
from _workload_eval import evaluate_workload, failure_rate, verdict_breakdown

DATASET_ROWS = scaled(300_000)
SAMPLE_SIZE = scaled(15_000)
NUM_QUERIES = scaled(48)
# Keep trials ≥ 24 so a single outlier trial stays within the paper's
# 5 % tolerance band rather than forcing a failure verdict.
NUM_TRIALS = scaled(24)


@pytest.fixture(scope="module")
def facebook_evaluations():
    rng = np.random.default_rng(101)
    table = facebook_events_table(DATASET_ROWS, rng)
    queries = facebook_workload(NUM_QUERIES, rng)
    return evaluate_workload(table, queries, SAMPLE_SIZE, rng, NUM_TRIALS)


@pytest.fixture(scope="module")
def conviva_evaluations():
    rng = np.random.default_rng(202)
    table = conviva_sessions_table(DATASET_ROWS, rng)
    queries = conviva_workload(NUM_QUERIES, rng)
    return evaluate_workload(table, queries, SAMPLE_SIZE, rng, NUM_TRIALS)


def _format_breakdown(label: str, shares: dict[str, float]) -> str:
    return (
        f"  {label:28s} "
        f"n/a {shares['not_applicable']:5.1%}  "
        f"optimistic {shares['optimistic']:5.1%}  "
        f"correct {shares['correct']:5.1%}  "
        f"pessimistic {shares['pessimistic']:5.1%}  "
        f"(excluded {shares['excluded']:.1%})"
    )


def test_fig3_breakdown(
    benchmark, facebook_evaluations, conviva_evaluations, figure_report
):
    def collect():
        return {
            ("bootstrap", "Facebook"): verdict_breakdown(
                facebook_evaluations, "bootstrap"
            ),
            ("closed_form", "Facebook"): verdict_breakdown(
                facebook_evaluations, "closed_form"
            ),
            ("bootstrap", "Conviva"): verdict_breakdown(
                conviva_evaluations, "bootstrap"
            ),
            ("closed_form", "Conviva"): verdict_breakdown(
                conviva_evaluations, "closed_form"
            ),
        }

    breakdowns = benchmark.pedantic(collect, rounds=1)
    lines = [
        f"{NUM_QUERIES} queries/workload; sample n = {SAMPLE_SIZE:,}; "
        f"{NUM_TRIALS} trial samples/query; δ band ±0.2 @ 5% tolerance",
    ]
    for (estimator, workload), shares in breakdowns.items():
        lines.append(_format_breakdown(f"{estimator} ({workload})", shares))
    lines += [
        "",
        "paper Fig. 3 shape: closed forms not applicable to ~43% (FB) /",
        "~63% (Conviva) of queries; bootstrap applicable everywhere but",
        "failing (optimistic+pessimistic) on a sizable minority.",
    ]
    figure_report("Figure 3 — estimation accuracy breakdown", lines)

    fb_boot = breakdowns[("bootstrap", "Facebook")]
    fb_closed = breakdowns[("closed_form", "Facebook")]
    cv_closed = breakdowns[("closed_form", "Conviva")]
    # Bootstrap applies to every query; closed forms only to a subset.
    assert fb_boot["not_applicable"] == 0.0
    assert fb_closed["not_applicable"] > 0.25
    assert cv_closed["not_applicable"] > 0.45
    # Bootstrap must fail on a nontrivial minority — the paper's thesis.
    fb_boot_failures = fb_boot["optimistic"] + fb_boot["pessimistic"]
    assert 0.1 < fb_boot_failures < 0.75
    # Closed forms, where they apply, fail less often than bootstrap
    # overall but still noticeably.
    assert fb_closed["optimistic"] + fb_closed["pessimistic"] > 0.02


def test_sec3_intext_statistics(
    benchmark, facebook_evaluations, conviva_evaluations, figure_report
):
    def collect():
        minmax_rate, minmax_population = failure_rate(
            facebook_evaluations,
            "bootstrap",
            lambda q: q.aggregate_name in ("MIN", "MAX"),
        )
        udf_rate, udf_population = failure_rate(
            facebook_evaluations + conviva_evaluations,
            "bootstrap",
            lambda q: q.has_udf,
        )
        closed_applicable = np.mean(
            [
                e.query.closed_form_applicable
                for e in facebook_evaluations
            ]
        )
        fb_boot = verdict_breakdown(facebook_evaluations, "bootstrap")
        return {
            "minmax": (minmax_rate, minmax_population),
            "udf": (udf_rate, udf_population),
            "closed_applicable": float(closed_applicable),
            "fb_bootstrap_pessimistic": fb_boot["pessimistic"],
            "fb_bootstrap_optimistic": fb_boot["optimistic"],
        }

    stats = benchmark.pedantic(collect, rounds=1)
    minmax_rate, minmax_population = stats["minmax"]
    udf_rate, udf_population = stats["udf"]
    lines = [
        f"{'statistic':52s}{'paper':>10s}{'measured':>10s}",
        f"{'FB bootstrap intervals far too wide (pessimistic)':52s}"
        f"{'23.94%':>10s}{stats['fb_bootstrap_pessimistic']:>10.1%}",
        f"{'FB bootstrap intervals too narrow (optimistic)':52s}"
        f"{'12.2%':>10s}{stats['fb_bootstrap_optimistic']:>10.1%}",
        f"{'FB queries where closed forms apply':52s}"
        f"{'56.78%':>10s}{stats['closed_applicable']:>10.1%}",
        f"{'bootstrap failure on MIN/MAX queries':52s}"
        f"{'86.17%':>10s}{minmax_rate:>10.1%}"
        f"   (population {minmax_population})",
        f"{'bootstrap failure on UDF queries':52s}"
        f"{'23.19%':>10s}{udf_rate:>10.1%}"
        f"   (population {udf_population})",
    ]
    figure_report("§3 in-text statistics — paper vs measured", lines)

    assert minmax_rate > 0.5  # MIN/MAX dominate the failures
    assert stats["closed_applicable"] == pytest.approx(0.5678, abs=0.12)
    # UDF queries fail more than benign mean-like ones but far less than
    # MIN/MAX.
    assert udf_rate < minmax_rate
