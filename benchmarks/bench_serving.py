"""Serving-tier stress: multi-tenant fairness under flood, at 1/4 memory.

Extends :mod:`bench_overload` from a process-local governor to the full
network serving tier (:mod:`repro.serve`).  Three phases:

* **calibrate** — the steady workload runs ungoverned (one engine per
  tenant, a shared track-only accountant) to learn its peak reserved
  footprint; the serving phases then run under **one quarter** of it.
* **isolated** — four steady tenants, four closed-loop clients each,
  against a live server; measures the honest baseline per-tenant
  p50/p99 end-to-end latency (submit → long-poll → result).
* **contended** — the same steady load plus one *flooding* tenant
  hammering submissions far past its quota (tight rate window, small
  concurrency cap, low weight).

The report (p50/p99 per tenant and aggregate, shed rate, Jain's
fairness index over the steady tenants, flood containment) is written
as JSON; the run **fails** unless:

1. zero crashes and zero untyped client errors in any phase;
2. zero dishonest answers — every completed result carries an interval
   or is explicitly flagged (degraded / fell back);
3. the flooding tenant's acceptances stay within its configured quota
   (rate x elapsed plus its concurrency cap, with scheduling slack);
4. the steady tenants' aggregate p99 under flood stays within 2x their
   isolated p99 (plus a small constant for timer noise at smoke scale);
5. Jain's fairness index across the steady tenants' completions is
   >= 0.8;
6. every query the flooder got accepted resolves to a terminal state —
   the serving tier never goes silent on an accepted query;
7. peak reserved bytes stay within the quarter-peak budget and the
   ledger returns to zero.

Run directly (``--smoke`` for the seconds-long CI variant)::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke

or under pytest, where the smoke variant runs as a test.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from bench_overload import build_workload, make_engine_factory
from repro.errors import AdmissionRejectedError, ReproError
from repro.governor import (
    DegradationLevel,
    GovernorConfig,
    MemoryAccountant,
    QueryGovernor,
)
from repro.serve import ServeClient, ServeConfig, ServerThread, TenantConfig
from repro.serve.client import RemoteQueryError
from repro.serve.protocol import TERMINAL_STATES

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The flooding tenant's quota: submissions per second and concurrent.
FLOOD_RATE_LIMIT = 10
FLOOD_MAX_IN_FLIGHT = 2


def _percentile(values: list[float], q: float):
    if not values:
        return None
    return float(np.percentile(np.asarray(values), q))


def _jain(counts: list[int]) -> float:
    """Jain's fairness index: 1.0 = perfectly equal shares."""
    if not counts or sum(counts) == 0:
        return 1.0
    total = float(sum(counts))
    squares = float(sum(c * c for c in counts))
    return (total * total) / (len(counts) * squares)


def _honest(payload: dict) -> bool:
    """A completed remote answer is honest iff every value carries an
    interval or announces its own degradation."""
    result = payload.get("result") or {}
    if result.get("degraded"):
        return True
    for row in result.get("rows", []):
        for value in row.get("values", []):
            if value.get("interval") is None and not value.get("fell_back"):
                return False
    return True


def _steady_phase(
    host: str,
    port: int,
    tenant_names: list[str],
    clients_per_tenant: int,
    client_queries: dict[str, list[list[str]]],
) -> dict:
    """Closed-loop steady clients; returns per-tenant outcome records."""
    records: list[dict] = []
    lock = threading.Lock()

    def client(tenant: str, index: int, sqls: list[str]) -> None:
        handle = ServeClient(host, port, tenant=tenant, timeout=60.0)
        try:
            for sql in sqls:
                started = time.perf_counter()
                outcome = {"tenant": tenant, "client": index}
                try:
                    payload = handle.run(
                        sql, deadline_seconds=120.0, timeout=120.0
                    )
                    outcome["status"] = "completed"
                    outcome["honest"] = _honest(payload)
                except AdmissionRejectedError as error:
                    outcome["status"] = "shed"
                    outcome["reason"] = error.reason
                except RemoteQueryError as error:
                    outcome["status"] = error.state
                except ReproError as error:
                    outcome["status"] = "query_error"
                    outcome["error"] = str(error)
                except BaseException as error:  # zero-crashes invariant
                    outcome["status"] = "crash"
                    outcome["error"] = f"{type(error).__name__}: {error}"
                outcome["seconds"] = time.perf_counter() - started
                with lock:
                    records.append(outcome)
        finally:
            handle.close()

    threads = [
        threading.Thread(
            target=client,
            args=(tenant, index, client_queries[tenant][index]),
            daemon=True,
        )
        for tenant in tenant_names
        for index in range(clients_per_tenant)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    per_tenant = {}
    for tenant in tenant_names:
        mine = [r for r in records if r["tenant"] == tenant]
        latencies = sorted(
            r["seconds"] for r in mine if r["status"] == "completed"
        )
        per_tenant[tenant] = {
            "queries": len(mine),
            "completed": sum(1 for r in mine if r["status"] == "completed"),
            "shed": sum(1 for r in mine if r["status"] == "shed"),
            "crash": sum(1 for r in mine if r["status"] == "crash"),
            "dishonest": sum(
                1
                for r in mine
                if r["status"] == "completed" and not r.get("honest", True)
            ),
            "p50_seconds": _percentile(latencies, 50),
            "p99_seconds": _percentile(latencies, 99),
        }
    all_latencies = sorted(
        r["seconds"] for r in records if r["status"] == "completed"
    )
    total = len(records)
    shed = sum(1 for r in records if r["status"] == "shed")
    return {
        "elapsed_seconds": elapsed,
        "queries": total,
        "completed": sum(1 for r in records if r["status"] == "completed"),
        "shed": shed,
        "shed_rate": shed / total if total else 0.0,
        "crash": sum(1 for r in records if r["status"] == "crash"),
        "dishonest": sum(
            1
            for r in records
            if r["status"] == "completed" and not r.get("honest", True)
        ),
        "p50_seconds": _percentile(all_latencies, 50),
        "p99_seconds": _percentile(all_latencies, 99),
        "fairness_jain": _jain(
            [per_tenant[t]["completed"] for t in tenant_names]
        ),
        "per_tenant": per_tenant,
    }


def _flood(
    host: str, port: int, sql: str, stop: threading.Event
) -> dict:
    """Open-loop flood from the quota-capped tenant.

    Submits as fast as the server answers until ``stop`` fires, then
    polls every accepted id to a terminal state (the no-silence gate).
    """
    handle = ServeClient(host, port, tenant="flooder", timeout=60.0)
    accepted: list[str] = []
    rejected = 0
    reasons: dict[str, int] = {}
    submitted = 0
    started = time.perf_counter()
    try:
        while not stop.is_set():
            submitted += 1
            try:
                accepted.append(
                    handle.submit(sql, deadline_seconds=60.0)
                )
            except AdmissionRejectedError as error:
                rejected += 1
                reasons[error.reason] = reasons.get(error.reason, 0) + 1
                time.sleep(0.002)
            except (ConnectionError, OSError):
                break
        flood_seconds = time.perf_counter() - started
        outcomes: dict[str, int] = {}
        unresolved = 0
        for query_id in accepted:
            try:
                payload = handle.wait(query_id, timeout=120.0)
                state = payload.get("state")
            except (ReproError, TimeoutError, ConnectionError, OSError):
                state = None
            if state in TERMINAL_STATES:
                outcomes[state] = outcomes.get(state, 0) + 1
            else:
                unresolved += 1
    finally:
        handle.close()
    return {
        "submitted": submitted,
        "accepted": len(accepted),
        "rejected": rejected,
        "rejection_reasons": reasons,
        "flood_seconds": flood_seconds,
        "outcomes": outcomes,
        "unresolved": unresolved,
    }


def run_serving(
    tenants: int = 4,
    clients_per_tenant: int = 4,
    queries_per_client: int = 4,
    rows: int = 200_000,
    sample_rows: int = 5_000,
    seed: int = 2014,
    budget_fraction: float = 0.25,
) -> dict:
    """The full three-phase experiment; returns a JSON-friendly report."""
    factory = make_engine_factory(rows, sample_rows, seed)
    tenant_names = [f"tenant_{i}" for i in range(tenants)]
    client_queries = {
        tenant: [
            build_workload(
                queries_per_client, seed + 100 + t_index * 50 + c_index
            )
            for c_index in range(clients_per_tenant)
        ]
        for t_index, tenant in enumerate(tenant_names)
    }

    # ---- phase 0: calibrate the ungoverned peak footprint
    tracker = MemoryAccountant(name="serving-cal")
    engines = [factory(memory=tracker) for _ in range(tenants)]
    try:
        threads = [
            threading.Thread(
                target=lambda e=engine, t=tenant: [
                    e.execute(sql) for sql in client_queries[t][0]
                ],
                daemon=True,
            )
            for engine, tenant in zip(engines, tenant_names)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        for engine in engines:
            engine.close()
    budget = max(1, int(tracker.peak_bytes * budget_fraction))

    def serve_config() -> ServeConfig:
        tenant_configs = {
            name: TenantConfig(name, weight=1.0, max_in_flight=16)
            for name in tenant_names
        }
        tenant_configs["flooder"] = TenantConfig(
            "flooder",
            weight=0.5,
            max_in_flight=FLOOD_MAX_IN_FLIGHT,
            rate_limit=FLOOD_RATE_LIMIT,
            rate_window_seconds=1.0,
        )
        return ServeConfig(
            tenants=tenant_configs,
            max_queue_depth=tenants * clients_per_tenant * 4,
            sweep_interval_seconds=0.1,
        )

    def governor_config() -> GovernorConfig:
        return GovernorConfig(
            max_concurrency=max(2, tenants),
            shed_policy="degrade",
            max_overflow=max(1, tenants // 2),
            overflow_level=DegradationLevel.REDUCED_K,
            max_queue_depth=tenants * clients_per_tenant,
            queue_timeout_seconds=60.0,
            memory_budget_bytes=budget,
        )

    def run_phase(with_flood: bool) -> tuple[dict, dict | None, dict]:
        governor = QueryGovernor(lambda: factory(), governor_config())
        server = ServerThread(governor, serve_config())
        try:
            host, port = server.start()
            stop = threading.Event()
            flood_result: list[dict] = []
            flood_thread = None
            if with_flood:
                flood_sql = client_queries[tenant_names[0]][0][0]
                flood_thread = threading.Thread(
                    target=lambda: flood_result.append(
                        _flood(host, port, flood_sql, stop)
                    ),
                    daemon=True,
                )
                flood_thread.start()
            phase_started = time.perf_counter()
            steady = _steady_phase(
                host,
                port,
                tenant_names,
                clients_per_tenant,
                client_queries,
            )
            if with_flood:
                # Keep the flood going at least long enough for the
                # sliding rate window to bite several times, even when
                # the steady workload finishes in well under a second.
                remaining = 1.5 - (time.perf_counter() - phase_started)
                if remaining > 0:
                    time.sleep(remaining)
            stop.set()
            if flood_thread is not None:
                flood_thread.join(timeout=180.0)
            stats = server.server._op_stats()
            peak = governor.memory.peak_bytes
            used = governor.memory.used_bytes
        finally:
            server.stop(drain_budget_seconds=5.0)
            governor.close()
        stats["peak_reserved_bytes"] = peak
        stats["used_bytes_after"] = used
        return steady, (flood_result[0] if flood_result else None), stats

    isolated, _, isolated_stats = run_phase(with_flood=False)
    contended, flood, contended_stats = run_phase(with_flood=True)

    return {
        "config": {
            "tenants": tenants,
            "clients_per_tenant": clients_per_tenant,
            "queries_per_client": queries_per_client,
            "rows": rows,
            "sample_rows": sample_rows,
            "seed": seed,
            "budget_fraction": budget_fraction,
            "flood_rate_limit": FLOOD_RATE_LIMIT,
            "flood_max_in_flight": FLOOD_MAX_IN_FLIGHT,
        },
        "budget_bytes": budget,
        "ungoverned_peak_bytes": tracker.peak_bytes,
        "isolated": isolated,
        "contended": contended,
        "flood": flood,
        "isolated_server": isolated_stats,
        "contended_server": contended_stats,
    }


def _check_invariants(report: dict) -> None:
    isolated, contended = report["isolated"], report["contended"]
    flood = report["flood"]
    # 1. no crashes anywhere
    assert isolated["crash"] == 0, isolated
    assert contended["crash"] == 0, contended
    # 2. zero dishonest answers
    assert isolated["dishonest"] == 0, isolated
    assert contended["dishonest"] == 0, contended
    # 3. flood containment: acceptances bounded by the quota
    cap = (
        FLOOD_RATE_LIMIT * (flood["flood_seconds"] + 1.0) * 1.5
        + FLOOD_MAX_IN_FLIGHT
    )
    assert flood["accepted"] <= cap, (flood, cap)
    assert flood["rejected"] > 0, flood  # the flood actually flooded
    # 4. steady p99 under flood within 2x isolated (+ timer-noise grace)
    if isolated["p99_seconds"] and contended["p99_seconds"]:
        limit = 2.0 * isolated["p99_seconds"] + 0.5
        assert contended["p99_seconds"] <= limit, (
            f"contended p99 {contended['p99_seconds']:.3f}s exceeds "
            f"{limit:.3f}s (isolated {isolated['p99_seconds']:.3f}s)"
        )
    # 5. fair shares among equal-weight steady tenants
    assert contended["fairness_jain"] >= 0.8, contended["fairness_jain"]
    # 6. the flooder's accepted queries never went silent
    assert flood["unresolved"] == 0, flood
    # 7. memory: within budget, ledger drained
    budget = report["budget_bytes"]
    for key in ("isolated_server", "contended_server"):
        assert report[key]["peak_reserved_bytes"] <= budget, report[key]
        assert report[key]["used_bytes_after"] == 0, report[key]


def _render(report: dict) -> list[str]:
    lines = [
        f"budget: {report['budget_bytes']:,} bytes "
        f"(1/4 of {report['ungoverned_peak_bytes']:,} ungoverned peak)",
    ]
    for phase in ("isolated", "contended"):
        stats = report[phase]
        p50 = stats["p50_seconds"]
        p99 = stats["p99_seconds"]
        lines.append(
            f"{phase:>10}: {stats['completed']}/{stats['queries']} "
            f"completed, shed {stats['shed_rate']:.0%}, "
            f"dishonest {stats['dishonest']}, "
            f"p50 {p50:.3f}s p99 {p99:.3f}s, "
            f"fairness {stats['fairness_jain']:.3f}"
            if p99 is not None
            else f"{phase:>10}: no completions"
        )
    flood = report["flood"]
    if flood:
        lines.append(
            f"     flood: {flood['accepted']}/{flood['submitted']} accepted "
            f"over {flood['flood_seconds']:.1f}s "
            f"(quota {FLOOD_RATE_LIMIT}/s x{FLOOD_MAX_IN_FLIGHT}), "
            f"outcomes {flood['outcomes']}, "
            f"unresolved {flood['unresolved']}"
        )
    return lines


def test_serving_smoke(figure_report):
    """Pytest smoke: tiny workload, every invariant enforced."""
    report = run_serving(
        tenants=4,
        clients_per_tenant=2,
        queries_per_client=2,
        rows=20_000,
        sample_rows=2_000,
    )
    _check_invariants(report)
    figure_report("Serving tier: fairness under flood", _render(report))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--clients-per-tenant", type=int, default=4)
    parser.add_argument("--queries-per-client", type=int, default=4)
    parser.add_argument("--rows", type=int, default=200_000)
    parser.add_argument("--sample-rows", type=int, default=5_000)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--budget-fraction", type=float, default=0.25)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="deterministic seconds-long variant (CI)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the JSON report here "
        "(default benchmarks/results/serving.json)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.tenants, args.clients_per_tenant = 4, 2
        args.queries_per_client = 2
        args.rows, args.sample_rows = 20_000, 2_000
    report = run_serving(
        tenants=args.tenants,
        clients_per_tenant=args.clients_per_tenant,
        queries_per_client=args.queries_per_client,
        rows=args.rows,
        sample_rows=args.sample_rows,
        seed=args.seed,
        budget_fraction=args.budget_fraction,
    )
    _check_invariants(report)
    print("\n".join(_render(report)))
    out = Path(args.out) if args.out else RESULTS_DIR / "serving.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"-- report written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
