"""Perf-regression harness: record a wall-clock baseline for this host.

Times a handful of representative operations (the fanned-out hot loops
plus an end-to-end engine query) and writes ``BENCH_baseline.json`` at
the repo root: machine info + per-bench wall-clock seconds.  Future PRs
rerun this and diff against the committed baseline, so the perf
trajectory of the reproduction is recorded rather than anecdotal.

Usage::

    PYTHONPATH=src python benchmarks/record_bench.py            # write baseline
    PYTHONPATH=src python benchmarks/record_bench.py --compare  # diff vs baseline

Workloads are fixed-seed, so run-to-run variation is scheduling noise,
not statistical noise.  ``REPRO_WORKERS`` applies as usual; the
baseline records which setting was used.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.bootstrap import BootstrapEstimator, bootstrap_table_statistic
from repro.core.diagnostics import DiagnosticConfig, diagnose
from repro.core.estimators import EstimationTarget
from repro.core.ground_truth import DatasetQuery, sampling_distribution
from repro.core.pipeline import AQPEngine, EngineConfig
from repro.engine.aggregates import get_aggregate
from repro.engine.table import Table
from repro.parallel.pool import resolve_num_workers

BASELINE_PATH = REPO_ROOT / "BENCH_baseline.json"

#: Warn when a bench regresses by more than this factor in --compare.
REGRESSION_FACTOR = 1.25

ROWS = 200_000


def _sum_b(table: Table) -> float:
    return float(table.column("b").sum())


def _benches():
    rng = np.random.default_rng(20140622)
    target = EstimationTarget(
        values=rng.lognormal(1.0, 0.6, ROWS),
        aggregate=get_aggregate("AVG"),
        mask=rng.random(ROWS) < 0.8,
        dataset_rows=5 * ROWS,
    )
    table = Table(
        {"a": rng.lognormal(1.0, 0.5, ROWS), "b": rng.normal(50, 8, ROWS)},
        name="t",
    )
    query = DatasetQuery(
        values=rng.lognormal(1.0, 0.6, 300_000), aggregate=get_aggregate("AVG")
    )

    def bootstrap_fast_path():
        estimator = BootstrapEstimator(400, np.random.default_rng(17))
        return estimator.resample_distribution(target)

    def bootstrap_black_box():
        return bootstrap_table_statistic(
            table.head(20_000), _sum_b, 100, np.random.default_rng(19)
        )

    def diagnostic():
        return diagnose(
            target,
            BootstrapEstimator(100, np.random.default_rng(23)),
            0.95,
            DiagnosticConfig(num_subsamples=60, num_sizes=3),
            np.random.default_rng(23),
        )

    def ground_truth():
        return sampling_distribution(
            query, 20_000, 200, np.random.default_rng(29)
        )

    def engine_end_to_end():
        engine = AQPEngine(EngineConfig(), seed=31)
        engine.register_table("t", table)
        engine.create_sample("t", size=50_000)
        with engine:
            for _ in range(5):
                engine.execute("SELECT AVG(a) FROM t WHERE b > 45")
        return engine.plan_cache_info()

    return {
        "bootstrap_fast_path": bootstrap_fast_path,
        "bootstrap_black_box": bootstrap_black_box,
        "diagnostic": diagnostic,
        "ground_truth_trials": ground_truth,
        "engine_end_to_end": engine_end_to_end,
    }


def machine_info() -> dict:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
        "num_workers": resolve_num_workers(None),
    }


def run_benches(repeats: int = 3) -> dict[str, float]:
    """Best-of-``repeats`` wall-clock seconds per bench."""
    results: dict[str, float] = {}
    for name, fn in _benches().items():
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        results[name] = round(best, 4)
        print(f"  {name:24s} {results[name]:8.3f}s")
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--compare",
        action="store_true",
        help="compare against the committed baseline instead of rewriting it",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    print(f"recording benches (best of {args.repeats}):")
    timings = run_benches(args.repeats)

    if args.compare:
        if not BASELINE_PATH.exists():
            print(f"no baseline at {BASELINE_PATH}; run without --compare")
            return 2
        baseline = json.loads(BASELINE_PATH.read_text())
        regressions = []
        print("\nvs baseline:")
        for name, now in timings.items():
            then = baseline["benches"].get(name)
            if then is None:
                print(f"  {name:24s} (new bench, no baseline)")
                continue
            ratio = now / then if then else float("inf")
            flag = "  REGRESSION" if ratio > REGRESSION_FACTOR else ""
            print(f"  {name:24s} {then:8.3f}s -> {now:8.3f}s ({ratio:4.2f}x){flag}")
            if ratio > REGRESSION_FACTOR:
                regressions.append(name)
        if regressions:
            print(f"\n{len(regressions)} bench(es) regressed: {regressions}")
            return 1
        print("\nno regressions")
        return 0

    payload = {
        "schema": 1,
        "machine": machine_info(),
        "repeats": args.repeats,
        "benches": timings,
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
