"""Perf-regression harness: record a wall-clock baseline for this host.

Times a handful of representative operations (the fanned-out hot loops
plus an end-to-end engine query) and writes ``BENCH_baseline.json`` at
the repo root: machine info + per-bench wall-clock seconds.  Future PRs
rerun this and diff against the committed baseline, so the perf
trajectory of the reproduction is recorded rather than anecdotal.

Usage::

    PYTHONPATH=src python benchmarks/record_bench.py            # write baseline
    PYTHONPATH=src python benchmarks/record_bench.py --compare  # diff vs baseline
    PYTHONPATH=src python benchmarks/record_bench.py --smoke \\
        --out BENCH_smoke.json --trace-sample trace_sample.json

``--smoke`` shrinks every workload so the whole recording finishes in
seconds — a CI-friendly canary (``make bench-smoke``) whose JSON is
uploaded as a build artifact rather than diffed against the committed
baseline.  ``--trace-sample FILE`` additionally runs one traced engine
query and exports its span tree as ``chrome://tracing`` JSON, so every
CI run leaves an inspectable query timeline behind.

Workloads are fixed-seed, so run-to-run variation is scheduling noise,
not statistical noise.  ``REPRO_WORKERS`` applies as usual; the
baseline records which setting was used.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.bootstrap import BootstrapEstimator, bootstrap_table_statistic
from repro.core.diagnostics import DiagnosticConfig, diagnose
from repro.core.estimators import EstimationTarget
from repro.core.ground_truth import DatasetQuery, sampling_distribution
from repro.core.pipeline import AQPEngine, EngineConfig
from repro.engine.aggregates import get_aggregate
from repro.engine.table import Table
from repro.parallel.pool import resolve_num_workers

BASELINE_PATH = REPO_ROOT / "BENCH_baseline.json"

#: Warn when a bench regresses by more than this factor in --compare.
REGRESSION_FACTOR = 1.25

ROWS = 200_000

#: --smoke divides sizes/iteration counts by this factor.
SMOKE_FACTOR = 10


def _sum_b(table: Table) -> float:
    return float(table.column("b").sum())


def _benches(smoke: bool = False):
    scale = SMOKE_FACTOR if smoke else 1
    rows = ROWS // scale
    rng = np.random.default_rng(20140622)
    target = EstimationTarget(
        values=rng.lognormal(1.0, 0.6, rows),
        aggregate=get_aggregate("AVG"),
        mask=rng.random(rows) < 0.8,
        dataset_rows=5 * rows,
    )
    table = Table(
        {"a": rng.lognormal(1.0, 0.5, rows), "b": rng.normal(50, 8, rows)},
        name="t",
    )
    query = DatasetQuery(
        values=rng.lognormal(1.0, 0.6, 300_000 // scale),
        aggregate=get_aggregate("AVG"),
    )

    def bootstrap_fast_path():
        estimator = BootstrapEstimator(400 // scale, np.random.default_rng(17))
        return estimator.resample_distribution(target)

    def bootstrap_black_box():
        return bootstrap_table_statistic(
            table.head(20_000 // scale),
            _sum_b,
            100 // scale,
            np.random.default_rng(19),
        )

    def diagnostic():
        return diagnose(
            target,
            BootstrapEstimator(100 // scale, np.random.default_rng(23)),
            0.95,
            DiagnosticConfig(num_subsamples=60 // scale, num_sizes=3),
            np.random.default_rng(23),
        )

    def ground_truth():
        return sampling_distribution(
            query, 20_000 // scale, 200 // scale, np.random.default_rng(29)
        )

    def engine_end_to_end():
        engine = AQPEngine(EngineConfig(), seed=31)
        engine.register_table("t", table)
        engine.create_sample("t", size=50_000 // scale)
        with engine:
            for _ in range(5):
                engine.execute("SELECT AVG(a) FROM t WHERE b > 45")
        return engine.plan_cache_info()

    return {
        "bootstrap_fast_path": bootstrap_fast_path,
        "bootstrap_black_box": bootstrap_black_box,
        "diagnostic": diagnostic,
        "ground_truth_trials": ground_truth,
        "engine_end_to_end": engine_end_to_end,
    }


def machine_info() -> dict:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
        "num_workers": resolve_num_workers(None),
    }


def write_trace_sample(path: Path) -> Path:
    """Run one traced engine query and export its chrome://tracing JSON."""
    from repro.obs import write_chrome_trace

    rng = np.random.default_rng(43)
    engine = AQPEngine(EngineConfig(), seed=43)
    engine.register_table(
        "t",
        Table(
            {"a": rng.lognormal(1.0, 0.5, 40_000), "b": rng.normal(50, 8, 40_000)},
            name="t",
        ),
    )
    engine.create_sample("t", size=10_000)
    with engine:
        result = engine.execute("SELECT MEDIAN(a) FROM t WHERE b > 45")
    return write_chrome_trace(result.trace, path)


def run_benches(repeats: int = 3, smoke: bool = False) -> dict[str, float]:
    """Best-of-``repeats`` wall-clock seconds per bench."""
    results: dict[str, float] = {}
    for name, fn in _benches(smoke).items():
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        results[name] = round(best, 4)
        print(f"  {name:24s} {results[name]:8.3f}s")
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--compare",
        action="store_true",
        help="compare against the committed baseline instead of rewriting it",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink workloads ~10x for a seconds-long CI canary run",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="FILE",
        help="output JSON path (default: BENCH_baseline.json at repo root)",
    )
    parser.add_argument(
        "--trace-sample",
        type=Path,
        default=None,
        metavar="FILE",
        help="also run one traced query and write its chrome://tracing JSON",
    )
    args = parser.parse_args()
    out_path = args.out or BASELINE_PATH
    if args.smoke and args.out is None:
        parser.error("--smoke requires --out (refusing to overwrite baseline)")

    mode = "smoke" if args.smoke else "full"
    print(f"recording benches ({mode}, best of {args.repeats}):")
    timings = run_benches(args.repeats, smoke=args.smoke)

    if args.trace_sample is not None:
        path = write_trace_sample(args.trace_sample)
        print(f"wrote sample trace to {path} (load in chrome://tracing)")

    if args.compare:
        if not BASELINE_PATH.exists():
            print(f"no baseline at {BASELINE_PATH}; run without --compare")
            return 2
        baseline = json.loads(BASELINE_PATH.read_text())
        regressions = []
        print("\nvs baseline:")
        for name, now in timings.items():
            then = baseline["benches"].get(name)
            if then is None:
                print(f"  {name:24s} (new bench, no baseline)")
                continue
            ratio = now / then if then else float("inf")
            flag = "  REGRESSION" if ratio > REGRESSION_FACTOR else ""
            print(f"  {name:24s} {then:8.3f}s -> {now:8.3f}s ({ratio:4.2f}x){flag}")
            if ratio > REGRESSION_FACTOR:
                regressions.append(name)
        if regressions:
            print(f"\n{len(regressions)} bench(es) regressed: {regressions}")
            return 1
        print("\nno regressions")
        return 0

    payload = {
        "schema": 1,
        "mode": mode,
        "machine": machine_info(),
        "repeats": args.repeats,
        "benches": timings,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
