"""Perf-regression harness: record a wall-clock baseline for this host.

Times a handful of representative operations (the fanned-out hot loops
plus an end-to-end engine query) and writes ``BENCH_baseline.json`` at
the repo root: machine info + per-bench wall-clock seconds.  Future PRs
rerun this and diff against the committed baseline, so the perf
trajectory of the reproduction is recorded rather than anecdotal.

Usage::

    PYTHONPATH=src python benchmarks/record_bench.py            # write baseline
    PYTHONPATH=src python benchmarks/record_bench.py --compare  # diff vs baseline
    PYTHONPATH=src python benchmarks/record_bench.py --smoke \\
        --out benchmarks/results/BENCH_smoke.json \\
        --trace-sample benchmarks/results/trace_sample.json

``--smoke`` shrinks every workload so the whole recording finishes in
seconds — a CI-friendly canary (``make bench-smoke``) whose JSON is
uploaded as a build artifact rather than diffed against the committed
baseline.  ``--trace-sample FILE`` additionally runs one traced engine
query and exports its span tree as ``chrome://tracing`` JSON, so every
CI run leaves an inspectable query timeline behind.

Workloads are fixed-seed, so run-to-run variation is scheduling noise,
not statistical noise.  ``REPRO_WORKERS`` applies as usual; the
baseline records which setting was used.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.bootstrap import BootstrapEstimator, bootstrap_table_statistic
from repro.core.diagnostics import DiagnosticConfig, diagnose
from repro.core.estimators import EstimationTarget
from repro.core.grouped import GroupedTarget
from repro.core.ground_truth import DatasetQuery, sampling_distribution
from repro.core.pipeline import AQPEngine, EngineConfig
from repro.engine.aggregates import get_aggregate
from repro.engine.table import Table
from repro.parallel.ops import grouped_bootstrap_replicates
from repro.parallel.pool import resolve_num_workers

BASELINE_PATH = REPO_ROOT / "BENCH_baseline.json"

#: Warn when a bench regresses by more than this factor in --compare.
REGRESSION_FACTOR = 1.25

#: Absolute slack under which a ratio blow-up is scheduling noise, not a
#: regression: sub-hundredth-of-a-second benches easily double on a busy
#: CI runner without any code change.
NOISE_FLOOR_SECONDS = 0.02

ROWS = 200_000

#: --smoke divides sizes/iteration counts by this factor.
SMOKE_FACTOR = 10


def _sum_b(table: Table) -> float:
    return float(table.column("b").sum())


def _benches(smoke: bool = False):
    scale = SMOKE_FACTOR if smoke else 1
    rows = ROWS // scale
    rng = np.random.default_rng(20140622)
    target = EstimationTarget(
        values=rng.lognormal(1.0, 0.6, rows),
        aggregate=get_aggregate("AVG"),
        mask=rng.random(rows) < 0.8,
        dataset_rows=5 * rows,
    )
    table = Table(
        {"a": rng.lognormal(1.0, 0.5, rows), "b": rng.normal(50, 8, rows)},
        name="t",
    )
    query = DatasetQuery(
        values=rng.lognormal(1.0, 0.6, 300_000 // scale),
        aggregate=get_aggregate("AVG"),
    )

    def bootstrap_fast_path():
        estimator = BootstrapEstimator(400 // scale, np.random.default_rng(17))
        return estimator.resample_distribution(target)

    def bootstrap_black_box():
        return bootstrap_table_statistic(
            table.head(20_000 // scale),
            _sum_b,
            100 // scale,
            np.random.default_rng(19),
        )

    def diagnostic():
        return diagnose(
            target,
            BootstrapEstimator(100 // scale, np.random.default_rng(23)),
            0.95,
            DiagnosticConfig(num_subsamples=60 // scale, num_sizes=3),
            np.random.default_rng(23),
        )

    def ground_truth():
        return sampling_distribution(
            query, 20_000 // scale, 200 // scale, np.random.default_rng(29)
        )

    def engine_end_to_end():
        engine = AQPEngine(EngineConfig(), seed=31)
        engine.register_table("t", table)
        engine.create_sample("t", size=50_000 // scale)
        with engine:
            for _ in range(5):
                engine.execute("SELECT AVG(a) FROM t WHERE b > 45")
        return engine.plan_cache_info()

    # Segmented grouped-bootstrap kernel (§5.3.1 across GROUP BY): one
    # weight matrix answers every group, so the cost should be flat in G.
    grouped_values = rng.lognormal(1.0, 0.6, rows)
    grouped_mask = rng.random(rows) < 0.8
    grouped_targets = {
        label: GroupedTarget(
            values=grouped_values,
            group_ids=rng.integers(0, num_groups, rows),
            num_groups=num_groups,
            aggregate=get_aggregate("AVG"),
            mask=grouped_mask,
        )
        for label, num_groups in (
            ("g10", 10),
            ("g1k", 1000),
            ("g100k", 100_000),
        )
    }

    def grouped_bootstrap(label):
        def bench():
            return grouped_bootstrap_replicates(
                grouped_targets[label], 100 // scale, seed=37
            )

        return bench

    # Materialized catalog: repeated dashboard shapes served from the
    # result store (exact) and from rollup-cube moments (partial).
    cat_engine = AQPEngine(EngineConfig(), seed=41)
    cat_engine.register_table(
        "sessions",
        Table(
            {
                "a": rng.lognormal(1.0, 0.5, rows),
                "seg": np.char.add(
                    "s", rng.integers(0, 8, rows).astype(str)
                ),
            },
            name="sessions",
        ),
    )
    cat_engine.create_sample("sessions", size=max(rows // 4, 2_000))
    cat_engine.materialize("sessions", ("seg",))
    cat_engine.execute(
        "SELECT AVG(a) FROM sessions", run_diagnostics=False
    )  # cold miss; stored for the exact-hit bench

    def catalog_exact_hit():
        for _ in range(100):
            cat_engine.execute(
                "SELECT AVG(a) FROM sessions", run_diagnostics=False
            )

    def catalog_partial_hit():
        # Partial hits re-aggregate the cube each time (they are never
        # stored), so every iteration exercises the serving path.
        for _ in range(100):
            cat_engine.execute(
                "SELECT COUNT(*) FROM sessions WHERE seg = 's3'",
                run_diagnostics=False,
            )

    return {
        "bootstrap_fast_path": bootstrap_fast_path,
        "bootstrap_black_box": bootstrap_black_box,
        "diagnostic": diagnostic,
        "ground_truth_trials": ground_truth,
        "engine_end_to_end": engine_end_to_end,
        "grouped_bootstrap_g10": grouped_bootstrap("g10"),
        "grouped_bootstrap_g1k": grouped_bootstrap("g1k"),
        "grouped_bootstrap_g100k": grouped_bootstrap("g100k"),
        "catalog_exact_hit": catalog_exact_hit,
        "catalog_partial_hit": catalog_partial_hit,
    }


def compare_benches(
    timings: dict[str, float], baseline_benches: dict[str, float]
) -> tuple[dict[str, dict], list[str], list[str]]:
    """Diff ``timings`` against a baseline's per-bench seconds.

    Returns ``(comparison, regressions, unmatched)``: the per-bench
    table, the names that regressed, and the names with no baseline
    entry (plus baseline entries that were not run).  Unmatched names
    are *not* a pass — a bench silently dropping out of the baseline is
    exactly how a regression guard rots — so callers surface them
    loudly and CI records them in the comparison artifact.
    """
    comparison: dict[str, dict] = {}
    regressions: list[str] = []
    unmatched: list[str] = []
    for name, now in timings.items():
        then = baseline_benches.get(name)
        if then is None:
            unmatched.append(name)
            comparison[name] = {
                "baseline": None,
                "current": now,
                "ratio": None,
                "regression": False,
            }
            continue
        ratio = now / then if then else float("inf")
        # A regression needs both a relative blow-up and an absolute
        # cost above the noise floor — micro-benches double for free
        # on a loaded runner.
        regressed = (
            ratio > REGRESSION_FACTOR
            and (now - then) > NOISE_FLOOR_SECONDS
        )
        comparison[name] = {
            "baseline": then,
            "current": now,
            "ratio": round(ratio, 4) if then else None,
            "regression": regressed,
        }
        if regressed:
            regressions.append(name)
    for name in baseline_benches:
        if name not in timings:
            unmatched.append(name)
    return comparison, regressions, unmatched


def machine_info() -> dict:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
        "num_workers": resolve_num_workers(None),
    }


def write_trace_sample(path: Path) -> Path:
    """Run one traced engine query and export its chrome://tracing JSON."""
    from repro.obs import write_chrome_trace

    rng = np.random.default_rng(43)
    engine = AQPEngine(EngineConfig(), seed=43)
    engine.register_table(
        "t",
        Table(
            {"a": rng.lognormal(1.0, 0.5, 40_000), "b": rng.normal(50, 8, 40_000)},
            name="t",
        ),
    )
    engine.create_sample("t", size=10_000)
    with engine:
        result = engine.execute("SELECT MEDIAN(a) FROM t WHERE b > 45")
    return write_chrome_trace(result.trace, path)


def run_benches(repeats: int = 3, smoke: bool = False) -> dict[str, float]:
    """Best-of-``repeats`` wall-clock seconds per bench."""
    results: dict[str, float] = {}
    for name, fn in _benches(smoke).items():
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        results[name] = round(best, 4)
        print(f"  {name:24s} {results[name]:8.3f}s")
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--compare",
        action="store_true",
        help="compare against the committed baseline instead of rewriting it",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink workloads ~10x for a seconds-long CI canary run",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="FILE",
        help="output JSON path (default: BENCH_baseline.json at repo root)",
    )
    parser.add_argument(
        "--trace-sample",
        type=Path,
        default=None,
        metavar="FILE",
        help="also run one traced query and write its chrome://tracing JSON",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "baseline JSON for --compare (default: BENCH_baseline.json; "
            "pass BENCH_smoke_baseline.json for the CI smoke guard)"
        ),
    )
    parser.add_argument(
        "--compare-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the per-bench comparison table as JSON (CI artifact)",
    )
    args = parser.parse_args()
    out_path = args.out or BASELINE_PATH
    if args.smoke and args.out is None and not args.compare:
        parser.error("--smoke requires --out (refusing to overwrite baseline)")

    mode = "smoke" if args.smoke else "full"
    print(f"recording benches ({mode}, best of {args.repeats}):")
    timings = run_benches(args.repeats, smoke=args.smoke)

    if args.trace_sample is not None:
        path = write_trace_sample(args.trace_sample)
        print(f"wrote sample trace to {path} (load in chrome://tracing)")

    payload = {
        "schema": 1,
        "mode": mode,
        "machine": machine_info(),
        "repeats": args.repeats,
        "benches": timings,
    }
    if args.out is not None:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.out}")

    if args.compare:
        baseline_path = args.baseline or BASELINE_PATH
        if not baseline_path.exists():
            print(f"no baseline at {baseline_path}; run without --compare")
            return 2
        baseline = json.loads(baseline_path.read_text())
        comparison, regressions, unmatched = compare_benches(
            timings, baseline["benches"]
        )
        print(f"\nvs baseline ({baseline_path.name}):")
        for name, row in comparison.items():
            if row["baseline"] is None:
                continue
            flag = "  REGRESSION" if row["regression"] else ""
            print(
                f"  {name:24s} {row['baseline']:8.3f}s -> "
                f"{row['current']:8.3f}s ({row['ratio']:4.2f}x){flag}"
            )
        for name in unmatched:
            print(
                f"  WARNING: {name!r} has no counterpart in "
                f"{baseline_path.name} — not compared; re-record the "
                "baseline so the regression guard covers it"
            )
        if args.compare_out is not None:
            args.compare_out.write_text(
                json.dumps(
                    {
                        "schema": 1,
                        "mode": mode,
                        "baseline_file": baseline_path.name,
                        "regression_factor": REGRESSION_FACTOR,
                        "noise_floor_seconds": NOISE_FLOOR_SECONDS,
                        "machine": machine_info(),
                        "benches": comparison,
                        "regressions": regressions,
                        "unmatched": unmatched,
                    },
                    indent=2,
                )
                + "\n"
            )
            print(f"wrote comparison to {args.compare_out}")
        if regressions:
            print(f"\n{len(regressions)} bench(es) regressed: {regressions}")
            return 1
        print("\nno regressions")
        return 0

    if args.out is None:
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
