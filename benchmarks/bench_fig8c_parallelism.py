"""Figure 8(c) — response time vs degree of parallelism.

Sweeps the number of machines the §5.3-optimised error-estimation and
diagnostic jobs may use, averaged over QSet-1 + QSet-2, with .01/.99
quantile bars like the paper's plot.

Paper shape: "most efficient when executed on up to 20 machines";
beyond that, task scheduling and communication overheads offset the
parallelism gains.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSimulator, PAPER_CLUSTER, build_phases
from repro.workloads import qset1_specs, qset2_specs

from _bench_utils import scaled

NUM_QUERIES = scaled(40)
MACHINE_COUNTS = (1, 2, 5, 10, 20, 40, 60, 80, 100)


@pytest.fixture(scope="module")
def sweep():
    rng = np.random.default_rng(83)
    sim = ClusterSimulator(PAPER_CLUSTER)
    specs = qset1_specs(NUM_QUERIES // 2, rng) + qset2_specs(
        NUM_QUERIES // 2, rng
    )
    results: dict[int, np.ndarray] = {}
    for machines in MACHINE_COUNTS:
        totals = []
        for spec in specs:
            phases = build_phases(spec, optimized=True)
            total = sum(
                sim.simulate(job, num_machines=machines, rng=rng).total_seconds
                for job in (
                    phases.execution,
                    phases.error_estimation,
                    phases.diagnostics,
                )
            )
            totals.append(total)
        results[machines] = np.array(totals)
    return results


def test_fig8c_parallelism_sweet_spot(benchmark, sweep, figure_report):
    benchmark.pedantic(lambda: None, rounds=1)
    lines = [
        f"{NUM_QUERIES} queries (QSet-1 + QSet-2), §5.3-optimised plans; "
        "end-to-end seconds vs machines, mean [p01, p99]",
    ]
    means = {}
    for machines, totals in sweep.items():
        mean = float(totals.mean())
        low, high = np.quantile(totals, [0.01, 0.99])
        means[machines] = mean
        bar = "#" * max(1, int(mean))
        lines.append(
            f"  {machines:4d} machines  {mean:8.2f}s  "
            f"[{low:6.2f}, {high:6.2f}]  {bar}"
        )
    best = min(means, key=means.get)
    lines += [
        f"best machine count: {best} "
        "(paper: ~20; an interior optimum, not the full fleet)",
    ]
    figure_report("Figure 8(c) — degree-of-parallelism sweep", lines)

    # The optimum is interior: neither 1-2 machines nor the full fleet.
    assert 5 <= best <= 40
    assert means[best] < means[1] / 2
    assert means[100] > means[best]
