"""Ablation — automatic degree-of-parallelism selection.

§7.3 leaves choosing the degree of parallelism automatically as future
work; :func:`repro.cluster.autotune.tune_parallelism` implements it.
This bench checks the tuner against an exhaustive grid: the chosen
machine count's latency must be within a few percent of the best grid
point, at a fraction of the grid's simulation budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    AQPQuerySpec,
    ClusterSimulator,
    PAPER_CLUSTER,
    build_phases,
    tune_parallelism,
)
from repro.cluster.config import GB

from _bench_utils import scaled

GRID = tuple(range(2, 101, 2))
REPETITIONS = scaled(5)


@pytest.fixture(scope="module")
def jobs():
    spec = AQPQuerySpec(
        sample_bytes=20 * GB,
        sample_rows=40_000_000,
        selectivity=0.2,
        closed_form=False,
    )
    phases = build_phases(spec, optimized=True)
    return [phases.execution, phases.error_estimation, phases.diagnostics]


def grid_search(simulator, jobs, rng):
    results = {}
    for machines in GRID:
        totals = [
            sum(
                simulator.simulate(
                    job, machines, True, rng
                ).total_seconds
                for job in jobs
            )
            for __ in range(REPETITIONS)
        ]
        results[machines] = float(np.mean(totals))
    return results


def test_autotune_vs_grid(benchmark, jobs, figure_report):
    simulator = ClusterSimulator(PAPER_CLUSTER)

    def run():
        rng = np.random.default_rng(62)
        grid = grid_search(simulator, jobs, rng)
        tuned = tune_parallelism(
            simulator, jobs, repetitions=REPETITIONS, rng=rng
        )
        return grid, tuned

    grid, tuned = benchmark.pedantic(run, rounds=1)
    grid_best = min(grid, key=grid.get)
    lines = [
        f"QSet-2 query phases; grid = every 2 machines × {REPETITIONS} "
        "reps; tuner = geometric + local refinement",
        f"grid optimum:  {grid_best:3d} machines → {grid[grid_best]:6.2f}s "
        f"({len(GRID) * REPETITIONS} simulations)",
        f"tuner choice:  {tuned.best_machines:3d} machines → "
        f"{tuned.best_seconds:6.2f}s "
        f"({len(tuned.evaluated) * REPETITIONS} simulations)",
        f"tuner latency gap vs grid optimum: "
        f"{tuned.best_seconds / grid[grid_best] - 1:+.1%}",
    ]
    figure_report("Ablation — automatic parallelism tuning", lines)

    # The tuner's pick is near-optimal at a fraction of the budget.
    assert tuned.best_seconds <= grid[grid_best] * 1.15
    assert len(tuned.evaluated) < len(GRID) / 2
