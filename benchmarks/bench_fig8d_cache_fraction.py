"""Figure 8(d) — response time vs fraction of input samples cached.

The §6.2 tradeoff: RAM spent caching input samples is unavailable as
execution working memory.  Caching more makes scans faster but
eventually starves query execution into spilling.  The paper finds the
best end-to-end times with 30–40 % of the total inputs cached
(≈180–240 GB of the 600 GB aggregate RAM).

The sweep mirrors that deployment: the catalog's sample collection
totals ≈600 GB fleet-wide; each query's jobs see scan speed according
to its own sample's cache residency, while the fleet-wide cache
commitment squeezes the working memory all queries share.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import ClusterSimulator, PAPER_CLUSTER, build_phases
from repro.cluster.config import GB
from repro.workloads import qset1_specs, qset2_specs

from _bench_utils import scaled

NUM_QUERIES = scaled(30)
CACHE_FRACTIONS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0)
#: The deployment's sample-collection footprint and concurrent working set.
TOTAL_SAMPLES_BYTES = 600 * GB
FLEET_WORKING_SET_BYTES = 480 * GB


@pytest.fixture(scope="module")
def sweep():
    rng = np.random.default_rng(84)
    sim = ClusterSimulator(PAPER_CLUSTER)
    results: dict[float, np.ndarray] = {}
    for fraction in CACHE_FRACTIONS:
        specs = qset1_specs(
            NUM_QUERIES // 2, np.random.default_rng(1), cached_fraction=fraction
        ) + qset2_specs(
            NUM_QUERIES // 2, np.random.default_rng(2), cached_fraction=fraction
        )
        totals = []
        for spec in specs:
            phases = build_phases(spec, optimized=True)
            jobs = [
                replace(
                    job,
                    cached_input_bytes=fraction * TOTAL_SAMPLES_BYTES,
                    intermediate_bytes=max(
                        job.intermediate_bytes, FLEET_WORKING_SET_BYTES
                    ),
                )
                for job in (
                    phases.execution,
                    phases.error_estimation,
                    phases.diagnostics,
                )
            ]
            totals.append(
                sum(
                    sim.simulate(
                        job, num_machines=20, straggler_mitigation=True, rng=rng
                    ).total_seconds
                    for job in jobs
                )
            )
        results[fraction] = np.array(totals)
    return results


def test_fig8d_cache_fraction_sweet_spot(benchmark, sweep, figure_report):
    benchmark.pedantic(lambda: None, rounds=1)
    lines = [
        f"{NUM_QUERIES} queries; 600 GB of samples fleet-wide, "
        "~480 GB concurrent working set; mean end-to-end seconds",
    ]
    means = {}
    for fraction, totals in sweep.items():
        mean = float(totals.mean())
        means[fraction] = mean
        bar = "#" * max(1, int(mean * 4))
        lines.append(f"  {fraction:5.0%} cached  {mean:8.2f}s  {bar}")
    best = min(means, key=means.get)
    lines += [
        f"best cache fraction: {best:.0%} "
        "(paper: 30-40% of total inputs cached)",
    ]
    figure_report("Figure 8(d) — input-cache fraction sweep", lines)

    # U-shape: an interior optimum beats both extremes.
    assert 0.1 <= best <= 0.6
    assert means[best] < means[0.0]
    assert means[best] < means[1.0]
