"""Figure 7(a)/(b) — naive end-to-end response times.

Simulates the §5.2 baseline (per-resample subqueries, resampling before
filters, one task per subquery) for QSet-1 (closed-form error) and
QSet-2 (bootstrap-only) on the paper's 100-machine cluster, decomposing
each query's response time into query execution, error-estimation
overhead, and diagnostics overhead.

Paper shape: the naive implementation "typically takes several minutes
to run (and ... costs 100× to 1000× more resources)", with diagnostics
dominating QSet-2.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSimulator, PAPER_CLUSTER, build_phases
from repro.workloads import qset1_specs, qset2_specs

from _bench_utils import scaled

NUM_QUERIES = scaled(100)


def simulate_qset(specs, rng):
    sim = ClusterSimulator(PAPER_CLUSTER)
    rows = []
    for spec in specs:
        phases = build_phases(spec, optimized=False)
        rows.append(
            {
                "execution": sim.simulate(phases.execution, rng=rng).total_seconds,
                "error": sim.simulate(
                    phases.error_estimation, rng=rng
                ).total_seconds,
                "diagnostics": sim.simulate(
                    phases.diagnostics, rng=rng
                ).total_seconds,
            }
        )
    return rows


def summarize(rows):
    def stats(key):
        values = np.array([row[key] for row in rows])
        return (
            float(values.min()),
            float(np.median(values)),
            float(values.max()),
        )

    return {key: stats(key) for key in ("execution", "error", "diagnostics")}


@pytest.fixture(scope="module")
def qset_rows():
    rng = np.random.default_rng(71)
    return {
        "QSet-1": simulate_qset(qset1_specs(NUM_QUERIES, rng), rng),
        "QSet-2": simulate_qset(qset2_specs(NUM_QUERIES, rng), rng),
    }


def test_fig7_naive_latencies(benchmark, qset_rows, figure_report):
    summaries = benchmark.pedantic(
        lambda: {name: summarize(rows) for name, rows in qset_rows.items()},
        rounds=1,
    )
    lines = [
        f"{NUM_QUERIES} queries per QSet on the paper cluster "
        "(100 × m1.large); per-phase seconds, min/median/max",
    ]
    for name, summary in summaries.items():
        lines.append(f"  {name}:")
        for phase, (low, median, high) in summary.items():
            lines.append(
                f"    {phase:12s} {low:8.2f} / {median:8.2f} / {high:8.2f}"
            )
        totals = [
            sum(row.values()) for row in qset_rows[name]
        ]
        lines.append(
            f"    {'TOTAL':12s} {min(totals):8.2f} / "
            f"{float(np.median(totals)):8.2f} / {max(totals):8.2f}"
        )
    lines += [
        "paper Fig. 7: naive error estimation + diagnostics take minutes",
        "(tens of seconds for QSet-1, up to hundreds for QSet-2), far",
        "from interactive.",
    ]
    figure_report("Figure 7 — naive end-to-end response times", lines)

    qset1_totals = [sum(r.values()) for r in qset_rows["QSet-1"]]
    qset2_totals = [sum(r.values()) for r in qset_rows["QSet-2"]]
    # Naive execution is not interactive: median well above a few seconds.
    assert np.median(qset1_totals) > 10
    assert np.median(qset2_totals) > 60
    # Diagnostics dominate the bootstrap QSet (30,000 subqueries).
    qset2_diag = np.median([r["diagnostics"] for r in qset_rows["QSet-2"]])
    qset2_exec = np.median([r["execution"] for r in qset_rows["QSet-2"]])
    assert qset2_diag > 5 * qset2_exec
