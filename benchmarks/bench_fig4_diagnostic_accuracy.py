"""Figure 4(b)/(c) — accuracy of the diagnostic.

For each query we establish ground truth (does the estimator actually
produce reliable error bars? — the §3 protocol) and, independently, run
the Kleiner et al. diagnostic on a single sample, then cross-tabulate:

* **accurate approximation** — diagnostic passes and estimation is
  actually correct;
* **false positive** — diagnostic passes but estimation fails (the
  dangerous case; paper keeps it ≤ ~3–5 %);
* **false negative** — diagnostic rejects a query whose estimation was
  fine (costs performance only; paper ≤ ~9 %);
* **correct rejection** — the remainder.

Fig. 4(b) uses closed-form-capable queries (AVG/COUNT/SUM/VARIANCE) with
the closed-form ξ; Fig. 4(c) uses complex queries with the bootstrap ξ.
Paper headline: 84.57 % of Conviva and 68 % of Facebook queries can be
accurately approximated, with < 3.1 % false positives and < 5.4 % false
negatives overall.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    conviva_sessions_table,
    conviva_workload,
    facebook_events_table,
    facebook_workload,
)

from _bench_utils import scaled
from _workload_eval import (
    diagnostic_confusion,
    evaluate_workload,
    run_diagnostics,
)

DATASET_ROWS = scaled(300_000)
SAMPLE_SIZE = scaled(40_000)
NUM_QUERIES = scaled(32)
# Verdict noise matters here: with few trials, borderline queries flip
# between correct/failed and masquerade as diagnostic errors.
NUM_TRIALS = scaled(36)
DIAG_SUBSAMPLES = 60


def _prepare(workload_fn, table_fn, closed_form: bool, seed: int):
    rng = np.random.default_rng(seed)
    table = table_fn(DATASET_ROWS, rng)
    queries = []
    for query in workload_fn(NUM_QUERIES * 6, rng):
        if query.closed_form_applicable == closed_form:
            queries.append(query)
        if len(queries) == NUM_QUERIES:
            break
    evaluations = evaluate_workload(
        table, queries, SAMPLE_SIZE, rng, NUM_TRIALS
    )
    estimator_name = "closed_form" if closed_form else "bootstrap"
    run_diagnostics(
        table,
        evaluations,
        estimator_name,
        SAMPLE_SIZE,
        rng,
        num_subsamples=DIAG_SUBSAMPLES,
    )
    return diagnostic_confusion(evaluations, estimator_name)


@pytest.fixture(scope="module")
def confusions():
    return {
        ("closed_form", "Conviva"): _prepare(
            conviva_workload, conviva_sessions_table, True, 301
        ),
        ("closed_form", "Facebook"): _prepare(
            facebook_workload, facebook_events_table, True, 302
        ),
        ("bootstrap", "Conviva"): _prepare(
            conviva_workload, conviva_sessions_table, False, 303
        ),
        ("bootstrap", "Facebook"): _prepare(
            facebook_workload, facebook_events_table, False, 304
        ),
    }


def _lines_for(confusions, estimator):
    lines = []
    for (name, workload), cell in confusions.items():
        if name != estimator:
            continue
        lines.append(
            f"  {workload:10s} accurate {cell['accurate']:6.1%}   "
            f"false-pos {cell['false_positive']:5.1%}   "
            f"false-neg {cell['false_negative']:5.1%}   "
            f"correct-rejection {cell['correct_rejection']:6.1%}   "
            f"(n={cell['population']})"
        )
    return lines


def test_fig4b_closed_form_diagnostic(benchmark, confusions, figure_report):
    benchmark.pedantic(lambda: None, rounds=1)
    lines = [
        f"{NUM_QUERIES} closed-form queries/workload; diagnostic p="
        f"{DIAG_SUBSAMPLES}, k=3, c1=c2=0.2, c3=0.5, rho=0.95",
        *_lines_for(confusions, "closed_form"),
        "paper Fig. 4(b): accurate approximation 89.2% (Conviva) / 62.8%",
        "(Facebook); false positives ~2.8-3.6%.",
    ]
    figure_report("Figure 4(b) — closed-form diagnostic accuracy", lines)
    for workload in ("Conviva", "Facebook"):
        cell = confusions[("closed_form", workload)]
        # The dangerous direction must stay rare.  (Paper: ~3%; our
        # synthetic workload sits more often near the δ decision boundary,
        # where ground-truth verdicts themselves are noisy.)
        assert cell["false_positive"] <= 0.2
        # Most queries must be classified correctly overall.
        assert cell["accurate"] + cell["correct_rejection"] >= 0.55


def test_fig4c_bootstrap_diagnostic(benchmark, confusions, figure_report):
    benchmark.pedantic(lambda: None, rounds=1)
    lines = [
        f"{NUM_QUERIES} bootstrap-only queries/workload; same diagnostic "
        "parameters",
        *_lines_for(confusions, "bootstrap"),
        "paper Fig. 4(c): accurate approximation 81% (Conviva) / 73%",
        "(Facebook); false positives ≤4%, false negatives ≤9%.",
    ]
    figure_report("Figure 4(c) — bootstrap diagnostic accuracy", lines)
    for workload in ("Conviva", "Facebook"):
        cell = confusions[("bootstrap", workload)]
        assert cell["false_positive"] <= 0.2
        assert cell["accurate"] + cell["correct_rejection"] >= 0.55
