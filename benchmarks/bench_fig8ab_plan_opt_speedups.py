"""Figure 8(a)/(b) — speedups from the query-plan optimisations.

Per query, the speedup of the §5.3-optimised plan (scan consolidation +
resampling-operator pushdown) over the §5.2 baseline, for the
error-estimation and diagnostics phases separately, on the same fleet
with no physical tuning (the paper's Fig. 8(a)/(b) isolate plan
optimisations; physical tuning is Fig. 8(e)/(f)).

Paper shape: QSet-1 gains 1–2× (error estimation) and 5–20×
(diagnostics); QSet-2 gains 20–60× and 20–100×.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSimulator, PAPER_CLUSTER, build_phases
from repro.workloads import qset1_specs, qset2_specs

from _bench_utils import scaled

NUM_QUERIES = scaled(100)
PERCENTILES = (10, 25, 50, 75, 90)


def speedups_for(specs, rng):
    sim = ClusterSimulator(PAPER_CLUSTER)
    error_speedups = []
    diagnostic_speedups = []
    for spec in specs:
        naive = build_phases(spec, optimized=False)
        optimized = build_phases(spec, optimized=True)
        naive_error = sim.simulate(naive.error_estimation, rng=rng).total_seconds
        optimized_error = sim.simulate(
            optimized.error_estimation, rng=rng
        ).total_seconds
        naive_diag = sim.simulate(naive.diagnostics, rng=rng).total_seconds
        optimized_diag = sim.simulate(
            optimized.diagnostics, rng=rng
        ).total_seconds
        error_speedups.append(naive_error / optimized_error)
        diagnostic_speedups.append(naive_diag / optimized_diag)
    return np.array(error_speedups), np.array(diagnostic_speedups)


@pytest.fixture(scope="module")
def all_speedups():
    rng = np.random.default_rng(88)
    return {
        "QSet-1": speedups_for(qset1_specs(NUM_QUERIES, rng), rng),
        "QSet-2": speedups_for(qset2_specs(NUM_QUERIES, rng), rng),
    }


def _cdf_line(label, values):
    quantiles = np.percentile(values, PERCENTILES)
    cells = "  ".join(
        f"p{p}={q:7.1f}x" for p, q in zip(PERCENTILES, quantiles)
    )
    return f"  {label:28s} {cells}"


def test_fig8ab_plan_optimization_speedups(
    benchmark, all_speedups, figure_report
):
    benchmark.pedantic(lambda: None, rounds=1)
    lines = [
        f"{NUM_QUERIES} queries per QSet; speedup CDF percentiles of "
        "§5.3 plan vs §5.2 baseline (same fleet, no physical tuning)",
    ]
    for name, (error_speedups, diagnostic_speedups) in all_speedups.items():
        lines.append(_cdf_line(f"{name} error estimation", error_speedups))
        lines.append(_cdf_line(f"{name} diagnostics", diagnostic_speedups))
    lines += [
        "paper Fig. 8(a)/(b): QSet-1 ~1-2x (error) and ~5-20x (diag);",
        "QSet-2 ~20-60x (error) and ~20-100x (diag).",
    ]
    figure_report("Figure 8(a)/(b) — plan-optimisation speedups", lines)

    qset1_error, qset1_diag = all_speedups["QSet-1"]
    qset2_error, qset2_diag = all_speedups["QSet-2"]
    # QSet-1: modest error-estimation gains, larger diagnostic gains.
    assert 1.0 <= np.median(qset1_error) <= 5.0
    assert 3.0 <= np.median(qset1_diag) <= 40.0
    # QSet-2: order-of-magnitude gains on both.
    assert np.median(qset2_error) >= 10.0
    assert np.median(qset2_diag) >= 15.0
    # The bootstrap QSet benefits far more than the closed-form QSet.
    assert np.median(qset2_error) > 4 * np.median(qset1_error)
