"""CI coverage under injected failures (fault-tolerance experiment).

The §3 evaluation protocol, rerun with the execution layer under fire:
every bootstrap fan-out executes under supervision with a deterministic
:class:`~repro.faults.FaultPlan` crashing a seeded 5% of task batches on
their first attempt.  Three claims are measured:

1. **Recovered faults change nothing.**  A retried unit re-runs on the
   same child RNG stream, so every interval is bit-identical to the
   clean run's — coverage is *exactly* preserved, not approximately.
2. **Permanent losses widen honestly.**  When a replicate chunk fails on
   every attempt, the CI is computed from the completed replicates and
   inflated by sqrt(K/K'); coverage stays at or above the clean rate
   (wider bars can only cover more).
3. The :class:`~repro.parallel.supervise.ExecutionReport` accounts for
   every crash and retry.

Run directly for a report, or under pytest as a smoke test::

    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.bootstrap import BootstrapEstimator
from repro.core.estimators import EstimationTarget
from repro.engine.aggregates import get_aggregate
from repro.faults import FaultPlan
from repro.parallel.supervise import RetryPolicy, Supervision

DATASET_ROWS = 100_000
SAMPLE_ROWS = 2_000
TRIALS = 200
BOOTSTRAP_K = 100
CRASH_RATE = 0.05


def _supervised(plan: FaultPlan | None) -> Supervision:
    return Supervision(
        plan=plan,
        policy=RetryPolicy(backoff_base_seconds=0.0, backoff_jitter=0.0),
        allow_partial=True,
    )


def coverage_run(fault_mode: str, seed: int = 2014):
    """Coverage of 95% bootstrap CIs for AVG over fresh samples.

    ``fault_mode``: ``"clean"``, ``"crash_rate"`` (recoverable 5% crash
    rate), or ``"chunk_loss"`` (first replicate chunk permanently lost).
    """
    rng = np.random.default_rng(seed)
    population = rng.lognormal(mean=3.0, sigma=0.8, size=DATASET_ROWS)
    truth = float(population.mean())
    aggregate = get_aggregate("AVG")

    covered = 0
    widths = []
    crashes = retries = 0
    replicates_completed = replicates_requested = 0
    trial_rng = np.random.default_rng(seed + 1)
    for trial in range(TRIALS):
        indices = trial_rng.choice(DATASET_ROWS, size=SAMPLE_ROWS, replace=True)
        target = EstimationTarget(
            values=population[indices],
            aggregate=aggregate,
            dataset_rows=DATASET_ROWS,
        )
        if fault_mode == "clean":
            plan = None
        elif fault_mode == "crash_rate":
            plan = FaultPlan(seed=trial).with_crash_rate(CRASH_RATE)
        elif fault_mode == "chunk_loss":
            plan = FaultPlan(seed=trial).with_crash(0, attempt=None)
        else:
            raise ValueError(fault_mode)
        supervision = _supervised(plan)
        estimator = BootstrapEstimator(
            BOOTSTRAP_K,
            np.random.default_rng(seed + 2 + trial),
            supervision=supervision,
        )
        interval = estimator.estimate(target, 0.95)
        if abs(truth - interval.estimate) <= interval.half_width:
            covered += 1
        widths.append(interval.half_width)
        crashes += supervision.report.worker_crashes
        retries += supervision.report.task_retries
        replicates_completed += supervision.report.replicates_completed
        replicates_requested += supervision.report.replicates_requested
    return {
        "coverage": covered / TRIALS,
        "mean_half_width": float(np.mean(widths)),
        "crashes": crashes,
        "retries": retries,
        "replicates_completed": replicates_completed,
        "replicates_requested": replicates_requested,
    }


def test_coverage_preserved_under_crash_rate():
    """Smoke version for pytest: fewer trials, same invariants."""
    global TRIALS
    saved = TRIALS
    TRIALS = 25
    try:
        clean = coverage_run("clean")
        faulted = coverage_run("crash_rate")
        lossy = coverage_run("chunk_loss")
    finally:
        TRIALS = saved
    # Recoverable crashes: bit-identical intervals, identical coverage.
    assert faulted["coverage"] == clean["coverage"]
    assert faulted["mean_half_width"] == clean["mean_half_width"]
    assert faulted["crashes"] > 0 and faulted["retries"] > 0
    # Permanent chunk loss: wider intervals, coverage not below clean.
    assert lossy["mean_half_width"] > clean["mean_half_width"]
    assert lossy["coverage"] >= clean["coverage"]
    assert lossy["replicates_completed"] < lossy["replicates_requested"]


def main():
    for mode in ("clean", "crash_rate", "chunk_loss"):
        stats = coverage_run(mode)
        print(
            f"{mode:>11}: coverage {stats['coverage']:.3f}  "
            f"mean half-width {stats['mean_half_width']:.4f}  "
            f"crashes {stats['crashes']}  retries {stats['retries']}  "
            f"replicates {stats['replicates_completed']}/"
            f"{stats['replicates_requested']}"
        )


if __name__ == "__main__":
    main()
