"""Ablation — error-controlled sample sizing (§1's accuracy/time tradeoff).

The paper motivates error estimates partly as a control signal: "by
varying the sample size while estimating the magnitude of the resulting
error bars, the system can make a smooth and controlled trade-off
between accuracy and query time."  This bench closes that loop:

1. run a cheap pilot (2k rows) for each mean-like query;
2. let :class:`SampleSizeSelector` predict the rows needed for a target
   relative error;
3. draw a sample of exactly that size and measure the *realized*
   relative error.

Expected shape: realized error hugs the target from below (the safety
factor absorbs extrapolation noise), and the predicted sizes span orders
of magnitude across queries — a fixed sample size would have been
wasteful for some queries and insufficient for others.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClosedFormEstimator
from repro.core.error_control import SampleSizeSelector
from repro.workloads import conviva_sessions_table, conviva_workload

from _bench_utils import scaled

DATASET_ROWS = scaled(400_000)
PILOT_ROWS = 2000
TARGETS = (0.10, 0.05, 0.02)
NUM_QUERIES = scaled(12)


@pytest.fixture(scope="module")
def queries(bench_rng):
    table = conviva_sessions_table(DATASET_ROWS, bench_rng)
    selected = []
    for query in conviva_workload(NUM_QUERIES * 12, np.random.default_rng(55)):
        if query.aggregate_name == "AVG" and not query.has_udf:
            dataset_query = query.dataset_query(table)
            mask = dataset_query.mask
            matched = mask.sum() if mask is not None else DATASET_ROWS
            if matched > DATASET_ROWS // 4:
                selected.append(dataset_query)
        if len(selected) == NUM_QUERIES:
            break
    assert len(selected) >= 4
    return selected


def test_error_controlled_sizing(benchmark, queries, bench_rng, figure_report):
    selector = SampleSizeSelector(ClosedFormEstimator(), safety_factor=1.3)

    def run():
        rows = []
        for target in TARGETS:
            achieved = []
            required = []
            met = 0
            for query in queries:
                pilot = query.sample_target(PILOT_ROWS, bench_rng)
                recommendation = selector.recommend(
                    pilot, target, DATASET_ROWS, bench_rng
                )
                size = min(recommendation.required_rows, DATASET_ROWS)
                verify = query.sample_target(size, bench_rng)
                interval = ClosedFormEstimator().estimate(verify, 0.95)
                achieved.append(interval.relative_error)
                required.append(recommendation.required_rows)
                met += interval.relative_error <= target * 1.15
            rows.append(
                {
                    "target": target,
                    "met_fraction": met / len(queries),
                    "median_achieved": float(np.median(achieved)),
                    "size_range": (min(required), max(required)),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    lines = [
        f"{len(queries)} AVG queries; pilot n = {PILOT_ROWS}; "
        "closed-form pilot → predicted size → realized error",
        f"{'target':>8s}{'met (±15%)':>12s}{'median realized':>18s}"
        f"{'predicted-size range':>24s}",
    ]
    for row in rows:
        low, high = row["size_range"]
        lines.append(
            f"{row['target']:8.2f}{row['met_fraction']:12.0%}"
            f"{row['median_achieved']:18.3f}{low:>14,d} – {high:,}"
        )
    lines.append(
        "shape: realized errors track the targets; required sizes vary "
        "widely per query, which is the point of controlling by error."
    )
    figure_report("Ablation — error-controlled sample sizing", lines)

    for row in rows:
        assert row["met_fraction"] >= 0.75
        assert row["median_achieved"] <= row["target"] * 1.1
    # Tighter targets need quadratically more rows.
    loose = np.mean(rows[0]["size_range"])
    tight = np.mean(rows[-1]["size_range"])
    assert tight > 5 * loose
