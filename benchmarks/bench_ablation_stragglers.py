"""Ablation — straggler mitigation (§6.3) vs straggler severity.

The paper always spawns 10 % speculative copies and reports speedups of
"hundreds of milliseconds" with "no deterioration in the quality of our
results".  This ablation sweeps the straggler probability and measures
mean job latency with and without mitigation.

Expected shape: at zero straggler probability mitigation costs almost
nothing (the copies are pure overhead but tiny); as stragglers become
common, mitigation's advantage grows.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import ClusterSimulator, PAPER_CLUSTER, Job, Stage
from repro.cluster.config import GB

from _bench_utils import scaled

PROBABILITIES = (0.0, 0.05, 0.1, 0.2, 0.4)
REPETITIONS = scaled(20)


@pytest.fixture(scope="module")
def job():
    return Job(
        name="scan", stages=(Stage(name="s", total_bytes=50 * GB),)
    )


def mean_latency(config, job, mitigation, rng):
    simulator = ClusterSimulator(config)
    return float(
        np.mean(
            [
                simulator.simulate(
                    job, num_machines=20,
                    straggler_mitigation=mitigation, rng=rng,
                ).total_seconds
                for __ in range(REPETITIONS)
            ]
        )
    )


def test_straggler_mitigation_sweep(benchmark, job, figure_report):
    rng = np.random.default_rng(61)

    def run():
        rows = []
        for probability in PROBABILITIES:
            config = replace(
                PAPER_CLUSTER,
                straggler_probability=probability,
                straggler_mean_slowdown=3.0,
            )
            plain = mean_latency(config, job, False, rng)
            mitigated = mean_latency(config, job, True, rng)
            rows.append(
                {
                    "probability": probability,
                    "plain": plain,
                    "mitigated": mitigated,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    lines = [
        f"50 GB scan on 20 machines, {REPETITIONS} runs/cell; mean seconds",
        f"{'P(straggle)':>12s}{'no mitigation':>16s}{'mitigated':>12s}"
        f"{'saving':>9s}",
    ]
    for row in rows:
        saving = row["plain"] / row["mitigated"]
        lines.append(
            f"{row['probability']:12.2f}{row['plain']:16.2f}"
            f"{row['mitigated']:12.2f}{saving:8.2f}x"
        )
    lines.append(
        "shape: near-free at P=0; the advantage grows with straggler "
        "frequency (§6.3)."
    )
    figure_report("Ablation — straggler mitigation sweep", lines)

    zero = rows[0]
    worst = rows[-1]
    # Mitigation never costs much even with no stragglers at all...
    assert zero["mitigated"] <= zero["plain"] * 1.25
    # ...and pays off clearly when stragglers are common.
    assert worst["mitigated"] < worst["plain"] * 0.9
