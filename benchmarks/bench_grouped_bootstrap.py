"""Segmented vs reference grouped-bootstrap kernel speedup.

Measures :func:`~repro.parallel.ops.grouped_bootstrap_replicates` in
both kernel modes across group counts G ∈ {10, 1k, 100k} on a fixed
200k-row sample, with K = 100 resamples (the paper's default).  The
``reference`` mode re-runs the per-group masked loop the legacy engine
used — its cost grows as O(G·n·K) because every group re-scans the
sample — while the ``segmented`` kernel computes all groups from one
Poissonized weight matrix via segmented reductions, so its cost is flat
in G.  At G = 100k the reference mode is extrapolated from a reduced
replicate count (a full run takes tens of minutes).

Usage::

    PYTHONPATH=src python benchmarks/bench_grouped_bootstrap.py

Prints a table and exits 1 if the G=1k speedup falls below the 5x
acceptance floor.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.grouped import GroupedTarget
from repro.engine.aggregates import get_aggregate
from repro.parallel.ops import grouped_bootstrap_replicates

ROWS = 200_000
RESAMPLES = 100
SPEEDUP_FLOOR_AT_G1K = 5.0

#: (label, num_groups, reference replicate count) — the reference mode
#: is measured at fewer resamples where a full run would be unreasonable
#: and scaled linearly (its cost is linear in K).
CASES = (
    ("G=10", 10, RESAMPLES),
    ("G=1k", 1_000, RESAMPLES),
    ("G=100k", 100_000, 8),
)


def _target(num_groups: int) -> GroupedTarget:
    rng = np.random.default_rng(20140622)
    return GroupedTarget(
        values=rng.lognormal(1.0, 0.6, ROWS),
        group_ids=rng.integers(0, num_groups, ROWS),
        num_groups=num_groups,
        aggregate=get_aggregate("AVG"),
        mask=rng.random(ROWS) < 0.8,
    )


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main() -> int:
    print(
        f"grouped bootstrap: n={ROWS:,} rows, K={RESAMPLES} resamples, "
        f"AVG aggregate (best of 3)"
    )
    print(f"{'case':8s} {'segmented':>11s} {'reference':>11s} {'speedup':>9s}")
    speedups = {}
    for label, num_groups, reference_k in CASES:
        target = _target(num_groups)
        segmented = _time(
            lambda: grouped_bootstrap_replicates(
                target, RESAMPLES, seed=37, mode="segmented"
            )
        )
        reference = _time(
            lambda: grouped_bootstrap_replicates(
                target, reference_k, seed=37, mode="reference"
            ),
            repeats=1 if reference_k < RESAMPLES else 3,
        )
        scaled = reference * (RESAMPLES / reference_k)
        note = " (scaled)" if reference_k < RESAMPLES else ""
        speedups[label] = scaled / segmented
        print(
            f"{label:8s} {segmented:10.3f}s {scaled:10.3f}s "
            f"{speedups[label]:8.1f}x{note}"
        )
    if speedups["G=1k"] < SPEEDUP_FLOOR_AT_G1K:
        print(
            f"\nFAIL: G=1k speedup {speedups['G=1k']:.1f}x is below the "
            f"{SPEEDUP_FLOOR_AT_G1K}x acceptance floor"
        )
        return 1
    print(
        f"\nOK: G=1k speedup {speedups['G=1k']:.1f}x >= "
        f"{SPEEDUP_FLOOR_AT_G1K}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
