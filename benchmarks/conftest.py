"""Fixtures and reporting hooks for the figure/table benchmarks.

Every bench regenerates one table or figure from the paper's evaluation
and *prints the series the paper reports*.  Because pytest captures
stdout, benches report through the :func:`figure_report` fixture; the
collected sections are emitted in the terminal summary (and mirrored to
``benchmarks/results/``), so ``pytest benchmarks/ --benchmark-only``
shows both the timing table and the reproduced figures.

Scale: paper-scale workloads (100–250 queries/cell, 10⁶-row samples)
take hours; the default scale finishes in minutes.  Set ``REPRO_SCALE``
(default 1.0, e.g. 4.0) to scale query counts and sample sizes up.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import add_section, sections


@pytest.fixture
def figure_report():
    """Register a named report section printed at the end of the run."""
    return add_section


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not sections:
        return
    terminalreporter.section("reproduced figures and tables")
    for title, lines in sections:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"== {title} ==")
        for line in lines:
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def bench_rng() -> np.random.Generator:
    return np.random.default_rng(20140622)  # SIGMOD'14 dates
