"""The pilot-based bounded-error/bounded-time planner.

Covers the WITHIN contract from every side:

* parsing — ``WITHIN 2% AT 95% CONFIDENCE``, ``WITHIN 5.0``,
  ``WITHIN 500ms``, and every rejection (negative, >100 %, duplicate,
  error+time combos, bad confidence, unknown unit);
* the :class:`~repro.sql.ast.WithinClause` invariants;
* the cost model — prediction, online EWMA recalibration, persistence,
  and the ``REPRO_COST_MODEL`` override;
* the planner's decision logic — sizing from a pilot, the P90 rule for
  grouped queries, honest refusal with an achievable bound, and
  time-budget inversion over the replicate ladder;
* the engine end to end — the RNG-prefix contract (pilot-then-final is
  **bit-identical** to executing the same plan directly, at any worker
  count, with and without injected faults), the achieved-bound report,
  typed refusals, and the ``REPRO_PLANNER`` kill switch reproducing the
  legacy fixed-budget path bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pipeline import AQPEngine, EngineConfig
from repro.engine.table import Table
from repro.errors import BoundUnachievableError, ParseError
from repro.faults import FaultPlan
from repro.obs.metrics import METRICS
from repro.planner import (
    CostModel,
    CostPlanner,
    PilotMeasurement,
    PilotValue,
    QueryPlan,
    resolve_planner_enabled,
)
from repro.planner.cost import default_cost_model_path
from repro.planner.planner import PLANNER_ENV
from repro.sampling.catalog import SampleInfo
from repro.serve.protocol import result_to_json
from repro.sql.ast import WithinClause
from repro.sql.parser import parse_select

ROWS = 20_000
SAMPLE = 5_000


def _sessions_table(rows: int = ROWS, seed: int = 321) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        {
            "time": rng.lognormal(3.0, 0.5, rows),
            "bytes": rng.lognormal(6.0, 0.8, rows),
            "city": np.char.add(
                "c", rng.integers(0, 4, rows).astype(str)
            ),
        },
        name="sessions",
    )


def _engine(
    seed: int = 7,
    table: Table | None = None,
    sample: int = SAMPLE,
    **config_kwargs,
) -> AQPEngine:
    config_kwargs.setdefault("catalog", False)
    engine = AQPEngine(config=EngineConfig(**config_kwargs), seed=seed)
    engine.register_table("sessions", table or _sessions_table())
    engine.create_sample("sessions", size=sample, name="s")
    return engine


def _snapshot(result):
    """Everything bit-comparable about an answer."""
    rows = []
    for row in result.rows:
        values = {}
        for name, value in row.values.items():
            interval = value.interval
            values[name] = (
                value.estimate,
                None
                if interval is None
                else (interval.lower, interval.upper, interval.method),
                value.method,
                value.fell_back,
            )
        rows.append((tuple(sorted(row.group.items())), values))
    return rows


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------
class TestWithinParsing:
    def _within(self, suffix):
        return parse_select(
            f"SELECT AVG(time) FROM sessions {suffix}"
        ).within

    def test_relative_percent(self):
        within = self._within("WITHIN 2%")
        assert within.relative_error == pytest.approx(0.02)
        assert within.kind == "relative"
        assert within.confidence is None

    def test_relative_with_confidence(self):
        within = self._within("WITHIN 2% AT 95% CONFIDENCE")
        assert within.relative_error == pytest.approx(0.02)
        assert within.confidence == pytest.approx(0.95)

    def test_confidence_as_fraction(self):
        within = self._within("WITHIN 5% AT 0.99 CONFIDENCE")
        assert within.confidence == pytest.approx(0.99)

    def test_absolute_bound(self):
        within = self._within("WITHIN 5.0")
        assert within.absolute_error == pytest.approx(5.0)
        assert within.kind == "absolute"

    def test_time_bound_milliseconds(self):
        within = self._within("WITHIN 500ms")
        assert within.time_budget_seconds == pytest.approx(0.5)
        assert within.kind == "time"

    def test_time_bound_seconds(self):
        within = self._within("WITHIN 2s")
        assert within.time_budget_seconds == pytest.approx(2.0)

    def test_round_trips_through_to_sql(self):
        for suffix in (
            "WITHIN 2% AT 95% CONFIDENCE",
            "WITHIN 5.0",
            "WITHIN 500ms",
            "WITHIN 2s",
        ):
            statement = parse_select(
                f"SELECT AVG(time) FROM sessions {suffix}"
            )
            reparsed = parse_select(statement.to_sql())
            assert reparsed.within == statement.within

    def test_negative_bound_rejected(self):
        with pytest.raises(ParseError, match="must be positive"):
            self._within("WITHIN -2%")

    def test_zero_bound_rejected(self):
        with pytest.raises(ParseError, match="must be positive"):
            self._within("WITHIN 0%")

    def test_over_100_percent_rejected(self):
        with pytest.raises(ParseError, match="cannot exceed 100%"):
            self._within("WITHIN 150%")

    def test_error_plus_time_rejected(self):
        with pytest.raises(
            ParseError, match="cannot combine an error bound and a time"
        ):
            self._within("WITHIN 2%, 500ms")

    def test_relative_plus_absolute_rejected(self):
        with pytest.raises(
            ParseError, match="cannot combine relative and absolute"
        ):
            self._within("WITHIN 2%, 5.0")

    def test_duplicate_bound_rejected(self):
        with pytest.raises(ParseError, match="duplicate WITHIN relative"):
            self._within("WITHIN 2%, 5%")

    def test_unknown_time_unit_rejected(self):
        with pytest.raises(ParseError, match="unknown WITHIN time unit"):
            self._within("WITHIN 5 minutes")

    def test_bad_confidence_rejected(self):
        with pytest.raises(ParseError, match="confidence must lie"):
            self._within("WITHIN 2% AT 150% CONFIDENCE")


class TestWithinClauseValidation:
    def test_requires_exactly_one_bound(self):
        with pytest.raises(ValueError, match="exactly one"):
            WithinClause()
        with pytest.raises(ValueError, match="exactly one"):
            WithinClause(relative_error=0.02, absolute_error=1.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError, match="positive"):
            WithinClause(absolute_error=0.0)
        with pytest.raises(ValueError, match="positive"):
            WithinClause(time_budget_seconds=-1.0)

    def test_rejects_relative_over_one(self):
        with pytest.raises(ValueError, match="exceed 100%"):
            WithinClause(relative_error=1.5)

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError, match="strictly between"):
            WithinClause(relative_error=0.02, confidence=1.0)

    def test_kind_and_value(self):
        assert WithinClause(relative_error=0.02).kind == "relative"
        assert WithinClause(absolute_error=3.0).bound_value == 3.0
        assert WithinClause(time_budget_seconds=0.5).kind == "time"


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------
class TestCostModel:
    def test_prediction_is_linear(self):
        model = CostModel(
            c0=0.001, row_seconds=1e-6, replicate_row_seconds=1e-8
        )
        assert model.predict(10_000, 0) == pytest.approx(0.011)
        assert model.predict(10_000, 100) == pytest.approx(0.021)

    def test_closed_form_observation_calibrates_row_term(self):
        model = CostModel(c0=0.001, row_seconds=2e-7, alpha=0.5)
        model.observe(10_000, 0, 0.011)
        assert model.row_seconds == pytest.approx(
            0.5 * 2e-7 + 0.5 * 1e-6
        )
        assert model.observations == 1

    def test_bootstrap_observation_calibrates_replicate_term(self):
        model = CostModel(
            c0=0.0, row_seconds=1e-6, replicate_row_seconds=1e-9, alpha=0.5
        )
        model.observe(10_000, 100, 0.02)
        # residual = 0.02 - 0.01 over 1e6 replicate-rows → 1e-8
        assert model.replicate_row_seconds == pytest.approx(
            0.5 * 1e-9 + 0.5 * 1e-8
        )

    def test_calibrated_after_min_observations(self):
        model = CostModel()
        assert not model.calibrated
        for _ in range(3):
            model.observe(1000, 0, 0.01)
        assert model.calibrated

    def test_degenerate_observations_ignored(self):
        model = CostModel()
        before = model.row_seconds
        model.observe(0, 0, 1.0)
        model.observe(1000, 0, -1.0)
        assert model.row_seconds == before and model.observations == 0

    def test_round_trips_through_disk(self, tmp_path):
        model = CostModel(c0=0.002, row_seconds=3e-7, observations=9)
        path = tmp_path / "model.json"
        assert model.save(path)
        loaded = CostModel.load(path)
        assert loaded == model

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text("not json")
        assert CostModel.load(path) == CostModel()
        path.write_text('{"schema": 99, "c0": 5}')
        assert CostModel.load(path) == CostModel()
        assert CostModel.from_dict(
            {"schema": 1, "c0": 0.001, "row_seconds": -1.0,
             "replicate_row_seconds": 1e-9}
        ) == CostModel()

    def test_env_override_controls_path(self, monkeypatch, tmp_path):
        target = tmp_path / "custom.json"
        monkeypatch.setenv("REPRO_COST_MODEL", str(target))
        assert default_cost_model_path() == target
        monkeypatch.setenv("REPRO_COST_MODEL", "off")
        assert default_cost_model_path() is None


# ---------------------------------------------------------------------------
# Planner decision logic
# ---------------------------------------------------------------------------
def _info(rows, name="s", dataset_rows=100_000):
    return SampleInfo(
        name=name, table_name="sessions", rows=rows,
        dataset_rows=dataset_rows,
    )


def _pilot(values, rows=200, verdict_ok=True):
    return PilotMeasurement(
        rows=rows, elapsed_seconds=0.01, verdict_ok=verdict_ok,
        values=tuple(values),
    )


class TestCostPlanner:
    def test_pilot_rows_clamps(self):
        planner = CostPlanner()
        assert planner.pilot_rows(100_000) == 2000   # 5% capped at max
        assert planner.pilot_rows(1_000) == 200      # floor
        assert planner.pilot_rows(100) == 100        # never above sample

    def test_sizes_minimal_fraction_from_pilot(self):
        planner = CostPlanner(safety_factor=1.2)
        # rel. error at the 200-row pilot is 0.1/10 = 1%; a 2% target
        # needs 200·(0.01/0.02)² = 50 rows → pilot floor wins.
        pilot = _pilot([PilotValue("a", 10.0, 0.1)])
        plan = planner.plan_from_pilot(
            WithinClause(relative_error=0.02), 0.95, pilot,
            [_info(50_000)], closed_form=True, default_replicates=100,
        )
        assert plan.reason == "pilot" and not plan.fixed_budget
        assert plan.chosen_rows == 200
        assert plan.replicates == 0  # closed-form: no resamples needed
        assert "chosen fraction=0.0020" in plan.summary()

    def test_tighter_bound_needs_more_rows(self):
        planner = CostPlanner(safety_factor=1.0)
        pilot = _pilot([PilotValue("a", 10.0, 0.5)])  # 5% at n=200
        plan = planner.plan_from_pilot(
            WithinClause(relative_error=0.01), 0.95, pilot,
            [_info(50_000)], closed_form=True, default_replicates=100,
        )
        # width ∝ 1/√n: 5% → 1% needs 25× the pilot rows.
        assert plan.chosen_rows == 5000

    def test_picks_smallest_fitting_sample(self):
        planner = CostPlanner(safety_factor=1.0)
        pilot = _pilot([PilotValue("a", 10.0, 0.5)])
        candidates = [
            _info(1_000, "tiny"), _info(10_000, "mid"), _info(50_000, "big"),
        ]
        plan = planner.plan_from_pilot(
            WithinClause(relative_error=0.01), 0.95, pilot,
            candidates, closed_form=True, default_replicates=100,
        )
        assert plan.sample_name == "mid" and plan.chosen_rows == 5000

    def test_p90_rule_ignores_rare_group_noise(self):
        planner = CostPlanner(safety_factor=1.0)
        # Nine well-measured groups plus one rare group whose pilot
        # extrapolation is pure noise — sizing must track the bulk.
        values = [PilotValue(f"g{i}", 10.0, 0.5) for i in range(9)]
        values.append(PilotValue("rare", 10.0, 50.0))
        plan = planner.plan_from_pilot(
            WithinClause(relative_error=0.01), 0.95, _pilot(values),
            [_info(50_000)], closed_form=True, default_replicates=100,
        )
        assert plan.chosen_rows == 5000  # p90, not the rare group's 5e6

    def test_max_rule_below_five_values(self):
        planner = CostPlanner(safety_factor=1.0)
        values = [
            PilotValue("a", 10.0, 0.5), PilotValue("b", 10.0, 1.0),
        ]
        plan = planner.plan_from_pilot(
            WithinClause(relative_error=0.02), 0.95, _pilot(values),
            [_info(50_000)], closed_form=True, default_replicates=100,
        )
        assert plan.chosen_rows == 5000  # sized to the worst of the two

    def test_refuses_with_achievable_bound(self):
        planner = CostPlanner(safety_factor=1.0)
        pilot = _pilot([PilotValue("a", 10.0, 0.5)])  # 5% at n=200
        with pytest.raises(BoundUnachievableError) as excinfo:
            planner.plan_from_pilot(
                WithinClause(relative_error=0.001), 0.95, pilot,
                [_info(5_000)], closed_form=True, default_replicates=100,
            )
        error = excinfo.value
        assert error.kind == "relative"
        assert error.requested == pytest.approx(0.001)
        # 5% at 200 rows → 1% at the full 5000: that is the floor.
        assert error.achievable == pytest.approx(0.01)

    def test_failed_pilot_verdict_forces_fixed_budget(self):
        planner = CostPlanner()
        pilot = _pilot([PilotValue("a", 10.0, 0.1)], verdict_ok=False)
        plan = planner.plan_from_pilot(
            WithinClause(relative_error=0.02), 0.95, pilot,
            [_info(50_000)], closed_form=True, default_replicates=100,
        )
        assert plan.fixed_budget and plan.chosen_rows == 50_000
        assert plan.replicates is None
        assert "fixed budget" in plan.summary()

    def test_untrusted_pilot_value_forces_fixed_budget(self):
        planner = CostPlanner()
        pilot = _pilot([PilotValue("a", 10.0, 0.1, trusted=False)])
        plan = planner.plan_from_pilot(
            WithinClause(relative_error=0.02), 0.95, pilot,
            [_info(50_000)], closed_form=True, default_replicates=100,
        )
        assert plan.fixed_budget

    def test_absolute_bound_sizes_on_half_width(self):
        planner = CostPlanner(safety_factor=1.0)
        pilot = _pilot([PilotValue("a", 10.0, 0.5)])
        plan = planner.plan_from_pilot(
            WithinClause(absolute_error=0.25), 0.95, pilot,
            [_info(50_000)], closed_form=True, default_replicates=100,
        )
        assert plan.chosen_rows == 800  # 200·(0.5/0.25)²

    def test_time_inversion_prefers_rows_over_replicates(self):
        model = CostModel(
            c0=0.0, row_seconds=1e-6, replicate_row_seconds=1e-8,
            observations=10,
        )
        planner = CostPlanner(cost_model=model)
        candidates = [_info(100_000)]
        generous = planner.plan_for_time(
            WithinClause(time_budget_seconds=1.0), 0.95, candidates,
            closed_form=True, default_replicates=100,
        )
        assert generous.chosen_fraction == pytest.approx(1.0)
        assert generous.reason == "cost_model"
        tight = planner.plan_for_time(
            WithinClause(time_budget_seconds=0.05), 0.95, candidates,
            closed_form=True, default_replicates=100,
        )
        assert tight.chosen_rows == 50_000

    def test_time_inversion_walks_replicate_ladder(self):
        model = CostModel(
            c0=0.0, row_seconds=1e-6, replicate_row_seconds=1e-8,
            observations=10,
        )
        planner = CostPlanner(cost_model=model)
        # Full rows cost 0.1 s + 0.001 s per replicate: a 0.13 s budget
        # keeps every row but cuts K to the first rung that fits.
        plan = planner.plan_for_time(
            WithinClause(time_budget_seconds=0.13), 0.95, [_info(100_000)],
            closed_form=False, default_replicates=100,
        )
        assert plan.chosen_fraction == pytest.approx(1.0)
        assert plan.replicates == 25

    def test_time_refusal_reports_floor_cost(self):
        model = CostModel(
            c0=0.01, row_seconds=1e-6, replicate_row_seconds=1e-8,
            observations=10,
        )
        planner = CostPlanner(cost_model=model)
        with pytest.raises(BoundUnachievableError) as excinfo:
            planner.plan_for_time(
                WithinClause(time_budget_seconds=1e-4), 0.95,
                [_info(100_000)], closed_form=True,
                default_replicates=100,
            )
        assert excinfo.value.kind == "time"
        assert excinfo.value.achievable >= 0.01

    def test_kill_switch_env(self, monkeypatch):
        monkeypatch.delenv(PLANNER_ENV, raising=False)
        assert resolve_planner_enabled(None)
        monkeypatch.setenv(PLANNER_ENV, "off")
        assert not resolve_planner_enabled(None)
        assert resolve_planner_enabled(True)  # explicit beats env
        monkeypatch.setenv(PLANNER_ENV, "on")
        assert resolve_planner_enabled(None)
        assert not resolve_planner_enabled(False)


# ---------------------------------------------------------------------------
# Engine end to end
# ---------------------------------------------------------------------------
class TestBoundedExecution:
    def test_relative_bound_plans_and_reports(self):
        METRICS.reset()
        with _engine() as engine:
            result = engine.execute(
                "SELECT AVG(time) FROM sessions WITHIN 5% "
                "AT 95% CONFIDENCE"
            )
        assert result.plan is not None and not result.plan.fixed_budget
        assert result.plan.chosen_rows < SAMPLE
        report = result.execution_report
        assert report.bound_kind == "relative"
        assert report.bound_target == pytest.approx(0.05)
        assert report.achieved_bound is not None
        assert report.achieved_bound <= 0.05
        value = result.single()
        assert value.interval.confidence == pytest.approx(0.95)
        snap = METRICS.snapshot()
        assert snap["planner.pilot_runs"]["value"] == 1
        assert snap["planner.chosen_fraction"]["value"] > 0

    def test_absolute_bound_enforced(self):
        with _engine() as engine:
            result = engine.execute(
                "SELECT AVG(time) FROM sessions WITHIN 5.0"
            )
        report = result.execution_report
        assert report.bound_kind == "absolute"
        assert report.achieved_bound <= 5.0
        assert result.single().interval.half_width <= 5.0

    def test_time_bound_plans_from_cost_model(self):
        with _engine() as engine:
            result = engine.execute(
                "SELECT AVG(time) FROM sessions WITHIN 10s"
            )
        assert result.plan is not None
        assert result.plan.pilot_rows is None  # no pilot for time bounds
        report = result.execution_report
        assert report.bound_kind == "time"
        assert report.achieved_bound == pytest.approx(
            result.elapsed_seconds
        )

    def test_unachievable_bound_refused_with_achievable(self):
        METRICS.reset()
        with _engine(sample=1_000) as engine:
            with pytest.raises(BoundUnachievableError) as excinfo:
                engine.execute(
                    "SELECT AVG(time) FROM sessions WITHIN 0.1%"
                )
        error = excinfo.value
        assert error.kind == "relative"
        assert error.requested == pytest.approx(0.001)
        assert error.achievable > 0.001
        assert METRICS.snapshot()["planner.refusals"]["value"] == 1

    def test_grouped_bound_holds_for_every_group(self):
        with _engine() as engine:
            result = engine.execute(
                "SELECT city, AVG(time) FROM sessions GROUP BY city "
                "WITHIN 15%"
            )
        assert len(result.rows) == 4
        report = result.execution_report
        assert report.achieved_bound <= 0.15

    def test_within_kwarg_equivalent_to_sql_clause(self):
        table = _sessions_table()
        with _engine(table=table) as by_sql, _engine(table=table) as by_kw:
            a = by_sql.execute(
                "SELECT AVG(time) FROM sessions WITHIN 5%"
            )
            b = by_kw.execute(
                "SELECT AVG(time) FROM sessions",
                within=WithinClause(relative_error=0.05),
            )
        assert _snapshot(a) == _snapshot(b)

    def test_result_to_json_carries_bound_and_plan(self):
        with _engine() as engine:
            result = engine.execute(
                "SELECT AVG(time) FROM sessions WITHIN 5%"
            )
        payload = result_to_json(result)
        assert payload["bound"]["kind"] == "relative"
        assert payload["bound"]["target"] == pytest.approx(0.05)
        assert payload["bound"]["achieved"] <= 0.05
        assert payload["plan"]["summary"].startswith("pilot n=")
        assert not payload["plan"]["fixed_budget"]

    def test_plan_survives_on_result_after_escalation_queries(self):
        # A plain query carries no plan and no bound fields.
        with _engine() as engine:
            result = engine.execute("SELECT AVG(time) FROM sessions")
        assert result.plan is None
        assert result.execution_report.bound_kind is None
        assert "bound" not in result_to_json(result)


class TestKillSwitch:
    def test_planner_off_matches_legacy_fixed_budget(self):
        """WITHIN with the planner disabled degrades to exactly the
        legacy ``error_bound`` path — same estimates, same intervals,
        bit for bit."""
        table = _sessions_table()
        with _engine(table=table, planner=False) as bounded, _engine(
            table=table, planner=False
        ) as legacy:
            a = bounded.execute(
                "SELECT AVG(time) FROM sessions WITHIN 2%"
            )
            b = legacy.execute(
                "SELECT AVG(time) FROM sessions", error_bound=0.02
            )
        assert a.plan is None
        assert _snapshot(a) == _snapshot(b)

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv(PLANNER_ENV, "off")
        with _engine() as engine:
            result = engine.execute(
                "SELECT AVG(time) FROM sessions WITHIN 5%"
            )
        assert result.plan is None


class TestRngPrefixContract:
    """The pilot consumes nothing from the engine's RNG stream.

    Executing a bounded query (pilot, then the planned final pass) must
    be bit-identical to executing the same plan directly on a fresh
    engine at the same seed — across worker counts and under injected
    faults.  If the pilot leaked even one draw from the engine RNG the
    two streams would diverge and the intervals would differ.
    """

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("faults", [None, "rate:0.05"])
    @settings(max_examples=3, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=50),
        sql=st.sampled_from(
            (
                "SELECT AVG(time) FROM sessions WITHIN 5%",
                "SELECT SUM(bytes) FROM sessions WITHIN 10%",
                "SELECT city, AVG(time) FROM sessions GROUP BY city "
                "WITHIN 15%",
            )
        ),
    )
    def test_pilot_then_final_matches_direct_plan(
        self, workers, faults, seed, sql
    ):
        plan = FaultPlan.from_spec(faults, seed=5) if faults else None
        table = _sessions_table()
        piloted = _engine(
            seed=seed, table=table, num_workers=workers, fault_plan=plan
        )
        direct = _engine(
            seed=seed, table=table, num_workers=workers, fault_plan=plan
        )
        with piloted, direct:
            first = piloted.execute(sql)
            assert first.plan is not None
            replay = direct.execute(sql, plan=first.plan)
        assert replay.plan == first.plan
        assert _snapshot(replay) == _snapshot(first)
