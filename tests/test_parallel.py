"""The multicore execution layer: determinism, cleanup, and caching.

Three contracts are enforced here:

1. **Determinism** — every fanned-out operation (bootstrap replicates,
   black-box table statistics, diagnostic subsample evaluations,
   ground-truth trials, and engine-level execution) is bit-identical at
   any worker count, because unit ``i`` always consumes child RNG
   stream ``i`` of one root seed.
2. **Resource hygiene** — ``num_workers=1`` never spawns a process, and
   no shared-memory segment survives an operation, even when a worker
   raises mid-flight.
3. **Caching and guards** — the engine's plan LRU behaves like an LRU
   and invalidates on registration; oversized weight matrices raise
   :class:`~repro.errors.SamplingError` instead of OOM-ing.
"""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from repro.core.bootstrap import BootstrapEstimator, bootstrap_table_statistic
from repro.core.diagnostics import DiagnosticConfig, diagnose
from repro.core.estimators import EstimationTarget
from repro.core.ground_truth import DatasetQuery, sampling_distribution
from repro.core.pipeline import AQPEngine, EngineConfig
from repro.engine.aggregates import get_aggregate
from repro.engine.table import Table
from repro.errors import PlanError, SamplingError
from repro.parallel import (
    SEGMENT_PREFIX,
    SharedArena,
    WorkerPool,
    attach,
    chunk_spans,
    detach,
    ground_truth_trials,
    pool_scope,
    resolve_num_workers,
    seed_from_rng,
    spawn_children,
)
from repro.sampling.poisson import (
    WEIGHT_BUDGET_ENV,
    PoissonizedResampler,
    poisson_weight_matrix,
    poisson_weights,
)

WORKER_COUNTS = (1, 2, 4)


def leaked_segments() -> list[str]:
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}_*")


@pytest.fixture
def target() -> EstimationTarget:
    rng = np.random.default_rng(101)
    return EstimationTarget(
        values=rng.lognormal(1.0, 0.5, 6000),
        aggregate=get_aggregate("AVG"),
        mask=rng.random(6000) < 0.8,
        dataset_rows=60_000,
    )


@pytest.fixture
def table() -> Table:
    rng = np.random.default_rng(103)
    return Table(
        {"a": rng.normal(10, 2, 4000), "b": rng.integers(0, 5, 4000)},
        name="t",
    )


def _run_at(workers: int, op):
    with pool_scope(workers if workers > 1 else None) as pool:
        return op(pool)


# ---------------------------------------------------------------------------
# RNG scheme
# ---------------------------------------------------------------------------
class TestRngScheme:
    def test_seed_from_rng_advances_parent(self):
        rng = np.random.default_rng(7)
        assert seed_from_rng(rng) != seed_from_rng(rng)

    def test_same_seed_same_children(self):
        a = spawn_children(99, 4)
        b = spawn_children(99, 4)
        for x, y in zip(a, b):
            assert np.random.default_rng(x).integers(1 << 30) == (
                np.random.default_rng(y).integers(1 << 30)
            )

    def test_chunk_spans_cover_exactly(self):
        assert chunk_spans(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert chunk_spans(0, 4) == []


# ---------------------------------------------------------------------------
# Determinism across worker counts
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_bootstrap_replicates(self, target):
        def op(pool):
            estimator = BootstrapEstimator(
                64, np.random.default_rng(5), pool=pool
            )
            return estimator.resample_distribution(target)

        results = [_run_at(w, op) for w in WORKER_COUNTS]
        for other in results[1:]:
            np.testing.assert_array_equal(results[0], other)

    def test_black_box_table_statistic(self, table):
        def op(pool):
            return bootstrap_table_statistic(
                table,
                _mean_of_a,
                32,
                np.random.default_rng(5),
                pool=pool,
            )

        results = [_run_at(w, op) for w in WORKER_COUNTS]
        for other in results[1:]:
            np.testing.assert_array_equal(results[0], other)

    def test_diagnostic_verdict_and_reports(self, target):
        def op(pool):
            result = diagnose(
                target,
                BootstrapEstimator(24, np.random.default_rng(5)),
                0.95,
                DiagnosticConfig(num_subsamples=12, num_sizes=2),
                np.random.default_rng(5),
                pool=pool,
            )
            return (
                result.passed,
                tuple(
                    (r.true_half_width, r.mean_estimated_half_width, r.spread)
                    for r in result.reports
                ),
            )

        results = [_run_at(w, op) for w in WORKER_COUNTS]
        assert results[0] == results[1] == results[2]

    def test_ground_truth_distribution(self):
        rng = np.random.default_rng(11)
        query = DatasetQuery(
            values=rng.lognormal(1.0, 0.5, 20_000),
            aggregate=get_aggregate("SUM"),
            extensive=True,
        )

        def op(pool):
            return sampling_distribution(
                query, 2000, 48, np.random.default_rng(5), pool
            )

        results = [_run_at(w, op) for w in WORKER_COUNTS]
        for other in results[1:]:
            np.testing.assert_array_equal(results[0], other)

    def test_engine_execute(self, table):
        def run(workers):
            engine = AQPEngine(EngineConfig(num_workers=workers), seed=42)
            engine.register_table("t", table)
            engine.create_sample("t", size=2000)
            with engine:
                result = engine.execute("SELECT AVG(a) FROM t WHERE b < 3")
            value = next(iter(result.rows[0].values.values()))
            interval = value.interval
            return (
                value.estimate,
                None if interval is None else (interval.lower, interval.upper),
                value.method,
            )

        results = [run(w) for w in WORKER_COUNTS]
        assert results[0] == results[1] == results[2]

    def test_serial_equals_scoped_parallel_trials(self):
        rng = np.random.default_rng(13)
        values = rng.normal(0, 1, 10_000)
        kwargs = dict(
            extensive=False, sample_size=500, num_trials=32, seed=77
        )
        serial, _ = ground_truth_trials(
            values, None, get_aggregate("AVG"), **kwargs
        )
        with pool_scope(2) as pool:
            parallel, _ = ground_truth_trials(
                values, None, get_aggregate("AVG"), pool=pool, **kwargs
            )
        np.testing.assert_array_equal(serial, parallel)


def _mean_of_a(table: Table) -> float:
    return float(table.column("a").mean())


def _boom(table: Table) -> float:
    raise RuntimeError("worker exploded")


# ---------------------------------------------------------------------------
# Pool contracts
# ---------------------------------------------------------------------------
class TestWorkerPool:
    def test_serial_pool_never_spawns(self):
        pool = WorkerPool(1)
        assert not pool.is_parallel
        results = pool.map(abs, [-1, -2, -3])
        assert results == [1, 2, 3]
        assert not pool.processes_spawned

    def test_engine_workers_one_never_spawns(self, table):
        engine = AQPEngine(EngineConfig(num_workers=1), seed=1)
        engine.register_table("t", table)
        engine.create_sample("t", size=1000)
        with engine:
            engine.execute("SELECT SUM(a) FROM t")
            assert engine.worker_pool is None
            assert engine._pool is None

    def test_unpicklable_payload_runs_inline(self):
        captured = []
        with WorkerPool(2) as pool:
            results = pool.map(
                lambda x: captured.append(x) or x * 2, [1, 2, 3]
            )
            assert results == [2, 4, 6]
            # The lambda cannot pickle, so everything ran in-process.
            assert captured == [1, 2, 3]
            assert not pool.processes_spawned

    def test_resolve_num_workers_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_num_workers(None) == 1
        # Requests are capped at the machine's CPU count: oversubscribing
        # cores only adds context-switch overhead.
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_num_workers(None) == 3
        assert resolve_num_workers(2) == 2
        assert resolve_num_workers(64) == 8
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        monkeypatch.setenv("REPRO_WORKERS", "16")
        assert resolve_num_workers(None) == 2
        monkeypatch.setenv("REPRO_WORKERS", "banana")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_num_workers(None)

    def test_engine_rejects_negative_cache(self):
        with pytest.raises(PlanError):
            EngineConfig(plan_cache_size=-1)


# ---------------------------------------------------------------------------
# Shared-memory hygiene
# ---------------------------------------------------------------------------
class TestSharedMemoryCleanup:
    def test_arena_roundtrip_and_unlink(self):
        data = np.arange(1000, dtype=np.float64)
        with SharedArena() as arena:
            ref = arena.share(data)
            view, segment = attach(ref)
            np.testing.assert_array_equal(view, data)
            assert not view.flags.writeable
            detach([segment])
        assert leaked_segments() == []

    def test_object_columns_pass_through(self):
        strings = np.array(["a", "b"], dtype=object)
        with SharedArena() as arena:
            assert arena.share(strings) is not None
            assert isinstance(arena.share(strings), np.ndarray)
        assert leaked_segments() == []

    def test_no_leak_after_parallel_ops(self, target):
        def op(pool):
            estimator = BootstrapEstimator(
                32, np.random.default_rng(5), pool=pool
            )
            return estimator.resample_distribution(target)

        _run_at(4, op)
        assert leaked_segments() == []

    def test_no_leak_when_worker_raises(self, table):
        with pool_scope(2) as pool:
            with pytest.raises(RuntimeError, match="worker exploded"):
                bootstrap_table_statistic(
                    table, _boom, 16, np.random.default_rng(5), pool=pool
                )
        assert leaked_segments() == []

    def test_engine_close_is_idempotent(self, table):
        engine = AQPEngine(EngineConfig(num_workers=2), seed=2)
        engine.register_table("t", table)
        engine.create_sample("t", size=1000)
        engine.execute("SELECT AVG(a) FROM t")
        engine.close()
        engine.close()
        assert engine._pool is None
        assert leaked_segments() == []


# ---------------------------------------------------------------------------
# Weight-matrix memory guard + dtype audit
# ---------------------------------------------------------------------------
class TestWeightMatrixGuard:
    def test_budget_exceeded_raises(self):
        rng = np.random.default_rng(5)
        with pytest.raises(SamplingError, match="exceeding"):
            poisson_weight_matrix(10_000, 100, rng, max_bytes=1000)

    def test_error_reports_byte_arithmetic(self):
        rng = np.random.default_rng(5)
        with pytest.raises(SamplingError) as excinfo:
            poisson_weight_matrix(1000, 100, rng, max_bytes=4096)
        message = str(excinfo.value)
        # 1000 × 100 × 4 bytes (int32)
        assert "400,000" in message
        assert "4,096" in message
        assert WEIGHT_BUDGET_ENV in message

    def test_env_budget(self, monkeypatch):
        rng = np.random.default_rng(5)
        monkeypatch.setenv(WEIGHT_BUDGET_ENV, "512")
        with pytest.raises(SamplingError):
            poisson_weight_matrix(1000, 100, rng)
        monkeypatch.delenv(WEIGHT_BUDGET_ENV)
        assert poisson_weight_matrix(1000, 100, rng).shape == (1000, 100)

    def test_within_budget_passes(self):
        rng = np.random.default_rng(5)
        matrix = poisson_weight_matrix(100, 10, rng, max_bytes=100 * 10 * 4)
        assert matrix.shape == (100, 10)

    def test_int32_default_dtype(self):
        rng = np.random.default_rng(5)
        assert poisson_weights(100, rng).dtype == np.int32
        assert poisson_weight_matrix(10, 10, rng).dtype == np.int32
        resampler = PoissonizedResampler(8, rng)
        assert resampler.full_matrix(100).dtype == np.int32

    def test_streaming_resampler_checks_full_matrix(self, monkeypatch):
        rng = np.random.default_rng(5)
        resampler = PoissonizedResampler(1000, rng, block_rows=100)
        # 10_000 × 1000 × 4 bytes ≈ 40 MB > the 1 MB budget.
        monkeypatch.setenv(WEIGHT_BUDGET_ENV, "1000000")
        with pytest.raises(SamplingError):
            resampler.full_matrix(10_000)


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------
class TestPlanCache:
    def _engine(self, table, cache_size=128):
        engine = AQPEngine(
            EngineConfig(plan_cache_size=cache_size, run_diagnostics=False),
            seed=3,
        )
        engine.register_table("t", table)
        engine.create_sample("t", size=1000)
        return engine

    def test_repeat_query_hits(self, table):
        engine = self._engine(table)
        engine.execute("SELECT AVG(a) FROM t")
        engine.execute("SELECT AVG(a) FROM t")
        info = engine.plan_cache_info()
        assert info["hits"] >= 1
        assert info["size"] == 1

    def test_cached_plan_is_same_object(self, table):
        engine = self._engine(table)
        first = engine.analyze_sql("SELECT SUM(a) FROM t")
        second = engine.analyze_sql("SELECT SUM(a) FROM t")
        assert first is second

    def test_lru_eviction_order(self, table):
        engine = self._engine(table, cache_size=2)
        a = engine.analyze_sql("SELECT AVG(a) FROM t")
        engine.analyze_sql("SELECT SUM(a) FROM t")
        # Touch the first entry so the second is the LRU victim.
        assert engine.analyze_sql("SELECT AVG(a) FROM t") is a
        engine.analyze_sql("SELECT COUNT(a) FROM t")
        info = engine.plan_cache_info()
        assert info["size"] == 2
        assert engine.analyze_sql("SELECT AVG(a) FROM t") is a

    def test_register_table_invalidates(self, table):
        engine = self._engine(table)
        engine.analyze_sql("SELECT AVG(a) FROM t")
        engine.register_table("t2", table)
        assert engine.plan_cache_info()["size"] == 0

    def test_register_udf_invalidates(self, table):
        engine = self._engine(table)
        engine.analyze_sql("SELECT AVG(a) FROM t")
        engine.register_udf("double_it", lambda v: v * 2)
        assert engine.plan_cache_info()["size"] == 0

    def test_zero_size_disables_caching(self, table):
        engine = self._engine(table, cache_size=0)
        engine.analyze_sql("SELECT AVG(a) FROM t")
        engine.analyze_sql("SELECT AVG(a) FROM t")
        info = engine.plan_cache_info()
        assert info["size"] == 0
        assert info["hits"] == 0
