"""The query governor: memory budgets, cancellation, admission, ladder.

Covers the overload contract end to end:

* the :class:`MemoryAccountant` is all-or-nothing — a rejected
  reservation can never follow a partial allocation (property-based);
* engine-level budget rejection degrades honestly *before* allocating
  (no shared-memory segments, ledger back to zero);
* cooperative cancellation interrupts a bootstrap mid-flight, leaves
  no orphaned shared memory, and the engine stays usable;
* admission control sheds by policy (reject / queue / degrade) and the
  circuit breaker lowers the fidelity floor under sustained failure;
* a governed, uncontended query is bit-identical to an ungoverned one.
"""

from __future__ import annotations

import glob
import os
import subprocess
import sys
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pipeline import AQPEngine, AQPResult, EngineConfig
from repro.errors import (
    AdmissionRejectedError,
    QueryCancelledError,
    ReproError,
    ResourceError,
    ResourceExhaustedError,
    SamplingError,
)
from repro.governor import (
    CancelToken,
    CircuitBreaker,
    DegradationLevel,
    GovernorConfig,
    MemoryAccountant,
    QueryGovernor,
)
from repro.governor.breaker import BreakerState
from repro.parallel.ops import bootstrap_replicates
from repro.parallel.shm import SEGMENT_PREFIX
from repro.core.estimators import EstimationTarget
from repro.engine.aggregates import get_aggregate
from repro.engine.table import Table


def _own_segments() -> list[str]:
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}_{os.getpid()}_*")


def _make_engine(seed: int = 7, **config_kwargs) -> AQPEngine:
    rng = np.random.default_rng(99)
    engine = AQPEngine(
        config=EngineConfig(tracing=False, **config_kwargs), seed=seed
    )
    engine.register_table(
        "t",
        Table(
            {
                "x": rng.lognormal(3.0, 1.0, 4000),
                "g": rng.integers(0, 3, 4000).astype(np.float64),
            }
        ),
    )
    engine.create_sample("t", size=1500)
    return engine


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_resource_errors_are_repro_errors(self):
        for exc_type in (
            ResourceExhaustedError,
            QueryCancelledError,
            AdmissionRejectedError,
        ):
            assert issubclass(exc_type, ResourceError)
            assert issubclass(exc_type, ReproError)

    def test_resource_errors_distinct_from_sampling(self):
        # The per-matrix guard in sampling.poisson keeps raising
        # SamplingError; the governor's taxonomy is a separate branch.
        assert not issubclass(SamplingError, ResourceError)

    def test_requested_bytes_attribute(self):
        error = ResourceExhaustedError("too big", requested_bytes=123)
        assert error.requested_bytes == 123


# ---------------------------------------------------------------------------
# Memory accountant
# ---------------------------------------------------------------------------
class TestMemoryAccountant:
    def test_reserve_and_release(self):
        accountant = MemoryAccountant(budget_bytes=1000)
        with accountant.reserve(600, "a"):
            assert accountant.used_bytes == 600
            assert accountant.headroom_bytes() == 400
        assert accountant.used_bytes == 0
        assert accountant.peak_bytes == 600

    def test_rejection_leaves_ledger_untouched(self):
        accountant = MemoryAccountant(budget_bytes=1000)
        holder = accountant.reserve(700, "held")
        with pytest.raises(ResourceExhaustedError):
            accountant.reserve(500, "too much")
        assert accountant.used_bytes == 700
        assert accountant.rejections == 1
        holder.release()
        assert accountant.used_bytes == 0

    def test_over_whole_budget_rejects_immediately(self):
        accountant = MemoryAccountant(budget_bytes=100)
        started = time.monotonic()
        with pytest.raises(ResourceExhaustedError) as info:
            accountant.reserve(101, "huge", wait_seconds=5.0)
        assert time.monotonic() - started < 1.0  # waiting cannot help
        assert info.value.requested_bytes == 101

    def test_unlimited_accountant_only_tracks(self):
        accountant = MemoryAccountant()
        assert accountant.budget_bytes is None
        with accountant.reserve(10**12, "huge"):
            assert accountant.used_bytes == 10**12
        assert accountant.peak_bytes == 10**12

    def test_waiting_reservation_proceeds_after_release(self):
        accountant = MemoryAccountant(budget_bytes=1000)
        holder = accountant.reserve(900, "held")
        threading.Timer(0.1, holder.release).start()
        with accountant.reserve(800, "waits", wait_seconds=2.0):
            assert accountant.used_bytes == 800

    def test_waiting_reservation_honours_cancel(self):
        accountant = MemoryAccountant(budget_bytes=1000)
        accountant.reserve(900, "held")
        token = CancelToken()
        threading.Timer(0.05, token.cancel).start()
        with pytest.raises(QueryCancelledError):
            accountant.reserve(800, "waits", wait_seconds=5.0, cancel=token)
        assert accountant.used_bytes == 900

    def test_release_is_idempotent(self):
        accountant = MemoryAccountant(budget_bytes=1000)
        reservation = accountant.reserve(400, "once")
        reservation.release()
        reservation.release()
        assert accountant.used_bytes == 0

    @settings(max_examples=60, deadline=None)
    @given(
        budget=st.integers(min_value=1, max_value=10_000),
        requests=st.lists(
            st.integers(min_value=0, max_value=12_000), max_size=30
        ),
    )
    def test_property_rejection_never_follows_partial_grant(
        self, budget, requests
    ):
        """All-or-nothing: the ledger matches a model that only ever
        applies whole grants, and never exceeds the budget."""
        accountant = MemoryAccountant(budget_bytes=budget)
        granted = []
        model_used = 0
        for nbytes in requests:
            before = accountant.used_bytes
            try:
                granted.append(accountant.reserve(nbytes, "prop"))
                model_used += nbytes
            except ResourceExhaustedError:
                # A rejection is side-effect free.
                assert accountant.used_bytes == before
            assert accountant.used_bytes == model_used
            assert accountant.used_bytes <= budget
        for reservation in granted:
            reservation.release()
        assert accountant.used_bytes == 0


# ---------------------------------------------------------------------------
# Cancellation token
# ---------------------------------------------------------------------------
class TestCancelToken:
    def test_cancel_and_check(self):
        token = CancelToken()
        token.check()  # not cancelled: no-op
        token.cancel("client went away")
        assert token.cancelled
        with pytest.raises(QueryCancelledError, match="client went away"):
            token.check()

    def test_timeout_token_self_cancels(self):
        token = CancelToken.with_timeout(0.05)
        assert not token.cancelled
        time.sleep(0.08)
        assert token.cancelled
        with pytest.raises(QueryCancelledError, match="timeout"):
            token.check()

    def test_wait_returns_on_cancel(self):
        token = CancelToken()
        threading.Timer(0.05, token.cancel).start()
        started = time.monotonic()
        assert token.wait(5.0)
        assert time.monotonic() - started < 1.0

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            CancelToken.with_timeout(0)


# ---------------------------------------------------------------------------
# Engine-level memory governance
# ---------------------------------------------------------------------------
class TestEngineMemoryBudget:
    def test_over_budget_bootstrap_degrades_before_allocating(self):
        engine = _make_engine(
            memory_budget_bytes=10_000, run_diagnostics=False
        )
        engine.register_udf("bump", lambda v: v + 1.0)
        before_segments = _own_segments()
        result = engine.execute("SELECT AVG(bump(x)) FROM t")
        value = result.single()
        # The bootstrap was refused pre-allocation; the closed form is
        # mathematically applicable to AVG, so it substitutes.
        assert value.fell_back
        assert value.method == "closed_form"
        assert result.degraded
        assert "bytes" in value.fallback_reason
        # Nothing was allocated, nothing leaked, nothing left reserved.
        assert engine.memory.used_bytes == 0
        assert _own_segments() == before_segments

    def test_budget_rejection_counts(self):
        engine = _make_engine(
            memory_budget_bytes=10_000, run_diagnostics=False
        )
        engine.register_udf("bump", lambda v: v + 1.0)
        engine.execute("SELECT AVG(bump(x)) FROM t")
        assert engine.memory.rejections >= 1

    def test_generous_budget_changes_nothing(self):
        budgeted = _make_engine(
            memory_budget_bytes=1 << 30, run_diagnostics=False
        )
        unbudgeted = _make_engine(run_diagnostics=False)
        for engine in (budgeted, unbudgeted):
            engine.register_udf("bump", lambda v: v + 1.0)
        sql = "SELECT AVG(bump(x)) FROM t WHERE x > 20"
        a = budgeted.execute(sql).single()
        b = unbudgeted.execute(sql).single()
        assert a.estimate == b.estimate
        assert a.interval.half_width == b.interval.half_width
        # All transient query memory is released; what remains is the
        # materialized catalog's stored answer, which is accounted.
        assert (
            budgeted.memory.used_bytes
            == budgeted.catalog_info()["bytes"]
        )
        assert budgeted.memory.peak_bytes > 0

    def test_ops_reserve_consolidated_footprint(self):
        values = np.random.default_rng(0).normal(size=512)
        target = EstimationTarget(
            values=values, aggregate=get_aggregate("AVG")
        )
        accountant = MemoryAccountant(budget_bytes=10**9)
        from repro.parallel.supervise import Supervision

        supervision = Supervision.default()
        supervision.memory = accountant
        bootstrap_replicates(target, 40, seed=1, supervision=supervision)
        # One consolidated reservation, fully released afterwards.
        assert accountant.peak_bytes > 0
        assert accountant.used_bytes == 0


# ---------------------------------------------------------------------------
# Cancellation through the engine
# ---------------------------------------------------------------------------
class TestEngineCancellation:
    def test_pre_cancelled_token_stops_immediately(self):
        engine = _make_engine(run_diagnostics=False)
        token = CancelToken()
        token.cancel("already gone")
        with pytest.raises(QueryCancelledError):
            engine.execute("SELECT AVG(x) FROM t", cancel=token)

    def test_cancel_mid_bootstrap_is_prompt_and_clean(self):
        # A fault-injected stall makes chunk 0 slow; the canceller
        # fires during it, and the very next chunk boundary raises.
        from repro.faults import FaultPlan

        engine = _make_engine(
            run_diagnostics=False,
            fault_plan=FaultPlan().with_hang(task=0, seconds=0.3),
            num_bootstrap_resamples=200,
        )
        engine.register_udf("bump", lambda v: v + 1.0)
        before_segments = _own_segments()
        token = CancelToken()
        threading.Timer(0.05, token.cancel).start()
        started = time.monotonic()
        with pytest.raises(QueryCancelledError):
            engine.execute("SELECT AVG(bump(x)) FROM t", cancel=token)
        elapsed = time.monotonic() - started
        # One replicate-chunk boundary after the stall, well under the
        # uncancelled runtime of 200 replicates.
        assert elapsed < 1.5
        assert _own_segments() == before_segments
        # The engine survives and answers the next query normally.
        follow_up = engine.execute("SELECT AVG(x) FROM t")
        assert follow_up.single().estimate > 0

    def test_timeout_parameter_cancels(self):
        from repro.faults import FaultPlan

        engine = _make_engine(
            run_diagnostics=False,
            fault_plan=FaultPlan().with_hang(task=0, seconds=0.4),
            num_bootstrap_resamples=200,
        )
        engine.register_udf("bump", lambda v: v + 1.0)
        with pytest.raises(QueryCancelledError, match="timeout"):
            engine.execute("SELECT AVG(bump(x)) FROM t", timeout=0.05)

    def test_exact_fallback_checks_cancellation(self):
        engine = _make_engine(run_diagnostics=False)
        token = CancelToken()
        token.cancel()
        from repro.governor.cancel import cancel_scope

        with cancel_scope(token), pytest.raises(QueryCancelledError):
            engine.execute_exact("SELECT SUM(x) FROM t")


# ---------------------------------------------------------------------------
# Startup sweep
# ---------------------------------------------------------------------------
class TestStartupSweep:
    def test_engine_startup_sweeps_dead_owner_segments(self):
        child = subprocess.run(
            [
                sys.executable,
                "-c",
                "import os\n"
                "from multiprocessing import resource_tracker, shared_memory\n"
                "resource_tracker.register = lambda *a, **k: None\n"
                f"name = '{SEGMENT_PREFIX}_' + str(os.getpid()) + '_7777'\n"
                "shared_memory.SharedMemory(name=name, create=True, size=64)\n"
                "print(name, flush=True)\n"
                "os._exit(1)\n",
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        orphan = child.stdout.strip()
        assert os.path.exists(f"/dev/shm/{orphan}")
        AQPEngine(config=EngineConfig(tracing=False))
        assert not os.path.exists(f"/dev/shm/{orphan}")


# ---------------------------------------------------------------------------
# Degradation ladder through the engine
# ---------------------------------------------------------------------------
class TestDegradationLadder:
    def test_levels_are_ordered(self):
        assert (
            DegradationLevel.FULL
            < DegradationLevel.REDUCED_K
            < DegradationLevel.CLOSED_FORM
            < DegradationLevel.POINT_ESTIMATE
        )

    def test_reduced_k_widens_interval_and_is_flagged(self):
        full = _make_engine(run_diagnostics=False)
        reduced = _make_engine(run_diagnostics=False)
        for engine in (full, reduced):
            engine.register_udf("bump", lambda v: v + 1.0)
        sql = "SELECT AVG(bump(x)) FROM t"
        a = full.execute(sql).single()
        b_result = reduced.execute(
            sql, degradation=DegradationLevel.REDUCED_K
        )
        b = b_result.single()
        assert b_result.degraded
        assert b.method == "bootstrap"
        # Fewer replicates, same center, honestly wider bars.
        assert b.estimate == a.estimate
        assert b.interval.half_width > 0

    def test_closed_form_floor_skips_bootstrap(self):
        engine = _make_engine(run_diagnostics=False)
        engine.register_udf("bump", lambda v: v + 1.0)
        result = engine.execute(
            "SELECT AVG(bump(x)) FROM t",
            degradation=DegradationLevel.CLOSED_FORM,
        )
        value = result.single()
        assert value.method == "closed_form"
        assert value.fell_back
        assert result.degraded
        assert result.bootstrap_subqueries == 0

    def test_point_estimate_floor_is_flagged_unreliable(self):
        engine = _make_engine(run_diagnostics=False)
        engine.register_udf("bump", lambda v: v + 1.0)
        result = engine.execute(
            "SELECT AVG(bump(x)) FROM t",
            degradation=DegradationLevel.POINT_ESTIMATE,
        )
        value = result.single()
        assert value.method == "unreliable"
        assert value.interval is None
        assert value.fell_back
        assert result.degraded

    def test_reduced_k_replicates_match_leading_chunks(self):
        values = np.random.default_rng(3).lognormal(3, 1, 600)
        target = EstimationTarget(
            values=values, aggregate=get_aggregate("AVG")
        )
        full = bootstrap_replicates(target, 96, seed=11)
        capped = bootstrap_replicates(target, 96, seed=11, replicate_cap=25)
        # 25 rounds down to 3 whole chunks of 8 = 24 replicates, and
        # they are bit-identical to the first 24 of the full run.
        assert len(capped) == 24
        np.testing.assert_array_equal(capped, full[:24])


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_and_recovers(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=0.5,
            window=10,
            min_samples=4,
            cooldown_seconds=1.0,
            clock=lambda: clock[0],
        )
        assert breaker.floor_level() is DegradationLevel.FULL
        for _ in range(4):
            breaker.record(False)
        assert breaker.state is BreakerState.OPEN
        assert breaker.floor_level() is DegradationLevel.CLOSED_FORM
        # Before the cooldown: still open.
        clock[0] = 0.5
        assert breaker.floor_level() is DegradationLevel.CLOSED_FORM
        # After the cooldown: half-open probe at full fidelity.
        clock[0] = 1.5
        assert breaker.floor_level() is DegradationLevel.FULL
        breaker.record(True)
        assert breaker.state is BreakerState.CLOSED

    def test_reopens_on_failed_probe(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            min_samples=2, window=4, cooldown_seconds=1.0,
            clock=lambda: clock[0],
        )
        breaker.record(False)
        breaker.record(False)
        assert breaker.state is BreakerState.OPEN
        clock[0] = 1.5
        breaker.floor_level()
        breaker.record(False)  # the probe fails
        assert breaker.state is BreakerState.OPEN


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------
class _FakeEngine:
    """Just enough engine for admission tests: a gateable execute()."""

    def __init__(self, gate: threading.Event | None = None):
        self.config = EngineConfig(tracing=False)
        self.gate = gate
        self.seen_levels: list[DegradationLevel] = []
        self.closed = False

    def execute(self, sql, cancel=None, degradation=None, **kwargs):
        self.seen_levels.append(degradation)
        if self.gate is not None:
            self.gate.wait(timeout=10.0)
        return AQPResult(
            sql=sql, rows=(), sample=None, elapsed_seconds=0.0
        )

    def close(self):
        self.closed = True


def _occupy(governor: QueryGovernor, gate: threading.Event) -> threading.Thread:
    """Run one query that holds its slot until ``gate`` is set."""
    entered = threading.Event()

    def run():
        entered.set()
        governor.execute("SELECT 1")

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    entered.wait(timeout=5.0)
    time.sleep(0.1)  # let it pass admission and block in execute()
    return thread


class TestAdmission:
    def test_uncontended_admission_is_full_fidelity(self):
        engine = _FakeEngine()
        governor = QueryGovernor(
            engine, GovernorConfig(max_concurrency=2)
        )
        governor.execute("SELECT 1")
        assert engine.seen_levels == [DegradationLevel.FULL]
        stats = governor.stats()
        assert stats["admitted"] == 1
        assert stats["rejected"] == 0

    def test_reject_policy_sheds_fast(self):
        gate = threading.Event()

        def factory():
            return _FakeEngine(gate)

        governor = QueryGovernor(
            factory,
            GovernorConfig(max_concurrency=1, shed_policy="reject"),
        )
        thread = _occupy(governor, gate)
        try:
            with pytest.raises(AdmissionRejectedError):
                governor.execute("SELECT 2")
        finally:
            gate.set()
            thread.join(timeout=5.0)
        assert governor.stats()["rejected"] == 1

    def test_degrade_policy_admits_overflow_at_reduced_level(self):
        gate = threading.Event()
        engines: list[_FakeEngine] = []

        def factory():
            engine = _FakeEngine(gate)
            engines.append(engine)
            return engine

        governor = QueryGovernor(
            factory,
            GovernorConfig(
                max_concurrency=1,
                shed_policy="degrade",
                max_overflow=1,
                overflow_level=DegradationLevel.REDUCED_K,
            ),
        )
        thread = _occupy(governor, gate)
        try:
            done = threading.Event()
            levels: list[DegradationLevel] = []

            def overflow_client():
                governor.execute("SELECT 2")
                done.set()

            overflow = threading.Thread(target=overflow_client, daemon=True)
            overflow.start()
            time.sleep(0.2)
            gate.set()
            assert done.wait(timeout=5.0)
            overflow.join(timeout=5.0)
            levels = [
                level for engine in engines for level in engine.seen_levels
            ]
            assert DegradationLevel.REDUCED_K in levels
        finally:
            gate.set()
            thread.join(timeout=5.0)
        assert governor.stats()["levels"]["reduced_k"] == 1

    def test_queue_policy_times_out(self):
        gate = threading.Event()

        def factory():
            return _FakeEngine(gate)

        governor = QueryGovernor(
            factory,
            GovernorConfig(
                max_concurrency=1,
                shed_policy="queue",
                queue_timeout_seconds=0.2,
            ),
        )
        thread = _occupy(governor, gate)
        try:
            with pytest.raises(AdmissionRejectedError, match="queued"):
                governor.execute("SELECT 2")
        finally:
            gate.set()
            thread.join(timeout=5.0)

    def test_queue_policy_admits_when_slot_frees(self):
        gate = threading.Event()

        def factory():
            return _FakeEngine(gate)

        governor = QueryGovernor(
            factory,
            GovernorConfig(
                max_concurrency=1,
                shed_policy="queue",
                queue_timeout_seconds=5.0,
            ),
        )
        thread = _occupy(governor, gate)
        threading.Timer(0.2, gate.set).start()
        result = governor.execute("SELECT 2")  # waits, then runs
        assert result is not None
        thread.join(timeout=5.0)
        assert governor.stats()["admitted"] == 2

    def test_close_rejects_new_queries_and_closes_engines(self):
        engines: list[_FakeEngine] = []

        def factory():
            engine = _FakeEngine()
            engines.append(engine)
            return engine

        governor = QueryGovernor(factory, GovernorConfig())
        governor.execute("SELECT 1")
        governor.close()
        with pytest.raises(AdmissionRejectedError):
            governor.execute("SELECT 2")
        assert all(engine.closed for engine in engines)


# ---------------------------------------------------------------------------
# Governed determinism
# ---------------------------------------------------------------------------
class TestGovernedDeterminism:
    def test_uncontended_governed_query_is_bit_identical(self):
        sql = "SELECT AVG(bump(x)) FROM t WHERE x > 15"

        def factory():
            engine = _make_engine(run_diagnostics=False)
            engine.register_udf("bump", lambda v: v + 1.0)
            return engine

        ungoverned = factory()
        plain = ungoverned.execute(sql).single()
        with QueryGovernor(
            factory,
            GovernorConfig(max_concurrency=2, memory_budget_bytes=1 << 30),
        ) as governor:
            governed = governor.execute(sql).single()
        assert governed.estimate == plain.estimate
        assert governed.interval.half_width == plain.interval.half_width
        assert governed.method == plain.method
