"""Unit tests for bootstrap error estimation."""

import numpy as np
import pytest

from repro.core.bootstrap import (
    BootstrapEstimator,
    bootstrap_table_interval,
    bootstrap_table_statistic,
)
from repro.core.estimators import EstimationTarget
from repro.engine import Table
from repro.engine.aggregates import get_aggregate
from repro.errors import EstimationError


@pytest.fixture
def avg_target(rng):
    return EstimationTarget(
        rng.normal(50.0, 10.0, size=5000), get_aggregate("AVG")
    )


class TestBootstrapEstimator:
    def test_interval_centered_on_point_estimate(self, avg_target, rng):
        estimator = BootstrapEstimator(100, rng)
        ci = estimator.estimate(avg_target, 0.95)
        assert ci.estimate == pytest.approx(avg_target.point_estimate())
        assert ci.method == "bootstrap"

    def test_half_width_matches_clt_for_mean(self, avg_target, rng):
        """Bootstrap on a well-behaved mean agrees with σ/√n."""
        estimator = BootstrapEstimator(400, rng)
        ci = estimator.estimate(avg_target, 0.95)
        clt_half = 1.96 * avg_target.values.std(ddof=1) / np.sqrt(5000)
        assert ci.half_width == pytest.approx(clt_half, rel=0.2)

    def test_higher_confidence_wider(self, avg_target, rng):
        estimator = BootstrapEstimator(200, rng)
        narrow = estimator.estimate(avg_target, 0.80, np.random.default_rng(1))
        wide = estimator.estimate(avg_target, 0.99, np.random.default_rng(1))
        assert wide.half_width > narrow.half_width

    def test_width_shrinks_with_sample_size(self, rng):
        estimator = BootstrapEstimator(200, rng)
        small = EstimationTarget(
            rng.normal(0, 1, size=500), get_aggregate("AVG")
        )
        large = EstimationTarget(
            rng.normal(0, 1, size=50_000), get_aggregate("AVG")
        )
        assert (
            estimator.estimate(large, 0.95).half_width
            < estimator.estimate(small, 0.95).half_width
        )

    def test_respects_filter_mask(self, rng):
        values = np.concatenate([np.zeros(1000), np.full(1000, 100.0)])
        mask = values > 50
        target = EstimationTarget(values, get_aggregate("AVG"), mask=mask)
        ci = BootstrapEstimator(50, rng).estimate(target)
        assert ci.estimate == pytest.approx(100.0)

    def test_empty_filter_rejected(self, rng):
        target = EstimationTarget(
            np.arange(10.0),
            get_aggregate("AVG"),
            mask=np.zeros(10, dtype=bool),
        )
        with pytest.raises(EstimationError, match="matched no"):
            BootstrapEstimator(50, rng).estimate(target)

    def test_too_few_resamples_rejected(self, rng):
        with pytest.raises(EstimationError, match="at least 2"):
            BootstrapEstimator(1, rng)

    def test_applicable_to_everything(self, avg_target, rng):
        assert BootstrapEstimator(10, rng).applicable(avg_target)

    def test_resample_distribution_shape(self, avg_target, rng):
        estimator = BootstrapEstimator(64, rng)
        distribution = estimator.resample_distribution(avg_target)
        assert distribution.shape == (64,)

    def test_deterministic_given_rng(self, avg_target):
        estimator = BootstrapEstimator(50)
        first = estimator.estimate(avg_target, 0.95, np.random.default_rng(9))
        second = estimator.estimate(avg_target, 0.95, np.random.default_rng(9))
        assert first.half_width == second.half_width


class TestBlackBoxTableBootstrap:
    @pytest.fixture
    def table(self, rng):
        return Table({"v": rng.normal(10.0, 2.0, size=2000)})

    def test_replicates_shape(self, table, rng):
        replicates = bootstrap_table_statistic(
            table, lambda t: float(t.column("v").mean()), 32, rng
        )
        assert replicates.shape == (32,)

    def test_replicates_center_near_statistic(self, table, rng):
        replicates = bootstrap_table_statistic(
            table, lambda t: float(t.column("v").mean()), 100, rng
        )
        assert replicates.mean() == pytest.approx(
            table.column("v").mean(), abs=0.2
        )

    def test_exact_method_gives_exact_sizes(self, table, rng):
        sizes = bootstrap_table_statistic(
            table, lambda t: float(t.num_rows), 16, rng, method="exact"
        )
        assert (sizes == 2000).all()

    def test_poisson_method_gives_near_sizes(self, table, rng):
        sizes = bootstrap_table_statistic(
            table, lambda t: float(t.num_rows), 16, rng, method="poisson"
        )
        assert (np.abs(sizes - 2000) < 5 * np.sqrt(2000)).all()

    def test_unknown_method_rejected(self, table, rng):
        with pytest.raises(EstimationError, match="unknown resampling"):
            bootstrap_table_statistic(table, lambda t: 0.0, 8, rng, method="bad")

    def test_empty_table_rejected(self, rng):
        empty = Table({"v": np.array([])})
        with pytest.raises(EstimationError, match="empty"):
            bootstrap_table_statistic(empty, lambda t: 0.0, 8, rng)

    def test_interval_wrapper(self, table, rng):
        ci = bootstrap_table_interval(
            table, lambda t: float(t.column("v").mean()), 0.95, 64, rng
        )
        assert ci.method == "bootstrap"
        assert ci.contains(table.column("v").mean())

    def test_agrees_with_weighted_fast_path(self, table, rng):
        """Black-box and weight-matrix bootstraps estimate the same spread."""
        target = EstimationTarget(table.column("v"), get_aggregate("AVG"))
        fast = BootstrapEstimator(300, np.random.default_rng(3)).estimate(target)
        slow = bootstrap_table_interval(
            table,
            lambda t: float(t.column("v").mean()),
            0.95,
            300,
            np.random.default_rng(4),
        )
        assert fast.half_width == pytest.approx(slow.half_width, rel=0.25)
