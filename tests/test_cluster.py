"""Unit tests for the cluster simulator."""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import (
    AQPQuerySpec,
    ClusterConfig,
    ClusterSimulator,
    Job,
    PAPER_CLUSTER,
    Stage,
    build_phases,
    straggler_multipliers,
)
from repro.cluster.config import GB, MB
from repro.cluster.simulator import _lpt_makespan
from repro.cluster.stragglers import apply_speculative_mitigation
from repro.errors import SimulationError


@pytest.fixture
def sim():
    return ClusterSimulator(PAPER_CLUSTER)


@pytest.fixture
def spec():
    return AQPQuerySpec(
        sample_bytes=20 * GB,
        sample_rows=40_000_000,
        selectivity=0.2,
        closed_form=False,
    )


class TestConfig:
    def test_paper_cluster_shape(self):
        assert PAPER_CLUSTER.num_machines == 100
        assert PAPER_CLUSTER.total_slots == 400
        assert PAPER_CLUSTER.total_ram_bytes == 100 * int(7.5 * GB)

    def test_with_machines(self):
        smaller = PAPER_CLUSTER.with_machines(10)
        assert smaller.total_slots == 40

    def test_scan_seconds_cache_speedup(self):
        cached = PAPER_CLUSTER.scan_seconds(1 * GB, 1.0)
        uncached = PAPER_CLUSTER.scan_seconds(1 * GB, 0.0)
        assert uncached > 5 * cached

    def test_scan_seconds_invalid_fraction(self):
        with pytest.raises(SimulationError):
            PAPER_CLUSTER.scan_seconds(1 * GB, 1.5)

    def test_invalid_configs(self):
        with pytest.raises(SimulationError):
            ClusterConfig(num_machines=0)
        with pytest.raises(SimulationError):
            ClusterConfig(straggler_probability=1.5)


class TestLptMakespan:
    def test_fewer_tasks_than_slots(self):
        assert _lpt_makespan(np.array([3.0, 1.0]), 4) == 3.0

    def test_perfect_packing(self):
        assert _lpt_makespan(np.array([1.0] * 8), 4) == pytest.approx(2.0)

    def test_empty(self):
        assert _lpt_makespan(np.array([]), 4) == 0.0

    def test_dominant_task(self):
        durations = np.array([10.0] + [0.1] * 100)
        assert _lpt_makespan(durations, 8) >= 10.0

    def test_zero_slots_rejected(self):
        with pytest.raises(SimulationError):
            _lpt_makespan(np.array([1.0]), 0)


class TestStragglers:
    def test_no_stragglers_when_probability_zero(self, rng):
        config = ClusterConfig(straggler_probability=0.0)
        multipliers = straggler_multipliers(1000, config, rng)
        assert (multipliers == 1.0).all()

    def test_some_stragglers_at_default_probability(self, rng):
        multipliers = straggler_multipliers(10_000, PAPER_CLUSTER, rng)
        fraction_slow = (multipliers > 1.0).mean()
        assert 0.03 < fraction_slow < 0.07
        assert multipliers.min() == 1.0

    def test_negative_tasks_rejected(self, rng):
        with pytest.raises(SimulationError):
            straggler_multipliers(-1, PAPER_CLUSTER, rng)

    def test_mitigation_never_slows_tasks(self, rng):
        base = np.full(100, 1.0)
        durations = base * straggler_multipliers(100, PAPER_CLUSTER, rng)
        mitigated, extra = apply_speculative_mitigation(
            durations, base, PAPER_CLUSTER, rng
        )
        assert (mitigated <= durations).all()
        assert extra == 10

    def test_mitigation_on_empty(self, rng):
        durations, extra = apply_speculative_mitigation(
            np.array([]), np.array([]), PAPER_CLUSTER, rng
        )
        assert extra == 0


class TestSimulate:
    def test_basic_job(self, sim, rng):
        job = Job(
            name="scan",
            stages=(Stage(name="s", total_bytes=10 * GB, total_rows=10**7),),
        )
        timing = sim.simulate(job, rng=rng)
        assert timing.total_seconds > 0
        assert timing.tasks_launched >= 80  # 10GB / 128MB partitions
        assert "s" in timing.stage_seconds

    def test_more_machines_speed_up_big_scans(self, sim, rng):
        job = Job(
            name="scan",
            stages=(Stage(name="s", total_bytes=100 * GB),),
        )
        slow = sim.simulate(job, num_machines=2, rng=rng).total_seconds
        fast = sim.simulate(job, num_machines=50, rng=rng).total_seconds
        assert fast < slow / 3

    def test_excess_parallelism_hurts_small_jobs(self, sim, rng):
        """The Fig. 8(c) effect: coordination overhead dominates tiny jobs."""
        job = Job(
            name="tiny",
            stages=(Stage(name="s", total_bytes=256 * MB),),
        )
        narrow = np.mean(
            [sim.simulate(job, num_machines=5, rng=rng).total_seconds
             for __ in range(10)]
        )
        wide = np.mean(
            [sim.simulate(job, num_machines=100, rng=rng).total_seconds
             for __ in range(10)]
        )
        assert wide > narrow

    def test_fixed_tasks_respected(self, sim, rng):
        job = Job(
            name="subqueries",
            stages=(
                Stage(name="s", total_bytes=1 * GB, fixed_tasks=500),
            ),
        )
        timing = sim.simulate(job, rng=rng)
        assert timing.tasks_launched == 500

    def test_fixed_task_overhead_dominates(self, sim, rng):
        """Thousands of tiny subqueries are slower than one elastic stage
        over the same data — the §5.2 baseline's failure mode."""
        elastic = Job(
            name="elastic",
            stages=(Stage(name="s", total_bytes=2 * GB),),
        )
        shattered = Job(
            name="shattered",
            stages=(Stage(name="s", total_bytes=2 * GB, fixed_tasks=10_000),),
        )
        fast = sim.simulate(elastic, rng=rng).total_seconds
        slow = sim.simulate(shattered, rng=rng).total_seconds
        assert slow > 3 * fast

    def test_cache_makes_scans_faster(self, sim, rng):
        hot = Job(
            name="hot",
            stages=(Stage(name="s", total_bytes=50 * GB, cached_fraction=1.0),),
        )
        cold = Job(
            name="cold",
            stages=(Stage(name="s", total_bytes=50 * GB, cached_fraction=0.0),),
        )
        assert (
            sim.simulate(hot, rng=rng).total_seconds
            < sim.simulate(cold, rng=rng).total_seconds
        )

    def test_spill_penalty_applies(self, sim, rng):
        stage = Stage(name="s", total_rows=10**9, spillable=True)
        fits = Job(name="fits", stages=(stage,), intermediate_bytes=1 * GB)
        spills = Job(
            name="spills",
            stages=(stage,),
            cached_input_bytes=700 * GB,
            intermediate_bytes=400 * GB,
        )
        fit_time = sim.simulate(fits, rng=rng)
        spill_time = sim.simulate(spills, rng=rng)
        assert not fit_time.spilled
        assert spill_time.spilled
        assert spill_time.total_seconds > fit_time.total_seconds

    def test_mitigation_reduces_straggler_impact(self, rng):
        config = ClusterConfig(
            straggler_probability=0.2, straggler_mean_slowdown=5.0
        )
        sim = ClusterSimulator(config)
        job = Job(
            name="j", stages=(Stage(name="s", total_bytes=50 * GB),)
        )
        plain = np.mean(
            [sim.simulate(job, rng=rng).total_seconds for __ in range(10)]
        )
        mitigated = np.mean(
            [
                sim.simulate(job, straggler_mitigation=True, rng=rng).total_seconds
                for __ in range(10)
            ]
        )
        assert mitigated < plain

    def test_invalid_machine_count(self, sim, rng):
        job = Job(name="j", stages=(Stage(name="s", total_bytes=GB),))
        with pytest.raises(SimulationError):
            sim.simulate(job, num_machines=0, rng=rng)

    def test_sweep_machines(self, sim, spec, rng):
        job = build_phases(spec, optimized=True).execution
        sweep = sim.sweep_machines(job, [5, 20, 100], rng=rng, repetitions=3)
        assert set(sweep) == {5, 20, 100}
        assert all(v > 0 for v in sweep.values())


class TestPhaseJobs:
    def test_spec_validation(self):
        with pytest.raises(SimulationError):
            AQPQuerySpec(sample_bytes=0, sample_rows=1)
        with pytest.raises(SimulationError):
            AQPQuerySpec(sample_bytes=GB, sample_rows=10, selectivity=0.0)

    def test_naive_bootstrap_has_k_passes(self, spec):
        job = build_phases(spec, optimized=False).error_estimation
        stage = job.stages[0]
        assert stage.total_bytes == pytest.approx(spec.sample_bytes * 100)
        assert stage.fixed_tasks == 100 * 160  # K × 128MB partitions

    def test_optimized_bootstrap_no_extra_scan(self, spec):
        job = build_phases(spec, optimized=True).error_estimation
        stage = job.stages[0]
        assert stage.total_bytes == 0
        assert stage.total_weight_cells == pytest.approx(
            spec.sample_rows * spec.selectivity * 100
        )

    def test_pushdown_saves_weight_cells(self):
        selective = AQPQuerySpec(
            sample_bytes=GB, sample_rows=10**6, selectivity=0.01
        )
        broad = AQPQuerySpec(
            sample_bytes=GB, sample_rows=10**6, selectivity=1.0
        )
        selective_cells = build_phases(
            selective, optimized=True
        ).error_estimation.stages[0].total_weight_cells
        broad_cells = build_phases(
            broad, optimized=True
        ).error_estimation.stages[0].total_weight_cells
        assert selective_cells == pytest.approx(broad_cells / 100)

    def test_naive_diagnostics_task_explosion(self, spec):
        job = build_phases(spec, optimized=False).diagnostics
        total_tasks = sum(stage.fixed_tasks for stage in job.stages)
        # p=100 × K=100 per size × 3 sizes = 30,000 subqueries (§5.2).
        assert total_tasks == 30_000

    def test_closed_form_diagnostics_fewer_subqueries(self, spec):
        closed = replace(spec, closed_form=True)
        job = build_phases(closed, optimized=False).diagnostics
        assert sum(stage.fixed_tasks for stage in job.stages) == 300

    def test_end_to_end_speedup_shape(self, sim, spec, rng):
        """Fig. 7 vs Fig. 9: optimisation buys order-of-magnitude speedups."""
        naive = build_phases(spec, optimized=False)
        optimized = build_phases(spec, optimized=True)

        def total(phases, **kwargs):
            return sum(
                sim.simulate(job, rng=rng, **kwargs).total_seconds
                for job in (
                    phases.execution,
                    phases.error_estimation,
                    phases.diagnostics,
                )
            )

        naive_seconds = total(naive)
        optimized_seconds = total(
            optimized, num_machines=20, straggler_mitigation=True
        )
        assert naive_seconds > 10 * optimized_seconds
        assert optimized_seconds < 10  # "interactive": a few seconds

    def test_qset1_cheaper_than_qset2(self, sim, spec, rng):
        qset2 = build_phases(spec, optimized=False)
        qset1 = build_phases(replace(spec, closed_form=True), optimized=False)

        def diag_seconds(phases):
            return sim.simulate(phases.diagnostics, rng=rng).total_seconds

        assert diag_seconds(qset1) < diag_seconds(qset2) / 3
