"""Unit tests for the adaptive bootstrap (auto-tuned K)."""

import numpy as np
import pytest

from repro.core import BootstrapEstimator, EstimationTarget
from repro.core.adaptive import AdaptiveBootstrapEstimator
from repro.engine.aggregates import get_aggregate
from repro.errors import EstimationError


@pytest.fixture
def easy_target(rng):
    return EstimationTarget(
        rng.normal(100.0, 5.0, size=10_000), get_aggregate("AVG")
    )


@pytest.fixture
def hard_target(rng):
    # Extreme quantile on heavy-tailed data: widths stabilise slowly.
    return EstimationTarget(
        (rng.pareto(1.5, size=10_000) + 1.0) * 10.0,
        get_aggregate("PERCENTILE", 0.99),
    )


class TestAdaptiveBootstrap:
    def test_converges_on_easy_statistic(self, easy_target, rng):
        estimator = AdaptiveBootstrapEstimator(rng=rng)
        result = estimator.run(easy_target)
        assert result.converged
        assert result.num_resamples <= estimator.max_resamples

    def test_easy_statistic_stops_early(self, easy_target, rng):
        estimator = AdaptiveBootstrapEstimator(
            initial_resamples=50, max_resamples=1600, rng=rng
        )
        result = estimator.run(easy_target)
        assert result.num_resamples < 1600

    def test_hard_statistic_uses_more_resamples(
        self, easy_target, hard_target, rng
    ):
        estimator = AdaptiveBootstrapEstimator(
            initial_resamples=25, tolerance=0.02, rng=rng
        )
        easy = estimator.run(easy_target, rng=np.random.default_rng(1))
        hard = estimator.run(hard_target, rng=np.random.default_rng(1))
        assert hard.num_resamples >= easy.num_resamples

    def test_respects_cap(self, hard_target, rng):
        estimator = AdaptiveBootstrapEstimator(
            initial_resamples=10,
            max_resamples=40,
            tolerance=0.001,
            rng=rng,
        )
        result = estimator.run(hard_target)
        assert result.num_resamples <= 40

    def test_interval_matches_fixed_k_statistically(self, easy_target, rng):
        adaptive = AdaptiveBootstrapEstimator(rng=rng).estimate(
            easy_target, 0.95, np.random.default_rng(2)
        )
        fixed = BootstrapEstimator(400, np.random.default_rng(3)).estimate(
            easy_target, 0.95
        )
        assert adaptive.half_width == pytest.approx(fixed.half_width, rel=0.3)

    def test_width_history_recorded(self, easy_target, rng):
        result = AdaptiveBootstrapEstimator(rng=rng).run(easy_target)
        assert len(result.width_history) >= 2
        assert all(w > 0 for w in result.width_history)

    def test_estimate_interface(self, easy_target, rng):
        interval = AdaptiveBootstrapEstimator(rng=rng).estimate(easy_target)
        assert interval.method == "bootstrap"
        assert interval.contains(easy_target.point_estimate())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"initial_resamples": 1},
            {"growth_factor": 1.0},
            {"tolerance": 0.0},
            {"tolerance": 1.0},
            {"initial_resamples": 100, "max_resamples": 50},
        ],
    )
    def test_invalid_construction(self, kwargs):
        with pytest.raises(EstimationError):
            AdaptiveBootstrapEstimator(**kwargs)
