"""Observability tests: tracing, metrics, export, logging, CLI surfaces.

The load-bearing property is the non-perturbation contract: tracing is
default-on, so traced and untraced runs must be *bit-identical* — at
any worker count, and across injected-fault retries.  The rest covers
the span tree's coverage of the pipeline stages, the Chrome export
format, the metrics registry, and the CLI/REPL surfaces (EXPLAIN
ANALYZE, ``--trace-out``, ``\\stats``, Ctrl-C handling).
"""

from __future__ import annotations

import json
import logging
import os

import numpy as np
import pytest

from repro.cli import (
    build_parser,
    format_result,
    format_stats,
    repl,
    run_query,
    strip_explain_analyze,
)
from repro.core.pipeline import AQPEngine, EngineConfig
from repro.engine.table import Table
from repro.faults import FaultPlan
from repro.obs import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Trace,
    activate_trace,
    chrome_trace_events,
    configure_logging,
    current_trace,
    deactivate_trace,
    format_duration,
    render_span_tree,
    suppress_tracing,
    trace_event,
    trace_span,
    write_chrome_trace,
)
from repro.obs.logs import LOG_LEVEL_ENV
from repro.workloads import conviva_sessions_table, conviva_workload
from repro.workloads.queries import register_workload_functions


@pytest.fixture
def eight_cpus(monkeypatch):
    """Pretend the machine has 8 cores so real pools can exist."""
    monkeypatch.setattr(os, "cpu_count", lambda: 8)


def _make_engine(**config_kwargs) -> AQPEngine:
    rng = np.random.default_rng(11)
    table = Table({"x": rng.normal(10.0, 3.0, 20_000)}, name="t")
    config_kwargs.setdefault("retry_backoff_seconds", 0.0)
    config_kwargs.setdefault("run_diagnostics", False)
    engine = AQPEngine(EngineConfig(**config_kwargs), seed=42)
    engine.register_table("t", table)
    engine.create_sample("t", size=4000, name="s")
    return engine


MEDIAN_SQL = "SELECT MEDIAN(x) AS m FROM t"


def _key(result):
    value = result.single()
    return (value.estimate, value.interval.half_width)


# ---------------------------------------------------------------------------
# Trace core
# ---------------------------------------------------------------------------
class TestTrace:
    def test_span_nesting_and_close(self):
        trace = Trace("query")
        with trace.span("a"):
            with trace.span("b", tag=1):
                pass
        trace.close()
        assert trace.total_seconds > 0
        (a,) = trace.find("a")
        (b,) = trace.find("b")
        assert a.children == [b]
        assert b.tags == {"tag": 1}
        assert b.duration_seconds <= a.duration_seconds

    def test_exception_tags_and_unwinds(self):
        trace = Trace()
        with pytest.raises(ValueError):
            with trace.span("outer"):
                raise ValueError("boom")
        trace.close()
        (outer,) = trace.find("outer")
        assert outer.tags["error"] == "ValueError"
        assert outer.end is not None

    def test_span_cap_drops_and_counts(self):
        trace = Trace(max_spans=3)
        for _ in range(5):
            with trace.span("s"):
                pass
        trace.close()
        assert trace.num_spans == 3
        assert trace.dropped_spans == 3
        assert len(trace.find("s")) == 2

    def test_add_span_grafts_foreign_timeline(self):
        trace = Trace()
        span = trace.add_span("task", 1.0, 2.5, pid=999, index=3)
        trace.close()
        assert span.pid == 999
        assert span.duration_seconds == 1.5
        assert trace.find("task")[0].tags["index"] == 3

    def test_events_and_counters(self):
        trace = Trace()
        trace.add_event("retry", index=1)
        trace.counter("rows", 5)
        trace.counter("rows", 2)
        trace.close()
        assert trace.find("retry")[0].duration_seconds == 0.0
        assert trace.root.counters["rows"] == 7.0

    def test_to_dict_roundtrips_through_json(self):
        trace = Trace("query", sql="SELECT 1")
        with trace.span("stage"):
            pass
        trace.close()
        payload = json.loads(json.dumps(trace.to_dict()))
        assert payload["trace"]["name"] == "query"
        assert payload["trace"]["children"][0]["name"] == "stage"

    def test_ambient_helpers_no_op_without_trace(self):
        assert current_trace() is None
        with trace_span("nothing"):
            pass
        trace_event("nothing")  # must not raise

    def test_activate_and_suppress(self):
        trace = Trace()
        token = activate_trace(trace)
        try:
            assert current_trace() is trace
            with suppress_tracing():
                assert current_trace() is None
                with trace_span("hidden"):
                    pass
            assert current_trace() is trace
        finally:
            deactivate_trace(token)
        trace.close()
        assert trace.find("hidden") == []


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(4)
        gauge.add(-1.5)
        assert gauge.value == 2.5

    def test_histogram_buckets_cumulative(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["buckets"] == {"le_1": 1, "le_10": 2}
        assert snap["overflow"] == 1
        assert snap["min"] == 0.5 and snap["max"] == 50.0

    def test_registry_get_or_create_and_type_clash(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        with pytest.raises(TypeError, match="not a Gauge"):
            registry.gauge("a")

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.histogram("y").observe(0.02)
        json.dumps(registry.snapshot())
        registry.reset()
        assert registry.snapshot() == {}


# ---------------------------------------------------------------------------
# Export: durations, tree rendering, Chrome JSON
# ---------------------------------------------------------------------------
class TestExport:
    def test_format_duration_adaptive_precision(self):
        assert format_duration(0.00074) == "740 µs"
        assert format_duration(0.0093) == "9.30 ms"
        assert format_duration(0.4) == "400 ms"
        assert format_duration(1.237) == "1.24 s"
        assert format_duration(90.0) == "1.5 min"

    def test_render_tree_percentages_and_aggregation(self):
        trace = Trace("query")
        with trace.span("stage"):
            for index in range(10):
                trace.add_span("task", 0.0, 0.01, pid=100 + index % 2,
                               index=index, attempt=index % 3)
        trace.close()
        text = render_span_tree(trace)
        assert "query" in text and "stage" in text
        assert "task ×10" in text
        assert "2 worker(s)" in text
        assert "retried" in text
        assert "%" in text

    def test_chrome_events_structure(self):
        trace = Trace("query")
        with trace.span("stage"):
            trace.add_span("task", trace.root.start, trace.root.start + 0.01,
                           pid=4242)
        trace.add_event("marker")
        trace.close()
        events = chrome_trace_events(trace)
        complete = [e for e in events if e.get("ph") == "X"]
        instants = [e for e in events if e.get("ph") == "i"]
        metadata = [e for e in events if e.get("ph") == "M"]
        assert {e["name"] for e in complete} >= {"query", "stage", "task"}
        assert instants and instants[0]["name"] == "marker"
        labels = {e["args"]["name"] for e in metadata}
        assert "engine" in labels and "worker-4242" in labels
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0

    def test_write_chrome_trace_loads(self, tmp_path):
        trace = Trace("query")
        with trace.span("stage"):
            pass
        trace.close()
        path = write_chrome_trace(trace, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]
        assert payload["otherData"]["num_spans"] == trace.num_spans

    @staticmethod
    def _assert_chrome_schema(events):
        """Every exported event is a well-formed Chrome trace record."""
        assert events, "export produced no events"
        for event in events:
            assert event["ph"] in {"X", "i", "M"}
            assert isinstance(event["name"], str) and event["name"]
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["ts"] >= 0 and event["dur"] >= 0
            if event["ph"] != "M":
                assert isinstance(event.get("args", {}), dict)

    def test_chrome_export_of_grouped_query(self, tmp_path):
        rng = np.random.default_rng(13)
        n = 20_000
        engine = AQPEngine(
            EngineConfig(run_diagnostics=False, num_bootstrap_resamples=40),
            seed=9,
        )
        engine.register_table(
            "t",
            Table(
                {
                    "x": rng.normal(10.0, 3.0, n),
                    "g": rng.integers(0, 5, n).astype(np.int64),
                },
                name="t",
            ),
        )
        engine.create_sample("t", size=4000, name="s")
        result = engine.execute("SELECT MEDIAN(x) FROM t GROUP BY g")
        names = {span.name for span in result.trace.root.walk()}
        assert "bootstrap.grouped_replicates" in names
        path = write_chrome_trace(result.trace, tmp_path / "grouped.json")
        payload = json.loads(path.read_text())
        self._assert_chrome_schema(payload["traceEvents"])
        exported = {
            e["name"] for e in payload["traceEvents"] if e["ph"] == "X"
        }
        assert "bootstrap.grouped_replicates" in exported

    def test_chrome_export_of_catalog_routed_query(self, tmp_path):
        engine = _make_engine(num_workers=1)
        sql = "SELECT AVG(x) FROM t"
        engine.execute(sql)  # cold: populates the stored-answer layer
        served = engine.execute(sql)
        assert served.catalog_route == "exact"
        path = write_chrome_trace(served.trace, tmp_path / "routed.json")
        payload = json.loads(path.read_text())
        self._assert_chrome_schema(payload["traceEvents"])
        route_events = [
            e
            for e in payload["traceEvents"]
            if e["ph"] == "X" and e["name"] == "catalog.route"
        ]
        assert route_events
        assert route_events[0]["args"]["route"] == "exact"


# ---------------------------------------------------------------------------
# The determinism contract: tracing never perturbs answers
# ---------------------------------------------------------------------------
class TestTraceDeterminism:
    def test_bit_identical_serial(self):
        traced = _make_engine(num_workers=1, tracing=True)
        untraced = _make_engine(num_workers=1, tracing=False)
        assert _key(traced.execute(MEDIAN_SQL)) == _key(
            untraced.execute(MEDIAN_SQL)
        )

    def test_bit_identical_four_workers(self, eight_cpus):
        results = {}
        for label, kwargs in {
            "serial_untraced": dict(num_workers=1, tracing=False),
            "par4_traced": dict(num_workers=4, tracing=True),
            "par4_untraced": dict(num_workers=4, tracing=False),
        }.items():
            with _make_engine(**kwargs) as engine:
                results[label] = _key(engine.execute(MEDIAN_SQL))
        assert len(set(results.values())) == 1

    def test_bit_identical_under_injected_fault_retry(self, eight_cpus):
        clean = _make_engine(num_workers=1, tracing=False)
        expected = _key(clean.execute(MEDIAN_SQL))
        plan = FaultPlan(seed=7).with_crash(task=2)
        with _make_engine(
            num_workers=4, tracing=True, fault_plan=plan
        ) as engine:
            result = engine.execute(MEDIAN_SQL)
        assert _key(result) == expected
        report = result.execution_report
        assert report.task_retries >= 1 and report.recovered
        # The retry is visible in the trace: a lost-task event fired and
        # a later attempt of the same unit completed.
        lost = result.trace.find("task_lost")
        assert lost and lost[0].tags["index"] == 2
        retried_ok = [
            span
            for span in result.trace.find("task")
            if span.tags.get("attempt", 0) > 0
            and span.tags.get("outcome") == "ok"
        ]
        assert retried_ok

    def test_trace_attached_only_when_enabled(self):
        with _make_engine(num_workers=1, tracing=False) as engine:
            assert engine.execute(MEDIAN_SQL).trace is None
        with _make_engine(num_workers=1, tracing=True) as engine:
            trace = engine.execute(MEDIAN_SQL).trace
        assert trace is not None and trace.total_seconds > 0


# ---------------------------------------------------------------------------
# Pipeline coverage: every stage appears in the span tree
# ---------------------------------------------------------------------------
class TestPipelineTraceCoverage:
    def test_conviva_query_covers_all_stages(self):
        rng = np.random.default_rng(7)
        engine = AQPEngine(EngineConfig(), seed=42)
        engine.register_table(
            "media_sessions", conviva_sessions_table(20_000, rng)
        )
        engine.create_sample("media_sessions", size=4000, name="s")
        register_workload_functions(engine)
        sql = conviva_workload(1, np.random.default_rng(3))[0].sql()
        result = engine.execute(sql)
        names = result.trace.span_names()
        assert {
            "query",
            "select_sample",
            "execute_on_sample",
            "prepare_sample",
            "estimate",
            "diagnostic",
            "diagnostic.size",
            "diagnostic.evaluations",
            "task",
        } <= names

    def test_worker_timelines_merged_across_processes(self, eight_cpus):
        with _make_engine(num_workers=4, tracing=True) as engine:
            trace = engine.execute(MEDIAN_SQL).trace
        tasks = [span for span in trace.find("task") if span.pid is not None]
        assert len({span.pid for span in tasks}) >= 2
        for span in tasks:
            assert span.tags["queue_wait_s"] >= 0.0
            assert span.pid != trace.root.pid

    def test_plan_cache_events_and_metrics(self):
        METRICS.reset()
        with _make_engine(num_workers=1) as engine:
            engine.execute(MEDIAN_SQL)
            second = engine.execute(MEDIAN_SQL)
        assert second.trace.find("plan_cache.hit")
        assert not second.trace.find("analyze")
        snap = METRICS.snapshot()
        assert snap["plan_cache.hit"]["value"] == 1
        assert snap["plan_cache.miss"]["value"] == 1
        assert snap["bootstrap.replicates"]["value"] > 0
        assert snap["query.seconds"]["count"] == 2

    def test_fallback_recorded_in_trace(self):
        engine = _make_engine(num_workers=1)
        result = engine.execute(MEDIAN_SQL, error_bound=1e-9)
        assert result.single().fell_back
        events = result.trace.find("fallback")
        assert events and "exceeds bound" in events[0].tags["reason"]
        assert result.trace.find("exact_execution")

    def test_diagnostic_verdict_metrics(self):
        METRICS.reset()
        engine = _make_engine(num_workers=1, run_diagnostics=True)
        engine.execute("SELECT AVG(x) AS a FROM t")
        snap = METRICS.snapshot()
        verdicts = sum(
            entry["value"]
            for name, entry in snap.items()
            if name.startswith("diagnostic.verdicts.")
        )
        assert verdicts >= 1

    def test_span_flood_is_bounded_by_suppression(self):
        engine = _make_engine(num_workers=1, run_diagnostics=True)
        trace = engine.execute(MEDIAN_SQL).trace
        # Unit kernels run with tracing suppressed, so nested
        # executor/estimator calls do not flood the tree.
        assert trace.num_spans < 2000
        assert trace.dropped_spans == 0


# ---------------------------------------------------------------------------
# Logging satellite
# ---------------------------------------------------------------------------
class TestLogging:
    def test_configure_logging_levels_and_idempotence(self):
        logger = configure_logging("DEBUG")
        assert logger.level == logging.DEBUG
        handlers_before = len(logger.handlers)
        logger = configure_logging("ERROR")
        assert logger.level == logging.ERROR
        assert len(logger.handlers) == handlers_before

    def test_env_variable_respected(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "info")
        assert configure_logging().level == logging.INFO
        monkeypatch.delenv(LOG_LEVEL_ENV)
        assert configure_logging().level == logging.WARNING

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("LOUD")

    def test_injected_fault_logs_warning(self, caplog):
        plan = FaultPlan(seed=3).with_hang(task=1, seconds=0.0)
        with caplog.at_level(logging.WARNING, logger="repro"):
            plan.apply(1, 0)
        assert any("injected hang" in rec.message for rec in caplog.records)

    def test_permanent_task_failure_logs_error(self, caplog):
        engine = _make_engine(
            num_workers=1,
            fault_plan=FaultPlan(seed=5).with_crash(task=0, attempt=None),
            max_task_retries=1,
        )
        with caplog.at_level(logging.WARNING, logger="repro"):
            with pytest.warns(Warning):
                engine.execute(MEDIAN_SQL)
        assert any(
            rec.levelno == logging.ERROR
            and "permanently failed" in rec.message
            for rec in caplog.records
        )


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------
@pytest.fixture
def cli_csv(tmp_path):
    rng = np.random.default_rng(5)
    rows = "\n".join(f"{value:.4f}" for value in rng.normal(10, 2, 400))
    path = tmp_path / "sessions.csv"
    path.write_text("time\n" + rows + "\n")
    return path


def _cli_args(cli_csv, *extra):
    return build_parser().parse_args(
        ["--table", str(cli_csv), "--seed", "3", *extra]
    )


class TestCliObservability:
    def test_strip_explain_analyze(self):
        sql, explain = strip_explain_analyze(
            "  explain ANALYZE SELECT AVG(x) FROM t"
        )
        assert explain and sql == "SELECT AVG(x) FROM t"
        sql, explain = strip_explain_analyze("SELECT AVG(x) FROM t")
        assert not explain and sql == "SELECT AVG(x) FROM t"
        # EXPLAIN ANALYZER is not the prefix.
        _, explain = strip_explain_analyze("EXPLAIN ANALYZER x")
        assert not explain

    def test_explain_analyze_renders_span_tree(self, cli_csv):
        from repro.cli import make_engine

        args = _cli_args(cli_csv)
        engine = make_engine(args)
        out = run_query(
            engine, "EXPLAIN ANALYZE SELECT AVG(time) FROM sessions", args
        )
        assert "query" in out and "estimate" in out
        assert "% " in out or "%" in out
        assert "total" in out

    def test_trace_out_writes_chrome_json(self, cli_csv, tmp_path):
        from repro.cli import make_engine

        trace_path = tmp_path / "trace.json"
        args = _cli_args(cli_csv, "--trace-out", str(trace_path))
        engine = make_engine(args)
        run_query(engine, "SELECT AVG(time) FROM sessions", args)
        payload = json.loads(trace_path.read_text())
        assert isinstance(payload["traceEvents"], list)
        assert payload["traceEvents"]

    def test_no_tracing_flag(self, cli_csv):
        from repro.cli import make_engine

        args = _cli_args(cli_csv, "--no-tracing")
        engine = make_engine(args)
        out = run_query(
            engine, "EXPLAIN ANALYZE SELECT AVG(time) FROM sessions", args
        )
        assert "tracing is disabled" in out

    def test_format_result_sub_ms_not_zero(self, cli_csv):
        from repro.cli import make_engine
        from repro.core.pipeline import AQPResult

        args = _cli_args(cli_csv)
        engine = make_engine(args)
        result = engine.execute("SELECT AVG(time) FROM sessions")
        fast = AQPResult(
            sql=result.sql,
            rows=result.rows,
            sample=result.sample,
            elapsed_seconds=4.2e-4,
            execution_report=result.execution_report,
        )
        text = format_result(fast)
        assert "0 ms" not in text
        assert "µs" in text

    def test_format_stats_is_json(self):
        METRICS.reset()
        METRICS.counter("queries").inc()
        payload = json.loads(format_stats())
        assert payload["queries"]["value"] == 1

    def test_repl_stats_and_ctrl_c(self, cli_csv, monkeypatch, capsys):
        from repro.cli import make_engine

        args = _cli_args(cli_csv)
        engine = make_engine(args)
        inputs = iter(
            [KeyboardInterrupt, "\\stats", "SELECT AVG(time) FROM sessions", ""]
        )

        def fake_input(prompt):
            value = next(inputs)
            if value is KeyboardInterrupt:
                raise KeyboardInterrupt
            return value

        monkeypatch.setattr("builtins.input", fake_input)
        assert repl(engine, args) == 0
        out = capsys.readouterr().out
        assert '"queries"' in out  # \stats JSON
        assert "± " in out  # the query after Ctrl-C still ran

    def test_repl_query_interrupt_does_not_kill_shell(
        self, cli_csv, monkeypatch, capsys
    ):
        from repro.cli import make_engine

        args = _cli_args(cli_csv)
        engine = make_engine(args)
        inputs = iter(["SELECT AVG(time) FROM sessions", ""])
        monkeypatch.setattr("builtins.input", lambda prompt: next(inputs))

        def interrupted(*a, **k):
            raise KeyboardInterrupt

        monkeypatch.setattr(engine, "execute", interrupted)
        assert repl(engine, args) == 0
        assert "query interrupted" in capsys.readouterr().err
