"""Cross-module integration tests: workloads → engine → ground truth."""

import numpy as np
import pytest

from repro.core.pipeline import AQPEngine
from repro.errors import (
    AnalysisError,
    CatalogError,
    DiagnosticError,
    EstimationError,
    ExecutionError,
    ParseError,
    PlanError,
    ReproError,
    SamplingError,
    SchemaError,
    SimulationError,
    SqlError,
    TokenizeError,
)
from repro.workloads import conviva_sessions_table, conviva_workload
from repro.workloads.queries import register_workload_functions


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            SqlError,
            TokenizeError,
            ParseError,
            AnalysisError,
            SchemaError,
            ExecutionError,
            PlanError,
            EstimationError,
            DiagnosticError,
            SamplingError,
            CatalogError,
            SimulationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_sql_errors_grouped(self):
        assert issubclass(TokenizeError, SqlError)
        assert issubclass(ParseError, SqlError)
        assert issubclass(AnalysisError, SqlError)

    def test_positions_carried(self):
        assert TokenizeError("x", position=5).position == 5
        assert ParseError("x", position=9).position == 9


@pytest.fixture(scope="module")
def workload_engine():
    """An engine over Conviva-like data plus the generated workload."""
    rng = np.random.default_rng(77)
    table = conviva_sessions_table(150_000, rng)
    engine = AQPEngine(seed=5)
    engine.register_table("media_sessions", table)
    register_workload_functions(engine)
    engine.create_sample("media_sessions", size=40_000, name="wl")
    queries = conviva_workload(30, np.random.default_rng(21))
    return engine, table, queries


class TestWorkloadThroughEngine:
    """Generated queries run end-to-end and agree with array-form truth."""

    def test_estimates_near_truth(self, workload_engine):
        engine, table, queries = workload_engine
        checked = 0
        for query in queries:
            if query.aggregate_name in (
                "MIN",
                "MAX",
                "COUNT_DISTINCT",
                "VARIANCE",
                "STDEV",
            ):
                # Extreme/second-moment statistics on heavy tails carry
                # legitimately large sampling error at this sample size.
                continue
            truth = query.dataset_query(table).true_answer()
            if not np.isfinite(truth) or truth == 0:
                continue
            result = engine.execute(query.sql(), run_diagnostics=False)
            estimate = result.single().estimate
            assert estimate == pytest.approx(truth, rel=0.25), query.sql()
            checked += 1
        assert checked >= 10

    def test_method_selection_matches_analysis(self, workload_engine):
        engine, __, queries = workload_engine
        for query in queries[:15]:
            result = engine.execute(query.sql(), run_diagnostics=False)
            method = result.single().method
            if query.closed_form_applicable:
                assert method == "closed_form", query.sql()
            else:
                assert method == "bootstrap", query.sql()

    def test_intervals_cover_truth_mostly(self, workload_engine):
        """95% intervals should cover the true answer for most benign
        queries (a loose end-to-end coverage sanity check)."""
        engine, table, queries = workload_engine
        covered = 0
        total = 0
        for query in queries:
            if query.outlier_sensitive or query.aggregate_name in (
                "MIN",
                "MAX",
                "COUNT_DISTINCT",
            ):
                continue
            truth = query.dataset_query(table).true_answer()
            if not np.isfinite(truth):
                continue
            result = engine.execute(query.sql(), run_diagnostics=False)
            value = result.single()
            if value.interval is None:
                continue
            total += 1
            covered += value.interval.contains(truth)
        assert total >= 8
        assert covered / total >= 0.7

    def test_diagnosed_run_never_returns_untrusted_bootstrap_minmax(
        self, workload_engine
    ):
        """With diagnostics on, MIN/MAX answers come back exact."""
        engine, table, queries = workload_engine
        minmax = [
            q for q in queries if q.aggregate_name in ("MIN", "MAX")
        ][:3]
        for query in minmax:
            result = engine.execute(query.sql())
            value = result.single()
            if value.fell_back:
                truth = query.dataset_query(table).true_answer()
                assert value.estimate == pytest.approx(truth)
