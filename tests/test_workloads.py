"""Unit tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.core.pipeline import AQPEngine
from repro.errors import AnalysisError, SamplingError
from repro.workloads import (
    CONVIVA_MIX,
    FACEBOOK_MIX,
    WorkloadQuery,
    conviva_sessions_table,
    conviva_workload,
    facebook_events_table,
    facebook_workload,
    qset1_queries,
    qset1_specs,
    qset2_queries,
    qset2_specs,
)
from repro.workloads.queries import register_workload_functions


class TestDataGenerators:
    def test_facebook_table_shape(self, rng):
        table = facebook_events_table(5000, rng)
        assert table.num_rows == 5000
        assert {"duration", "bytes", "country", "platform"} <= set(
            table.column_names
        )

    def test_facebook_heavy_tails(self, rng):
        table = facebook_events_table(50_000, rng)
        data = table.column("bytes")
        # Pareto tail: max dwarfs the median.
        assert data.max() > 50 * np.median(data)

    def test_facebook_revenue_zero_inflated(self, rng):
        table = facebook_events_table(20_000, rng)
        zero_fraction = (table.column("revenue") == 0).mean()
        assert 0.8 < zero_fraction < 0.9

    def test_conviva_table_shape(self, rng):
        table = conviva_sessions_table(5000, rng)
        assert table.num_rows == 5000
        assert {"session_time", "buffering_ratio", "bitrate", "city"} <= set(
            table.column_names
        )

    def test_conviva_buffering_ratio_bounded(self, rng):
        table = conviva_sessions_table(20_000, rng)
        ratios = table.column("buffering_ratio")
        assert ratios.min() >= 0.0
        assert ratios.max() <= 1.0

    def test_zipf_popularity(self, rng):
        table = facebook_events_table(50_000, rng)
        __, counts = np.unique(table.column("country"), return_counts=True)
        counts = np.sort(counts)[::-1]
        assert counts[0] > 3 * counts[len(counts) // 2]

    def test_invalid_sizes(self, rng):
        with pytest.raises(SamplingError):
            facebook_events_table(0, rng)
        with pytest.raises(SamplingError):
            conviva_sessions_table(-5, rng)


class TestMixes:
    def test_mixes_sum_to_one(self):
        assert sum(FACEBOOK_MIX.values()) == pytest.approx(1.0, abs=0.001)
        assert sum(CONVIVA_MIX.values()) == pytest.approx(1.0, abs=0.001)

    def test_facebook_popular_aggregates_match_paper(self, rng):
        queries = facebook_workload(8000, rng)
        shares = {
            name: sum(q.aggregate_name == name for q in queries) / len(queries)
            for name in ("MIN", "COUNT", "AVG", "SUM", "MAX")
        }
        assert shares["MIN"] == pytest.approx(0.3335, abs=0.03)
        assert shares["COUNT"] == pytest.approx(0.2467, abs=0.03)
        assert shares["AVG"] == pytest.approx(0.1220, abs=0.02)

    def test_facebook_udf_rate(self, rng):
        queries = facebook_workload(8000, rng)
        udf_rate = sum(q.has_udf for q in queries) / len(queries)
        assert udf_rate == pytest.approx(0.1101, abs=0.02)

    def test_facebook_closed_form_share(self, rng):
        """§1: closed forms apply to ≈56.78% of Facebook queries."""
        queries = facebook_workload(8000, rng)
        share = sum(q.closed_form_applicable for q in queries) / len(queries)
        assert share == pytest.approx(0.5678, abs=0.03)

    def test_conviva_udf_rate(self, rng):
        """§3: 42.07% of Conviva queries contain a UDF."""
        queries = conviva_workload(8000, rng)
        udf_rate = sum(q.has_udf for q in queries) / len(queries)
        assert udf_rate == pytest.approx(0.4207, abs=0.03)

    def test_conviva_bootstrap_only_share(self, rng):
        """§3: 62.79% of Conviva queries are bootstrap-only."""
        queries = conviva_workload(8000, rng)
        share = sum(not q.closed_form_applicable for q in queries) / len(queries)
        assert share == pytest.approx(0.6279, abs=0.03)

    def test_conviva_top_aggregates_combined_share(self, rng):
        queries = conviva_workload(8000, rng)
        top = sum(
            q.aggregate_name in ("AVG", "COUNT", "PERCENTILE", "MAX")
            for q in queries
        ) / len(queries)
        assert top == pytest.approx(0.323, abs=0.03)

    def test_count_queries_always_filtered(self, rng):
        queries = facebook_workload(2000, rng)
        counts = [q for q in queries if q.aggregate_name == "COUNT"]
        assert counts
        assert all(q.filter_column is not None for q in counts)

    def test_invalid_query_count(self, rng):
        with pytest.raises(SamplingError):
            facebook_workload(0, rng)
        with pytest.raises(SamplingError):
            conviva_workload(-1, rng)


class TestWorkloadQuery:
    def test_sql_rendering_plain(self):
        query = WorkloadQuery(
            name="q", table_name="t", aggregate_name="AVG", column="x"
        )
        assert query.sql() == "SELECT AVG(x) AS v FROM t"

    def test_sql_rendering_full(self):
        query = WorkloadQuery(
            name="q",
            table_name="t",
            aggregate_name="PERCENTILE",
            column="x",
            percentile=0.99,
            transform="log1p_scale",
            filter_column="city",
            filter_op="=",
            filter_value="NYC",
        )
        assert query.sql() == (
            "SELECT PERCENTILE(log1p_scale(x), 0.99) AS v FROM t "
            "WHERE city = 'NYC'"
        )

    def test_sql_count_star(self):
        query = WorkloadQuery(
            name="q",
            table_name="t",
            aggregate_name="COUNT",
            column="x",
            filter_column="a",
            filter_op=">",
            filter_value=1.5,
        )
        assert query.sql() == "SELECT COUNT(*) AS v FROM t WHERE a > 1.5"

    def test_sql_count_distinct(self):
        query = WorkloadQuery(
            name="q", table_name="t", aggregate_name="COUNT_DISTINCT", column="u"
        )
        assert "COUNT(DISTINCT u)" in query.sql()

    def test_udaf_properties(self):
        query = WorkloadQuery(
            name="q",
            table_name="t",
            aggregate_name="UDAF:trimmed_mean",
            column="x",
        )
        assert query.is_udaf
        assert query.has_udf
        assert not query.closed_form_applicable
        assert "TRIMMED_MEAN" == query.make_aggregate().name

    def test_dataset_query_round_trip(self, rng):
        table = facebook_events_table(5000, rng)
        query = WorkloadQuery(
            name="q",
            table_name="events",
            aggregate_name="AVG",
            column="duration",
            filter_column="age",
            filter_op="<",
            filter_value=30,
        )
        dataset_query = query.dataset_query(table)
        mask = table.column("age") < 30
        assert dataset_query.true_answer() == pytest.approx(
            table.column("duration")[mask].mean()
        )

    def test_transform_applied_in_dataset_query(self, rng):
        table = facebook_events_table(2000, rng)
        query = WorkloadQuery(
            name="q",
            table_name="events",
            aggregate_name="AVG",
            column="duration",
            transform="log1p_scale",
        )
        expected = (np.log1p(np.abs(table.column("duration"))) * 10).mean()
        assert query.dataset_query(table).true_answer() == pytest.approx(expected)

    def test_unknown_transform_rejected(self, rng):
        table = facebook_events_table(100, rng)
        query = WorkloadQuery(
            name="q",
            table_name="events",
            aggregate_name="AVG",
            column="duration",
            transform="nope",
        )
        with pytest.raises(AnalysisError, match="unknown transform"):
            query.dataset_query(table)

    def test_sql_and_array_forms_agree(self, rng):
        """The SQL the engine runs equals the array form on the same data."""
        table = conviva_sessions_table(30_000, rng)
        engine = AQPEngine(seed=0)
        engine.register_table("media_sessions", table)
        register_workload_functions(engine)
        for query in conviva_workload(12, np.random.default_rng(3)):
            exact = engine.execute_exact(query.sql())
            array_answer = query.dataset_query(table).true_answer()
            sql_answer = float(exact.column("v")[0])
            if np.isnan(array_answer):
                assert np.isnan(sql_answer)
            else:
                assert sql_answer == pytest.approx(array_answer, rel=1e-9)


class TestQSets:
    def test_qset1_all_closed_form(self, rng):
        queries = qset1_queries(30, rng)
        assert len(queries) == 30
        assert all(q.closed_form_applicable for q in queries)

    def test_qset2_none_closed_form(self, rng):
        queries = qset2_queries(30, rng)
        assert len(queries) == 30
        assert not any(q.closed_form_applicable for q in queries)

    def test_specs_shapes(self, rng):
        specs = qset1_specs(20, rng)
        assert len(specs) == 20
        assert all(s.closed_form for s in specs)
        assert all(2 * 2**30 <= s.sample_bytes <= 20 * 2**30 for s in specs)

    def test_qset2_specs_bootstrap(self, rng):
        specs = qset2_specs(20, rng)
        assert not any(s.closed_form for s in specs)

    def test_selectivity_varies(self, rng):
        specs = qset2_specs(50, rng)
        selectivities = [s.selectivity for s in specs]
        assert min(selectivities) < 0.1
        assert max(selectivities) > 0.3
