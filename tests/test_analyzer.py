"""Unit tests for semantic analysis."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.sql.analyzer import analyze, is_closed_form_applicable
from repro.sql.functions import default_function_registry
from repro.sql.parser import parse_select

SCHEMA = {"time", "city", "bytes", "user_id"}


def analyzed(text, registry=None):
    return analyze(parse_select(text), SCHEMA, registry)


class TestAggregateExtraction:
    def test_single_aggregate(self):
        query = analyzed("SELECT AVG(time) FROM sessions")
        assert len(query.aggregates) == 1
        assert query.aggregates[0].function.name == "AVG"

    def test_count_star_has_no_argument(self):
        query = analyzed("SELECT COUNT(*) FROM sessions")
        assert query.aggregates[0].argument is None

    def test_multiple_aggregates(self):
        query = analyzed("SELECT AVG(time), SUM(bytes), COUNT(*) FROM sessions")
        assert [a.function.name for a in query.aggregates] == [
            "AVG",
            "SUM",
            "COUNT",
        ]

    def test_output_names_from_aliases(self):
        query = analyzed("SELECT AVG(time) AS avg_time FROM sessions")
        assert query.aggregates[0].output_name == "avg_time"

    def test_default_output_names(self):
        query = analyzed("SELECT AVG(time), SUM(bytes) FROM sessions")
        assert query.aggregates[0].output_name == "_col0"
        assert query.aggregates[1].output_name == "_col1"

    def test_percentile_fraction_extracted(self):
        query = analyzed("SELECT PERCENTILE(time, 0.99) FROM sessions")
        assert query.aggregates[0].function.fraction == 0.99

    def test_percentile_requires_literal_fraction(self):
        with pytest.raises(AnalysisError, match="PERCENTILE"):
            analyzed("SELECT PERCENTILE(time, bytes) FROM sessions")

    def test_count_distinct_becomes_count_distinct_aggregate(self):
        query = analyzed("SELECT COUNT(DISTINCT user_id) FROM sessions")
        assert query.aggregates[0].function.name == "COUNT_DISTINCT"

    def test_aggregate_over_expression(self):
        query = analyzed("SELECT AVG(bytes / time) FROM sessions")
        assert query.aggregates[0].argument is not None

    def test_nested_aggregate_rejected(self):
        with pytest.raises(AnalysisError, match="nested aggregate"):
            analyzed("SELECT AVG(SUM(time)) FROM sessions")

    def test_extensive_flags(self):
        query = analyzed("SELECT COUNT(*), SUM(bytes), AVG(time) FROM sessions")
        assert [a.extensive for a in query.aggregates] == [True, True, False]


class TestClosedFormApplicability:
    """The paper's §2.3.2 rule for when CLT closed forms apply."""

    @pytest.mark.parametrize(
        "text",
        [
            "SELECT AVG(time) FROM sessions",
            "SELECT SUM(bytes) FROM sessions WHERE city = 'NYC'",
            "SELECT COUNT(*) FROM sessions",
            "SELECT VARIANCE(time) FROM sessions",
            "SELECT STDEV(time) FROM sessions GROUP BY city",
            "SELECT AVG(time), SUM(bytes) FROM sessions",
        ],
    )
    def test_applicable(self, text):
        assert analyzed(text).closed_form_applicable

    @pytest.mark.parametrize(
        "text",
        [
            "SELECT MIN(time) FROM sessions",
            "SELECT MAX(time) FROM sessions",
            "SELECT PERCENTILE(time, 0.5) FROM sessions",
            "SELECT COUNT(DISTINCT user_id) FROM sessions",
            "SELECT AVG(time), MAX(bytes) FROM sessions",  # one bad apple
            "SELECT city FROM sessions GROUP BY city",  # no aggregates
        ],
    )
    def test_not_applicable(self, text):
        assert not analyzed(text).closed_form_applicable

    def test_nested_query_not_applicable(self):
        query = analyze(
            parse_select(
                "SELECT AVG(v) FROM (SELECT time AS v FROM sessions) AS q"
            ),
            SCHEMA,
        )
        assert query.nested
        assert not query.closed_form_applicable

    def test_udf_in_aggregate_blocks_closed_form(self):
        registry = default_function_registry()
        registry.register_udf("sessionize", lambda v: v * 2.0)
        query = analyzed("SELECT AVG(sessionize(time)) FROM sessions", registry)
        assert query.contains_udf
        assert not query.closed_form_applicable

    def test_udaf_blocks_closed_form(self):
        registry = default_function_registry()
        registry.register_udaf("trimmed_mean", lambda v: float(np.mean(v)))
        query = analyzed("SELECT trimmed_mean(time) FROM sessions", registry)
        assert query.contains_udaf
        assert not query.closed_form_applicable

    def test_convenience_wrapper(self):
        assert is_closed_form_applicable(
            parse_select("SELECT AVG(time) FROM sessions"), SCHEMA
        )


class TestOutlierSensitivity:
    def test_min_max_sensitive(self):
        assert analyzed("SELECT MIN(time) FROM sessions").outlier_sensitive
        assert analyzed("SELECT MAX(time) FROM sessions").outlier_sensitive

    def test_avg_not_sensitive(self):
        assert not analyzed("SELECT AVG(time) FROM sessions").outlier_sensitive

    def test_extreme_percentile_sensitive(self):
        assert analyzed(
            "SELECT PERCENTILE(time, 0.999) FROM sessions"
        ).outlier_sensitive

    def test_median_not_sensitive(self):
        assert not analyzed(
            "SELECT PERCENTILE(time, 0.5) FROM sessions"
        ).outlier_sensitive


class TestValidation:
    def test_unknown_column_in_where(self):
        with pytest.raises(AnalysisError, match="unknown column"):
            analyzed("SELECT AVG(time) FROM sessions WHERE nope = 1")

    def test_unknown_column_in_aggregate(self):
        with pytest.raises(AnalysisError, match="unknown column"):
            analyzed("SELECT AVG(nope) FROM sessions")

    def test_unknown_function(self):
        with pytest.raises(AnalysisError, match="unknown function"):
            analyzed("SELECT AVG(frobnicate(time)) FROM sessions")

    def test_aggregate_in_where_rejected(self):
        with pytest.raises(AnalysisError, match="WHERE"):
            analyzed("SELECT AVG(time) FROM sessions WHERE AVG(time) > 1")

    def test_aggregate_in_group_by_rejected(self):
        with pytest.raises(AnalysisError, match="GROUP BY"):
            analyzed("SELECT AVG(time) FROM sessions GROUP BY SUM(bytes)")

    def test_having_without_group_by_rejected(self):
        with pytest.raises(AnalysisError, match="HAVING requires"):
            analyzed("SELECT AVG(time) FROM sessions HAVING AVG(time) > 1")

    def test_non_grouped_item_rejected(self):
        with pytest.raises(AnalysisError, match="GROUP BY"):
            analyzed("SELECT city, AVG(time) FROM sessions")

    def test_grouped_item_accepted(self):
        query = analyzed("SELECT city, AVG(time) FROM sessions GROUP BY city")
        assert query.group_by_names == ("city",)

    def test_star_with_aggregate_rejected(self):
        with pytest.raises(AnalysisError, match=r"SELECT \*"):
            analyzed("SELECT *, AVG(time) FROM sessions")

    def test_aggregate_inside_expression_rejected(self):
        with pytest.raises(AnalysisError, match="top level"):
            analyzed("SELECT AVG(time) + 1 FROM sessions")


class TestReferencedColumns:
    def test_collects_from_all_clauses(self):
        query = analyzed(
            "SELECT city, AVG(time) FROM sessions "
            "WHERE bytes > 10 GROUP BY city"
        )
        assert query.referenced_columns == {"city", "time", "bytes"}

    def test_sample_rate_from_tablesample(self):
        query = analyzed(
            "SELECT AVG(time) FROM sessions TABLESAMPLE POISSONIZED (100)"
        )
        assert query.sample_rate == 100.0


class TestNestedQueries:
    def test_inner_analysis_attached(self):
        query = analyze(
            parse_select(
                "SELECT MAX(v) FROM "
                "(SELECT time AS v FROM sessions WHERE city = 'NYC') AS q"
            ),
            SCHEMA,
        )
        assert query.inner is not None
        assert query.inner.where is not None
        assert query.source_table == "sessions"

    def test_outer_sees_inner_output_columns(self):
        query = analyze(
            parse_select(
                "SELECT AVG(v) FROM (SELECT time AS v FROM sessions) AS q"
            ),
            SCHEMA,
        )
        assert query.aggregates[0].function.name == "AVG"

    def test_outer_referencing_missing_inner_column_rejected(self):
        with pytest.raises(AnalysisError, match="unknown column"):
            analyze(
                parse_select(
                    "SELECT AVG(missing) FROM (SELECT time AS v FROM sessions) AS q"
                ),
                SCHEMA,
            )
