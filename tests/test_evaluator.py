"""Unit tests for vectorised expression evaluation."""

import numpy as np
import pytest

from repro.engine import Table
from repro.engine.evaluator import evaluate, evaluate_predicate
from repro.errors import ExecutionError
from repro.sql.functions import default_function_registry
from repro.sql.parser import parse_expression


def eval_on(text, table, registry=None):
    return evaluate(parse_expression(text), table, registry)


class TestLeaves:
    def test_column_reference(self, tiny_table):
        np.testing.assert_array_equal(
            eval_on("x", tiny_table), tiny_table.column("x")
        )

    def test_numeric_literal_broadcast(self, tiny_table):
        result = eval_on("42", tiny_table)
        assert len(result) == 6
        assert (result == 42).all()

    def test_string_literal_broadcast(self, tiny_table):
        result = eval_on("'a'", tiny_table)
        assert (result == "a").all()

    def test_null_literal_is_nan(self, tiny_table):
        assert np.isnan(eval_on("NULL", tiny_table)).all()


class TestArithmetic:
    def test_addition(self, tiny_table):
        np.testing.assert_allclose(
            eval_on("x + y", tiny_table),
            tiny_table.column("x") + tiny_table.column("y"),
        )

    def test_mixed_expression(self, tiny_table):
        np.testing.assert_allclose(
            eval_on("2 * x - y / 10", tiny_table),
            2 * tiny_table.column("x") - tiny_table.column("y") / 10,
        )

    def test_division_by_zero_is_inf(self, tiny_table):
        result = eval_on("x / 0", tiny_table)
        assert np.isinf(result).all()

    def test_modulo(self, tiny_table):
        np.testing.assert_allclose(
            eval_on("x % 2", tiny_table), tiny_table.column("x") % 2
        )

    def test_unary_minus(self, tiny_table):
        np.testing.assert_allclose(
            eval_on("-x", tiny_table), -tiny_table.column("x")
        )


class TestPredicates:
    def test_comparison(self, tiny_table):
        mask = evaluate_predicate(parse_expression("x > 3"), tiny_table)
        assert mask.sum() == 3

    def test_equality_on_strings(self, tiny_table):
        mask = evaluate_predicate(parse_expression("g = 'a'"), tiny_table)
        assert mask.sum() == 2

    def test_and_or_not(self, tiny_table):
        mask = evaluate_predicate(
            parse_expression("x > 1 AND x < 5 OR NOT g = 'a'"), tiny_table
        )
        expected = ((tiny_table.column("x") > 1) & (tiny_table.column("x") < 5)) | (
            tiny_table.column("g") != "a"
        )
        np.testing.assert_array_equal(mask, expected)

    def test_in_list(self, tiny_table):
        mask = evaluate_predicate(
            parse_expression("g IN ('a', 'c')"), tiny_table
        )
        assert mask.sum() == 4

    def test_not_in_list(self, tiny_table):
        mask = evaluate_predicate(
            parse_expression("g NOT IN ('a', 'c')"), tiny_table
        )
        assert mask.sum() == 2

    def test_in_list_requires_literals(self, tiny_table):
        with pytest.raises(ExecutionError, match="literals"):
            evaluate(parse_expression("x IN (y)"), tiny_table)

    def test_between(self, tiny_table):
        mask = evaluate_predicate(
            parse_expression("x BETWEEN 2 AND 4"), tiny_table
        )
        assert mask.sum() == 3

    def test_not_between(self, tiny_table):
        mask = evaluate_predicate(
            parse_expression("x NOT BETWEEN 2 AND 4"), tiny_table
        )
        assert mask.sum() == 3

    def test_is_null_on_floats(self):
        table = Table({"v": np.array([1.0, np.nan, 3.0])})
        mask = evaluate_predicate(parse_expression("v IS NULL"), table)
        np.testing.assert_array_equal(mask, [False, True, False])

    def test_is_not_null(self):
        table = Table({"v": np.array([1.0, np.nan, 3.0])})
        mask = evaluate_predicate(parse_expression("v IS NOT NULL"), table)
        assert mask.sum() == 2

    def test_is_null_on_strings_always_false(self, tiny_table):
        mask = evaluate_predicate(parse_expression("g IS NULL"), tiny_table)
        assert not mask.any()

    def test_like_prefix(self):
        table = Table({"s": np.array(["apple", "apricot", "banana"])})
        mask = evaluate_predicate(parse_expression("s LIKE 'ap%'"), table)
        np.testing.assert_array_equal(mask, [True, True, False])

    def test_like_single_char_wildcard(self):
        table = Table({"s": np.array(["cat", "cut", "coat"])})
        mask = evaluate_predicate(parse_expression("s LIKE 'c_t'"), table)
        np.testing.assert_array_equal(mask, [True, True, False])

    def test_like_escapes_regex_chars(self):
        table = Table({"s": np.array(["a.b", "axb"])})
        mask = evaluate_predicate(parse_expression("s LIKE 'a.b'"), table)
        np.testing.assert_array_equal(mask, [True, False])


class TestCaseWhen:
    def test_first_matching_branch_wins(self, tiny_table):
        result = eval_on(
            "CASE WHEN x < 3 THEN 1 WHEN x < 5 THEN 2 ELSE 3 END", tiny_table
        )
        np.testing.assert_array_equal(result, [1, 1, 2, 2, 3, 3])

    def test_missing_else_gives_nan(self, tiny_table):
        result = eval_on("CASE WHEN x < 3 THEN 1 END", tiny_table)
        assert np.isnan(result[-1])
        assert result[0] == 1


class TestScalarFunctions:
    def test_abs_and_sqrt(self, tiny_table):
        np.testing.assert_allclose(
            eval_on("SQRT(ABS(-x))", tiny_table),
            np.sqrt(tiny_table.column("x")),
        )

    def test_log_of_nonpositive_is_not_an_error(self):
        table = Table({"v": np.array([-1.0, 0.0, 1.0])})
        result = eval_on("LOG(v)", table)
        assert np.isnan(result[0])
        assert np.isinf(result[1])
        assert result[2] == 0.0

    def test_if_function(self, tiny_table):
        result = eval_on("IF(x > 3, 1, 0)", tiny_table)
        np.testing.assert_array_equal(result, [0, 0, 0, 1, 1, 1])

    def test_string_functions(self):
        table = Table({"s": np.array(["Ab", "cD"])})
        np.testing.assert_array_equal(eval_on("UPPER(s)", table), ["AB", "CD"])
        np.testing.assert_array_equal(eval_on("LENGTH(s)", table), [2, 2])

    def test_udf_applies(self, tiny_table):
        registry = default_function_registry()
        registry.register_udf("double_it", lambda v: v * 2)
        result = eval_on("double_it(x)", tiny_table, registry)
        np.testing.assert_allclose(result, tiny_table.column("x") * 2)

    def test_non_vectorized_udf(self, tiny_table):
        registry = default_function_registry()
        registry.register_udf("slow_inc", lambda v: v + 1, vectorized=False)
        result = eval_on("slow_inc(x)", tiny_table, registry)
        np.testing.assert_allclose(result, tiny_table.column("x") + 1)

    def test_udf_failure_wrapped(self, tiny_table):
        registry = default_function_registry()

        def broken(values):
            raise ValueError("boom")

        registry.register_udf("broken", broken)
        with pytest.raises(ExecutionError, match="BROKEN failed: boom"):
            eval_on("broken(x)", tiny_table, registry)

    def test_aggregate_rejected_rowwise(self, tiny_table):
        with pytest.raises(ExecutionError, match="row-wise"):
            eval_on("AVG(x)", tiny_table)
