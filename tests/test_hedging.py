"""Hedged speculative retries: tail latency down, determinism intact.

The sequential retry ladder pays a full ``task_timeout_seconds`` before
a straggler's retry even starts; the hedge policy instead launches a
*backup* of any task straggling past a percentile-based threshold and
takes whichever result lands first.  Because the backup re-runs the
identical payload — hence the identical per-unit RNG stream — the
answer is bit-identical by construction no matter who wins.  These
tests pin both halves of that contract:

* the threshold math and policy validation;
* a hung task is rescued in well under its timeout, with the hedge
  recorded in the :class:`ExecutionReport` and metrics;
* with hedging forced on for *healthy* tasks (zero floor), results at
  1/2/4 workers stay bit-identical to the serial run — property-tested
  over query shapes.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pipeline import AQPEngine, EngineConfig
from repro.engine.table import Table
from repro.faults import FaultPlan
from repro.obs.metrics import METRICS
from repro.parallel.pool import WorkerPool
from repro.parallel.supervise import (
    HEDGE_ATTEMPT_BASE,
    ExecutionReport,
    HedgePolicy,
    RetryPolicy,
    Supervision,
)


@pytest.fixture
def eight_cpus(monkeypatch):
    """Pretend the machine has 8 cores so real pools can exist."""
    monkeypatch.setattr(os, "cpu_count", lambda: 8)


def _square(x):
    return x * x


def _aggressive() -> HedgePolicy:
    """Hedge almost immediately once one observation exists."""
    return HedgePolicy(
        quantile=0.5,
        multiplier=1.0,
        min_observations=1,
        floor_seconds=0.0,
        max_hedges=8,
    )


# ---------------------------------------------------------------------------
# Policy validation and threshold math
# ---------------------------------------------------------------------------


class TestHedgePolicy:
    def test_defaults_are_valid(self):
        policy = HedgePolicy()
        assert policy.quantile == 0.9
        assert policy.multiplier == 3.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"quantile": 0.0},
            {"quantile": 1.5},
            {"multiplier": 0.5},
            {"min_observations": 0},
            {"floor_seconds": -1.0},
            {"max_hedges": -1},
        ],
    )
    def test_rejects_nonsense(self, kwargs):
        with pytest.raises(ValueError):
            HedgePolicy(**kwargs)

    def test_no_threshold_below_min_observations(self):
        policy = HedgePolicy(min_observations=3)
        assert policy.threshold_seconds([]) is None
        assert policy.threshold_seconds([0.1, 0.2]) is None
        assert policy.threshold_seconds([0.1, 0.2, 0.3]) is not None

    def test_threshold_is_multiplier_times_quantile(self):
        policy = HedgePolicy(
            quantile=0.5,
            multiplier=2.0,
            min_observations=1,
            floor_seconds=0.0,
        )
        assert policy.threshold_seconds([0.1, 0.2, 0.3]) == pytest.approx(
            2.0 * 0.2
        )

    def test_floor_wins_over_tiny_quantiles(self):
        policy = HedgePolicy(
            quantile=0.5,
            multiplier=2.0,
            min_observations=1,
            floor_seconds=0.5,
        )
        assert policy.threshold_seconds([0.001, 0.002]) == 0.5

    def test_attempt_namespace_clears_first_attempt_faults(self):
        # Backups run in a disjoint attempt namespace, so an
        # attempt-0 fault (the common transient) cannot re-fire on the
        # hedge that exists to route around it.
        plan = FaultPlan().with_hang(2, seconds=30.0)
        spec = plan.specs[0]
        assert plan._matches(spec, 2, 0)
        assert not plan._matches(spec, 2, HEDGE_ATTEMPT_BASE)

    def test_report_summary_mentions_hedges(self):
        report = ExecutionReport(hedges_launched=2, hedges_won=1)
        assert "2 hedged (1 won by backup)" in report.summary()
        assert "hedged" not in ExecutionReport().summary()


# ---------------------------------------------------------------------------
# Pool-level rescue: a hung primary loses to its backup
# ---------------------------------------------------------------------------


class TestPoolHedging:
    def test_hedge_rescues_hang_fast(self, eight_cpus):
        # The primary for task 2 hangs 30s on its first attempt.  With
        # a 20s task timeout, sequential recovery would cost >= 20s;
        # the hedge threshold fires within a fraction of a second.
        plan = FaultPlan().with_hang(2, seconds=30.0)
        supervision = Supervision(
            plan=plan,
            policy=RetryPolicy(
                task_timeout_seconds=20.0,
                backoff_base_seconds=0.0,
                backoff_jitter=0.0,
                hedge=HedgePolicy(
                    quantile=0.5,
                    multiplier=2.0,
                    min_observations=2,
                    floor_seconds=0.02,
                ),
            ),
        )
        METRICS.reset()
        started = time.perf_counter()
        with WorkerPool(4) as pool:
            results = pool.map(_square, list(range(8)), supervision)
        elapsed = time.perf_counter() - started
        assert results == [x * x for x in range(8)]
        assert elapsed < 10.0  # far below both the hang and the timeout
        assert supervision.report.hedges_launched >= 1
        assert supervision.report.hedges_won >= 1
        assert supervision.report.task_timeouts == 0
        snapshot = METRICS.snapshot()
        assert snapshot["pool.hedges"]["value"] >= 1
        assert snapshot["pool.hedge_wins"]["value"] >= 1

    def test_no_hedges_without_policy(self, eight_cpus):
        supervision = Supervision(
            policy=RetryPolicy(task_timeout_seconds=20.0, hedge=None)
        )
        with WorkerPool(4) as pool:
            results = pool.map(_square, list(range(8)), supervision)
        assert results == [x * x for x in range(8)]
        assert supervision.report.hedges_launched == 0

    def test_max_hedges_caps_backups(self, eight_cpus):
        # Zero budget: the policy is present but can never launch.
        supervision = Supervision(
            policy=RetryPolicy(
                task_timeout_seconds=20.0,
                hedge=HedgePolicy(
                    quantile=0.5,
                    multiplier=1.0,
                    min_observations=1,
                    floor_seconds=0.0,
                    max_hedges=0,
                ),
            )
        )
        with WorkerPool(4) as pool:
            results = pool.map(_square, list(range(8)), supervision)
        assert results == [x * x for x in range(8)]
        assert supervision.report.hedges_launched == 0

    def test_healthy_round_hedges_are_harmless(self, eight_cpus):
        # Force hedges on perfectly healthy tasks: whoever wins, the
        # results must be exactly the primaries' answers.
        supervision = Supervision(
            policy=RetryPolicy(
                task_timeout_seconds=20.0, hedge=_aggressive()
            )
        )
        with WorkerPool(4) as pool:
            results = pool.map(_square, list(range(16)), supervision)
        assert results == [x * x for x in range(16)]


# ---------------------------------------------------------------------------
# Engine-level: latency rescue and bit-identity
# ---------------------------------------------------------------------------


def _make_engine(**config_kwargs) -> AQPEngine:
    config = EngineConfig(
        retry_backoff_seconds=0.0, run_diagnostics=False, **config_kwargs
    )
    engine = AQPEngine(config=config, seed=42)
    rng = np.random.default_rng(9)
    engine.register_table(
        "t", Table({"x": rng.normal(100.0, 15.0, 20000)}, name="t")
    )
    engine.create_sample("t", size=4000, name="s")
    return engine


def _median_query(engine: AQPEngine):
    return engine.execute("SELECT MEDIAN(x) FROM t", sample_name="s")


class TestEngineHedging:
    def test_hedge_beats_sequential_timeout(self, eight_cpus):
        clean = _median_query(_make_engine())

        plan = FaultPlan().with_hang(1, seconds=30.0)
        engine = _make_engine(
            fault_plan=plan,
            num_workers=4,
            task_timeout_seconds=15.0,
            hedge=HedgePolicy(
                quantile=0.5,
                multiplier=2.0,
                min_observations=2,
                floor_seconds=0.02,
            ),
        )
        started = time.perf_counter()
        try:
            hedged = _median_query(engine)
        finally:
            engine.close()
        elapsed = time.perf_counter() - started

        report = hedged.execution_report
        assert report.hedges_launched >= 1
        assert report.hedges_won >= 1
        assert not report.degraded
        assert elapsed < 10.0  # sequential recovery would cost >= 15s
        # First-result-wins on the same RNG stream: bit-identical.
        assert clean.single().interval == hedged.single().interval
        assert clean.single().estimate == hedged.single().estimate

    def test_hedging_disabled_still_recovers_via_timeout(self, eight_cpus):
        # hedge=None restores the old sequential ladder: slower but
        # still correct and still bit-identical after the retry.
        clean = _median_query(_make_engine())
        plan = FaultPlan().with_hang(1, seconds=30.0)
        engine = _make_engine(
            fault_plan=plan,
            num_workers=4,
            task_timeout_seconds=0.5,
            hedge=None,
        )
        try:
            recovered = _median_query(engine)
        finally:
            engine.close()
        report = recovered.execution_report
        assert report.hedges_launched == 0
        assert report.task_timeouts >= 1
        assert clean.single().interval == recovered.single().interval


class TestHedgingBitIdentity:
    """Hedges fired on healthy tasks must never change an answer."""

    @settings(max_examples=4, deadline=None)
    @given(
        workers=st.sampled_from([1, 2, 4]),
        sql=st.sampled_from(
            [
                "SELECT MEDIAN(x) FROM t",
                "SELECT AVG(x), SUM(x) FROM t",
                "SELECT COUNT(*) FROM t WHERE x > 100",
            ]
        ),
    )
    def test_bit_identical_across_worker_counts(self, workers, sql):
        os_cpu_count = os.cpu_count
        os.cpu_count = lambda: 8
        try:
            serial = _make_engine(num_workers=1, hedge=None)
            baseline = serial.execute(sql, sample_name="s")
            engine = _make_engine(
                num_workers=workers,
                task_timeout_seconds=20.0,
                hedge=_aggressive(),
            )
            try:
                hedged = engine.execute(sql, sample_name="s")
            finally:
                engine.close()
        finally:
            os.cpu_count = os_cpu_count
        for base_row, hedge_row in zip(baseline.rows, hedged.rows):
            assert base_row.group == hedge_row.group
            for name, base_value in base_row.values.items():
                hedge_value = hedge_row.values[name]
                assert base_value.estimate == hedge_value.estimate
                assert base_value.interval == hedge_value.interval
