"""Unit tests for closed-form (CLT) error estimation."""

import numpy as np
import pytest

from repro.core.bootstrap import BootstrapEstimator
from repro.core.closed_form import ClosedFormEstimator, normal_quantile
from repro.core.estimators import EstimationTarget
from repro.engine.aggregates import get_aggregate
from repro.errors import EstimationError


class TestNormalQuantile:
    def test_95_percent(self):
        assert normal_quantile(0.95) == pytest.approx(1.959964, abs=1e-5)

    def test_99_percent(self):
        assert normal_quantile(0.99) == pytest.approx(2.575829, abs=1e-5)

    def test_invalid(self):
        with pytest.raises(EstimationError):
            normal_quantile(1.0)


class TestApplicability:
    @pytest.mark.parametrize("name", ["AVG", "SUM", "COUNT", "VARIANCE", "STDEV"])
    def test_applicable(self, name, rng):
        target = EstimationTarget(rng.normal(size=100), get_aggregate(name))
        assert ClosedFormEstimator().applicable(target)

    @pytest.mark.parametrize("name", ["MIN", "MAX", "COUNT_DISTINCT"])
    def test_not_applicable(self, name, rng):
        target = EstimationTarget(rng.normal(size=100), get_aggregate(name))
        estimator = ClosedFormEstimator()
        assert not estimator.applicable(target)
        with pytest.raises(EstimationError, match="does not apply"):
            estimator.estimate(target)

    def test_percentile_not_applicable(self, rng):
        target = EstimationTarget(
            rng.normal(size=100), get_aggregate("PERCENTILE", 0.5)
        )
        assert not ClosedFormEstimator().applicable(target)


class TestIntervals:
    def test_avg_formula(self, rng):
        values = rng.normal(10.0, 3.0, size=4000)
        target = EstimationTarget(values, get_aggregate("AVG"))
        ci = ClosedFormEstimator().estimate(target, 0.95)
        expected = 1.959964 * values.std(ddof=1) / np.sqrt(4000)
        assert ci.half_width == pytest.approx(expected, rel=1e-6)
        assert ci.method == "closed_form"

    def test_scaled_sum(self, rng):
        values = rng.normal(10.0, 3.0, size=4000)
        target = EstimationTarget(
            values, get_aggregate("SUM"), dataset_rows=400_000, extensive=True
        )
        ci = ClosedFormEstimator().estimate(target, 0.95)
        assert ci.estimate == pytest.approx(100.0 * values.sum())
        # Half-width is in full-dataset units too.
        assert ci.relative_error < 0.05

    def test_filtered_count(self, rng):
        values = np.ones(10_000)
        mask = rng.random(10_000) < 0.3
        target = EstimationTarget(
            values,
            get_aggregate("COUNT"),
            mask=mask,
            dataset_rows=1_000_000,
            extensive=True,
        )
        ci = ClosedFormEstimator().estimate(target, 0.95)
        assert ci.estimate == pytest.approx(100.0 * mask.sum())
        p = mask.mean()
        expected = 1.959964 * 100.0 * np.sqrt(10_000 * p * (1 - p))
        assert ci.half_width == pytest.approx(expected, rel=1e-6)

    def test_agrees_with_bootstrap_on_gaussian_mean(self, rng):
        """On benign data the two cheap estimators coincide (§2.3)."""
        values = rng.normal(0.0, 1.0, size=20_000)
        target = EstimationTarget(values, get_aggregate("AVG"))
        cf = ClosedFormEstimator().estimate(target, 0.95)
        boot = BootstrapEstimator(400, rng).estimate(target, 0.95)
        assert cf.half_width == pytest.approx(boot.half_width, rel=0.15)

    def test_variance_aggregate_interval(self, rng):
        values = rng.normal(0.0, 2.0, size=50_000)
        target = EstimationTarget(values, get_aggregate("VARIANCE"))
        ci = ClosedFormEstimator().estimate(target, 0.95)
        assert ci.contains(4.0)

    def test_deterministic(self, rng):
        values = rng.normal(size=1000)
        target = EstimationTarget(values, get_aggregate("AVG"))
        estimator = ClosedFormEstimator()
        assert (
            estimator.estimate(target).half_width
            == estimator.estimate(target).half_width
        )
