"""Unit tests for the closed-form quantile estimator (extension)."""

import numpy as np
import pytest

from repro.core import BootstrapEstimator, EstimationTarget, diagnose
from repro.core.diagnostics import DiagnosticConfig
from repro.core.ground_truth import DatasetQuery, true_interval
from repro.core.quantile_closed_form import (
    QuantileClosedFormEstimator,
    kde_density_at,
    silverman_bandwidth,
)
from repro.engine.aggregates import get_aggregate
from repro.errors import EstimationError


class TestBandwidthAndDensity:
    def test_bandwidth_positive_and_shrinks_with_n(self, rng):
        small = silverman_bandwidth(rng.normal(size=100))
        large = silverman_bandwidth(rng.normal(size=100_000))
        assert 0 < large < small

    def test_bandwidth_rejects_constant_data(self):
        with pytest.raises(EstimationError, match="degenerate"):
            silverman_bandwidth(np.full(100, 3.0))

    def test_bandwidth_needs_two_values(self):
        with pytest.raises(EstimationError):
            silverman_bandwidth(np.array([1.0]))

    def test_density_matches_normal_pdf(self, rng):
        values = rng.normal(0.0, 1.0, 100_000)
        estimated = kde_density_at(values, 0.0)
        truth = 1.0 / np.sqrt(2 * np.pi)
        assert estimated == pytest.approx(truth, rel=0.1)

    def test_density_in_tail_is_small(self, rng):
        values = rng.normal(0.0, 1.0, 50_000)
        assert kde_density_at(values, 0.0) > 10 * kde_density_at(values, 3.5)


class TestApplicability:
    def test_applies_to_central_percentiles(self, rng):
        target = EstimationTarget(
            rng.normal(size=1000), get_aggregate("PERCENTILE", 0.5)
        )
        assert QuantileClosedFormEstimator().applicable(target)

    @pytest.mark.parametrize("fraction", [0.001, 0.999])
    def test_rejects_extreme_percentiles(self, rng, fraction):
        target = EstimationTarget(
            rng.normal(size=1000), get_aggregate("PERCENTILE", fraction)
        )
        estimator = QuantileClosedFormEstimator()
        assert not estimator.applicable(target)
        with pytest.raises(EstimationError, match="non-extreme"):
            estimator.estimate(target)

    def test_rejects_non_percentile_aggregates(self, rng):
        target = EstimationTarget(rng.normal(size=1000), get_aggregate("AVG"))
        assert not QuantileClosedFormEstimator().applicable(target)

    def test_needs_enough_rows(self, rng):
        target = EstimationTarget(
            rng.normal(size=10), get_aggregate("PERCENTILE", 0.5)
        )
        with pytest.raises(EstimationError, match="at least 30"):
            QuantileClosedFormEstimator().estimate(target)


class TestAccuracy:
    def test_matches_bootstrap_on_smooth_data(self, rng):
        values = rng.lognormal(2.0, 0.6, 30_000)
        target = EstimationTarget(values, get_aggregate("PERCENTILE", 0.5))
        closed = QuantileClosedFormEstimator().estimate(target, 0.95)
        boot = BootstrapEstimator(300, rng).estimate(target, 0.95)
        assert closed.half_width == pytest.approx(boot.half_width, rel=0.25)

    def test_matches_ground_truth_width(self, rng):
        dataset = rng.normal(10.0, 2.0, 400_000)
        query = DatasetQuery(dataset, get_aggregate("PERCENTILE", 0.75))
        truth = true_interval(query, 10_000, 0.95, 300, rng)
        target = query.sample_target(10_000, rng)
        closed = QuantileClosedFormEstimator().estimate(target, 0.95)
        assert closed.half_width == pytest.approx(truth.half_width, rel=0.3)

    def test_respects_filter_mask(self, rng):
        values = rng.normal(size=20_000)
        mask = values > 0
        target = EstimationTarget(
            values, get_aggregate("PERCENTILE", 0.5), mask=mask
        )
        interval = QuantileClosedFormEstimator().estimate(target, 0.95)
        assert interval.estimate == pytest.approx(
            np.median(values[values > 0]), abs=0.05
        )

    def test_deterministic(self, rng):
        target = EstimationTarget(
            rng.lognormal(1.0, 0.5, 5000), get_aggregate("PERCENTILE", 0.9)
        )
        estimator = QuantileClosedFormEstimator()
        assert (
            estimator.estimate(target).half_width
            == estimator.estimate(target).half_width
        )


class TestDiagnosticIntegration:
    """The paper's generalisation claim: the diagnostic validates any ξ."""

    def test_diagnostic_passes_on_smooth_data(self, rng):
        # Paper-default p=100 and a sample large enough for a
        # 600/1200/2400 subsample ladder: at smaller p or smaller
        # subsamples the verdict is borderline (Δ hovers near c₁) and
        # flips with the RNG stream rather than the estimator's merit.
        values = np.random.default_rng(3).lognormal(2.0, 0.5, 240_000)
        target = EstimationTarget(values, get_aggregate("PERCENTILE", 0.5))
        result = diagnose(
            target,
            QuantileClosedFormEstimator(),
            0.95,
            DiagnosticConfig(num_subsamples=100, num_sizes=3),
            rng,
        )
        assert result.passed

    def test_diagnostic_fails_on_lumpy_data(self, rng):
        # Data with atoms: a discrete ladder where the density assumption
        # is violated (the quantile sits on a point mass).
        values = np.random.default_rng(4).integers(0, 5, 60_000).astype(float)
        target = EstimationTarget(values, get_aggregate("PERCENTILE", 0.5))
        result = diagnose(
            target,
            QuantileClosedFormEstimator(),
            0.95,
            DiagnosticConfig(num_subsamples=40, num_sizes=3),
            rng,
        )
        assert not result.passed
