"""Answer-quality observability: events, audits, SLOs, OpenMetrics.

The load-bearing claims under test:

* the event log records one structured record per executed query, in a
  bounded ring and (optionally) a JSONL sink that survives torn lines;
* calibration-audit sampling is a deterministic hash — no RNG — so
  audited runs are bit-identical to unaudited runs at any worker count;
* realized-coverage tracking turns a seeded stale-cube fault into an
  edge-triggered SLO breach that invalidates the cube and (via the
  governor) opens the circuit breaker with a ``quality_breach`` cause;
* the OpenMetrics export renders the registry in Prometheus text
  format, and histogram snapshots yield sane p50/p95/p99 estimates.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.cli import format_stats, main as cli_main, run_query
from repro.core.ci import ConfidenceInterval
from repro.core.pipeline import (
    AQPEngine,
    AQPResult,
    AQPRow,
    ApproximateValue,
    EngineConfig,
    resolve_audit_fraction,
    resolve_event_log_enabled,
)
from repro.engine.table import Table
from repro.governor.admission import GovernorConfig, QueryGovernor
from repro.governor.breaker import BreakerState, CircuitBreaker
from repro.obs import METRICS
from repro.obs.audit import (
    AuditConfig,
    CalibrationAuditor,
    render_audit_report,
    summarize_events,
)
from repro.obs.events import EVENTS, QueryEvent, QueryEventLog, load_events
from repro.obs.metrics import Histogram, quantiles_from_snapshot
from repro.obs.openmetrics import render_openmetrics, start_metrics_server
from repro.obs.slo import ErrorBudgetSLO, SLOConfig


@pytest.fixture(autouse=True)
def clean_global_obs():
    """Each test sees a fresh process-wide ring and registry."""
    EVENTS.clear()
    METRICS.reset()
    yield
    EVENTS.clear()
    METRICS.reset()


@pytest.fixture
def eight_cpus(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 8)


def _make_engine(**config_kwargs) -> AQPEngine:
    rng = np.random.default_rng(5)
    n = 20_000
    table = Table(
        {
            "x": rng.normal(100.0, 15.0, n),
            "g": rng.integers(0, 4, n).astype(np.int64),
        },
        name="t",
    )
    config_kwargs.setdefault("retry_backoff_seconds", 0.0)
    config_kwargs.setdefault("run_diagnostics", False)
    config_kwargs.setdefault("num_bootstrap_resamples", 40)
    engine = AQPEngine(EngineConfig(**config_kwargs), seed=7)
    engine.register_table("t", table)
    engine.create_sample("t", size=4000, name="s")
    return engine


def _values_key(result: AQPResult):
    return tuple(
        (
            value.estimate,
            None if value.interval is None else value.interval.half_width,
        )
        for row in result.rows
        for value in row.values.values()
    )


# ---------------------------------------------------------------------------
# Event log
# ---------------------------------------------------------------------------
class TestQueryEventLog:
    def test_ring_bounds_and_sequence(self):
        log = QueryEventLog(capacity=3)
        for i in range(5):
            log.record(QueryEvent(sql=f"q{i}"))
        events = log.recent()
        assert [e.sql for e in events] == ["q2", "q3", "q4"]
        assert [e.seq for e in events] == [3, 4, 5]
        snap = log.snapshot()
        assert snap["recorded"] == 5 and snap["dropped"] == 2

    def test_jsonl_sink_roundtrip_and_torn_line(self, tmp_path):
        log = QueryEventLog()
        path = tmp_path / "events.jsonl"
        log.attach_sink(path)
        log.record(QueryEvent(sql="SELECT 1", route="cold"))
        log.record(QueryEvent(sql="SELECT 2", route="exact"))
        log.detach_sink(path)
        with open(path, "a") as f:
            f.write('{"sql": "torn')  # crash mid-line
        loaded = list(load_events(path))
        assert [e["sql"] for e in loaded] == ["SELECT 1", "SELECT 2"]
        with pytest.raises(json.JSONDecodeError):
            list(load_events(path, strict=True))

    def test_sink_attach_is_idempotent(self, tmp_path):
        log = QueryEventLog()
        path = tmp_path / "e.jsonl"
        log.attach_sink(path)
        log.attach_sink(path)
        log.record(QueryEvent(sql="q"))
        log.detach_sink(path)
        assert len(list(load_events(path))) == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QueryEventLog(capacity=0)

    def test_engine_emits_event_per_query(self):
        engine = _make_engine(audit_fraction=0.0)
        result = engine.execute("SELECT AVG(x) FROM t")
        event = result.event
        assert event is not None
        assert event.sql == "SELECT AVG(x) FROM t"
        assert event.table == "t"
        assert event.route == "cold"
        assert event.level == "full"
        assert event.rows == 1
        assert event.bootstrap_k == result.bootstrap_subqueries
        assert event.latency_seconds == result.elapsed_seconds
        assert not event.audited and event.covered is None
        assert EVENTS.recent()[-1].seq == event.seq

    def test_event_route_tracks_catalog(self):
        engine = _make_engine()
        first = engine.execute("SELECT AVG(x) FROM t")
        second = engine.execute("SELECT AVG(x) FROM t")
        assert first.event.route == "cold"
        assert second.event.route == "exact"

    def test_event_log_disablable(self):
        engine = _make_engine(event_log=False)
        result = engine.execute("SELECT AVG(x) FROM t")
        assert result.event is None
        assert len(EVENTS) == 0

    def test_env_resolution(self, monkeypatch):
        assert resolve_event_log_enabled(None) is True
        monkeypatch.setenv("REPRO_EVENTS", "off")
        assert resolve_event_log_enabled(None) is False
        assert resolve_event_log_enabled(True) is True
        monkeypatch.setenv("REPRO_AUDIT_FRACTION", "0.25")
        assert resolve_audit_fraction(None) == 0.25
        assert resolve_audit_fraction(0.5) == 0.5


# ---------------------------------------------------------------------------
# Error-budget SLOs
# ---------------------------------------------------------------------------
class TestErrorBudgetSLO:
    def test_burn_rate_math(self):
        slo = ErrorBudgetSLO(SLOConfig(window=100, min_samples=10))
        for _ in range(90):
            slo.record(True, objective=0.9)
        for _ in range(10):
            slo.record(False, objective=0.9)
        snap = slo.snapshot()
        assert snap["miss_fraction"] == pytest.approx(0.1)
        assert snap["burn_rate"] == pytest.approx(1.0)
        assert not snap["breached"]

    def test_breach_is_edge_triggered_and_recovers(self):
        slo = ErrorBudgetSLO(
            SLOConfig(window=20, min_samples=5, burn_rate_threshold=2.0)
        )
        edges = [slo.record(False, objective=0.9) for _ in range(6)]
        assert edges.count("breach") == 1
        assert slo.breached
        recovery = [slo.record(True, objective=0.9) for _ in range(20)]
        assert recovery.count("recovered") == 1
        assert not slo.breached
        assert slo.snapshot()["breaches"] == 1

    def test_no_breach_below_min_samples(self):
        slo = ErrorBudgetSLO(SLOConfig(window=50, min_samples=30))
        assert all(
            slo.record(False, objective=0.95) is None for _ in range(29)
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SLOConfig(window=0)
        with pytest.raises(ValueError):
            SLOConfig(default_objective=1.5)
        with pytest.raises(ValueError):
            SLOConfig(burn_rate_threshold=0.0)


# ---------------------------------------------------------------------------
# Calibration auditor
# ---------------------------------------------------------------------------
class TestCalibrationAuditor:
    def test_sampling_is_deterministic_and_proportional(self):
        config = AuditConfig(fraction=0.3)
        first = CalibrationAuditor(config)
        second = CalibrationAuditor(config)
        decisions = [first.should_audit("shape-a") for _ in range(400)]
        assert decisions == [
            second.should_audit("shape-a") for _ in range(400)
        ]
        rate = sum(decisions) / len(decisions)
        assert 0.2 < rate < 0.4

    def test_fraction_bounds(self):
        assert not CalibrationAuditor(AuditConfig(fraction=0.0)).enabled
        always = CalibrationAuditor(AuditConfig(fraction=1.0))
        assert all(always.should_audit("s") for _ in range(10))
        with pytest.raises(ValueError):
            AuditConfig(fraction=1.5)

    def test_audit_covers_honest_intervals(self):
        engine = _make_engine(audit_fraction=1.0)
        result = engine.execute("SELECT AVG(x) FROM t")
        assert result.event.audited
        assert result.event.covered is True
        report = engine.auditor.report()
        assert report["totals"]["audited_queries"] == 1
        assert report["totals"]["coverage"] == 1.0
        assert "route:cold" in report["scopes"]
        assert "table:t" in report["scopes"]
        assert "level:full" in report["scopes"]

    def test_grouped_audit_checks_each_group(self):
        engine = _make_engine(audit_fraction=1.0)
        result = engine.execute("SELECT AVG(x) FROM t GROUP BY g")
        audited = result.event.audit
        auditable = sum(
            1
            for row in result.rows
            for value in row.values.values()
            if value.interval is not None and value.method != "exact"
        )
        assert audited["audited_values"] == auditable

    def test_audit_failure_is_contained(self):
        engine = _make_engine(audit_fraction=1.0)
        result = engine.execute("SELECT AVG(x) FROM t")
        query = engine.analyze_sql("SELECT AVG(x) FROM t")
        engine.catalog._entries.pop("t", None)  # sabotage the base table
        outcome = engine.auditor.audit(engine, query, result)
        assert outcome.audited_values == 0
        assert engine.auditor.report()["totals"]["audit_errors"] == 1

    def test_audited_run_bit_identical_serial(self):
        queries = [
            "SELECT AVG(x) FROM t",
            "SELECT SUM(x) FROM t WHERE g = 1",
            "SELECT AVG(x) FROM t GROUP BY g",
        ]
        baseline = _make_engine(audit_fraction=0.0, event_log=False)
        audited = _make_engine(audit_fraction=1.0)
        for sql in queries:
            assert _values_key(baseline.execute(sql)) == _values_key(
                audited.execute(sql)
            ), sql

    def test_audited_run_bit_identical_two_workers(self, eight_cpus):
        sql = "SELECT AVG(x) FROM t GROUP BY g"
        serial = _make_engine(audit_fraction=1.0)
        parallel = _make_engine(audit_fraction=1.0, num_workers=2)
        try:
            assert _values_key(serial.execute(sql)) == _values_key(
                parallel.execute(sql)
            )
        finally:
            parallel.close()


def _biased_result(engine, truth_offset: float) -> AQPResult:
    """A fabricated cube-served answer whose interval misses the truth."""
    exact = float(
        engine.execute_exact("SELECT AVG(x) FROM t").column("_col0")[0]
    )
    interval = ConfidenceInterval(
        estimate=exact + truth_offset,
        half_width=abs(truth_offset) / 10 or 0.1,
        confidence=0.95,
        method="closed_form",
    )
    value = ApproximateValue(
        name="_col0",
        estimate=interval.estimate,
        interval=interval,
        method="closed_form",
    )
    return AQPResult(
        sql="SELECT AVG(x) FROM t",
        rows=(AQPRow(group={}, values={"_col0": value}),),
        sample=None,
        elapsed_seconds=0.001,
        catalog_route="partial",
    )


class TestBreachWiring:
    def test_sustained_miss_breaches_and_invalidates_cubes(self):
        engine = _make_engine(
            audit_config=AuditConfig(
                fraction=1.0, window=20, min_samples=5
            )
        )
        engine.materialize("t", dims=("g",), sample_name="s")
        assert engine.mv_catalog.cubes_for("t")
        query = engine.analyze_sql("SELECT AVG(x) FROM t")
        seen: list[str] = []
        engine.auditor.add_breach_listener(
            lambda scope, snap: seen.append(scope)
        )
        biased = _biased_result(engine, truth_offset=25.0)
        for _ in range(6):
            engine.auditor.audit(engine, query, biased)
        assert "table:t|route:partial" in seen
        assert "overall" in seen
        # The engine's own listener evicted the miscalibrated cubes.
        assert engine.mv_catalog.cubes_for("t") == []
        assert (
            METRICS.counter("catalog.quality_invalidations").value == 1
        )
        report = engine.auditor.report()
        assert "table:t|route:partial" in report["breached"]

    def test_breach_recovery_after_invalidation(self):
        engine = _make_engine(
            audit_config=AuditConfig(
                fraction=1.0, window=10, min_samples=5
            )
        )
        query = engine.analyze_sql("SELECT AVG(x) FROM t")
        biased = _biased_result(engine, truth_offset=25.0)
        for _ in range(6):
            engine.auditor.audit(engine, query, biased)
        assert engine.auditor.report()["breached"]
        honest = _biased_result(engine, truth_offset=0.0)
        for _ in range(12):
            engine.auditor.audit(engine, query, honest)
        assert engine.auditor.report()["breached"] == []

    def test_quality_breach_opens_governor_breaker(self):
        engine = _make_engine(
            audit_config=AuditConfig(
                fraction=1.0, window=20, min_samples=5
            )
        )
        governor = QueryGovernor(
            engine, GovernorConfig(max_concurrency=1)
        )
        with governor:
            governor.execute("SELECT AVG(x) FROM t")  # registers listener
            assert governor.breaker.state == BreakerState.CLOSED
            query = engine.analyze_sql("SELECT AVG(x) FROM t")
            biased = _biased_result(engine, truth_offset=25.0)
            for _ in range(6):
                engine.auditor.audit(engine, query, biased)
            assert governor.breaker.state == BreakerState.OPEN
            assert governor.breaker.last_trip_cause == "quality_breach"
            assert governor.stats()["quality_breaches"] >= 1
            assert (
                governor.breaker.snapshot()["trip_causes"][
                    "quality_breach"
                ]
                >= 1
            )

    def test_breaker_manual_trip_cause_tracking(self):
        breaker = CircuitBreaker(clock=lambda: 0.0)
        breaker.trip("quality_breach")
        assert breaker.state == BreakerState.OPEN
        assert breaker.last_trip_cause == "quality_breach"
        snap = breaker.snapshot()
        assert snap["trip_causes"] == {"quality_breach": 1}
        assert (
            METRICS.counter(
                "governor.breaker_trips.quality_breach"
            ).value
            == 1
        )


# ---------------------------------------------------------------------------
# Quantiles + OpenMetrics
# ---------------------------------------------------------------------------
class TestQuantiles:
    def test_histogram_quantiles_close_to_empirical(self):
        h = Histogram("q")
        rng = np.random.default_rng(3)
        samples = rng.uniform(0.0, 1.0, 2000)
        for s in samples:
            h.observe(float(s))
        quantiles = quantiles_from_snapshot(h.snapshot())
        assert quantiles["p50"] == pytest.approx(0.5, abs=0.08)
        assert quantiles["p95"] == pytest.approx(0.95, abs=0.08)
        assert quantiles["p99"] == pytest.approx(0.99, abs=0.05)
        assert h.quantile(0.5) == quantiles["p50"]

    def test_empty_histogram_yields_none(self):
        h = Histogram("q")
        assert h.quantile(0.5) is None
        assert quantiles_from_snapshot(h.snapshot()) == {
            "p50": None,
            "p95": None,
            "p99": None,
        }

    def test_quantiles_clamped_to_observed_range(self):
        h = Histogram("q")
        h.observe(0.003)
        quantiles = quantiles_from_snapshot(h.snapshot())
        assert quantiles["p99"] == pytest.approx(0.003)

    def test_invalid_quantile_rejected(self):
        h = Histogram("q")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_format_stats_includes_quantiles(self):
        METRICS.histogram("query.seconds").observe(0.02)
        stats = json.loads(format_stats())
        assert "quantiles" in stats["query.seconds"]
        assert stats["query.seconds"]["quantiles"]["p50"] is not None


class TestOpenMetrics:
    def test_render_counter_gauge_histogram(self):
        METRICS.counter("audit.queries").inc(4)
        METRICS.gauge("pool.workers").set(2)
        METRICS.histogram("query.seconds").observe(0.004)
        text = render_openmetrics()
        assert "# TYPE repro_audit_queries_total counter" in text
        assert "repro_audit_queries_total 4" in text
        assert "repro_pool_workers 2" in text
        assert 'repro_query_seconds_bucket{le="0.005"} 1' in text
        assert 'repro_query_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_query_seconds_count 1" in text
        assert "repro_query_seconds_p50" in text
        assert text.endswith("# EOF\n")

    def test_name_sanitization(self):
        METRICS.counter("governor.breaker_trips.quality_breach").inc()
        text = render_openmetrics()
        assert (
            "repro_governor_breaker_trips_quality_breach_total 1" in text
        )

    def test_http_server_serves_metrics(self):
        import urllib.request

        METRICS.counter("queries").inc(7)
        server = start_metrics_server(port=0)
        try:
            port = server.server_address[1]
            body = (
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=5
                )
                .read()
                .decode()
            )
            assert "repro_queries_total 7" in body
            assert body.endswith("# EOF\n")
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/nope", timeout=5
                )
        finally:
            server.shutdown()


# ---------------------------------------------------------------------------
# Offline reports + CLI
# ---------------------------------------------------------------------------
class TestOfflineReports:
    def _events(self):
        return [
            QueryEvent(
                sql="q1",
                route="cold",
                table="t",
                level="full",
                confidence=0.95,
                audited=True,
                covered=True,
                audit={"audited_values": 10, "covered_values": 10},
            ),
            QueryEvent(
                sql="q2",
                route="partial",
                table="t",
                level="full",
                confidence=0.95,
                audited=True,
                covered=False,
                audit={"audited_values": 10, "covered_values": 5},
            ),
            QueryEvent(sql="q3", route="exact", audited=False),
        ]

    def test_summarize_events_math_and_breaches(self):
        report = summarize_events(self._events(), tolerance=0.02)
        assert report["events"] == 3
        assert report["audited_events"] == 2
        assert report["overall"]["coverage"] == pytest.approx(0.75)
        assert report["by"]["route"]["partial"]["coverage"] == (
            pytest.approx(0.5)
        )
        assert "route:partial" in report["breaches"]
        assert "overall" in report["breaches"]
        assert report["by"]["route"]["cold"]["within_tolerance"] is True

    def test_render_handles_live_and_offline_shapes(self):
        offline = render_audit_report(summarize_events(self._events()))
        assert "BREACHED" in offline
        auditor = CalibrationAuditor(AuditConfig(fraction=1.0))
        live = render_audit_report(auditor.report())
        assert "calibration audit" in live

    def test_cli_audit_report(self, tmp_path, capsys):
        log = QueryEventLog()
        path = tmp_path / "events.jsonl"
        log.attach_sink(path)
        for event in self._events():
            log.record(event)
        log.detach_sink(path)
        out_json = tmp_path / "audit.json"
        code = cli_main(
            [
                "audit",
                "report",
                "--events",
                str(path),
                "--json",
                str(out_json),
            ]
        )
        assert code == 0
        assert "coverage" in capsys.readouterr().out
        report = json.loads(out_json.read_text())
        assert report["audited_events"] == 2
        # --check turns breaches into a failing exit code.
        assert (
            cli_main(
                ["audit", "report", "--events", str(path), "--check"]
            )
            == 1
        )

    def test_cli_audit_report_missing_file(self, capsys):
        assert (
            cli_main(["audit", "report", "--events", "/nonexistent.jsonl"])
            == 1
        )
        assert "error" in capsys.readouterr().err


class TestExplainAnalyzeQuality:
    def test_quality_footer_present(self):
        engine = _make_engine(audit_fraction=1.0)

        class _Args:
            exact = False
            error_bound = None
            no_diagnostics = True
            timeout = None
            trace_out = None

        out = run_query(
            engine, "EXPLAIN ANALYZE SELECT AVG(x) FROM t", _Args()
        )
        assert "-- quality:" in out
        assert "route=cold" in out
        assert "audited: 1/1" in out
        assert "latency" in out
