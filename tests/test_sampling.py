"""Unit tests for the sampling and resampling module."""

import numpy as np
import pytest

from repro.errors import CatalogError, DiagnosticError, SamplingError
from repro.sampling import (
    PoissonizedResampler,
    SampleCatalog,
    TupleAugmentationResampler,
    disjoint_subsamples,
    exact_resample_counts,
    materialize_exact_resample,
    materialize_poisson_resample,
    poisson_weight_matrix,
    poisson_weights,
    simple_random_sample,
    subsample_index_blocks,
)


class TestSimpleRandomSample:
    def test_by_size(self, sessions_table, rng):
        sample = simple_random_sample(sessions_table, size=100, rng=rng)
        assert sample.num_rows == 100

    def test_by_fraction(self, sessions_table, rng):
        sample = simple_random_sample(sessions_table, fraction=0.1, rng=rng)
        assert sample.num_rows == 200

    def test_both_parameters_rejected(self, sessions_table, rng):
        with pytest.raises(SamplingError, match="exactly one"):
            simple_random_sample(sessions_table, size=10, fraction=0.1, rng=rng)

    def test_neither_parameter_rejected(self, sessions_table, rng):
        with pytest.raises(SamplingError, match="exactly one"):
            simple_random_sample(sessions_table, rng=rng)

    def test_fraction_out_of_range(self, sessions_table, rng):
        with pytest.raises(SamplingError, match="fraction"):
            simple_random_sample(sessions_table, fraction=1.5, rng=rng)

    def test_oversized_without_replacement(self, sessions_table, rng):
        with pytest.raises(SamplingError, match="without replacement"):
            simple_random_sample(sessions_table, size=10**6, rng=rng)

    def test_with_replacement_allows_oversize(self, tiny_table, rng):
        sample = simple_random_sample(
            tiny_table, size=50, rng=rng, replacement=True
        )
        assert sample.num_rows == 50

    def test_values_come_from_dataset(self, sessions_table, rng):
        sample = simple_random_sample(sessions_table, size=50, rng=rng)
        assert set(sample.column("city")) <= set(sessions_table.column("city"))


class TestPoissonWeights:
    def test_vector_shape_and_dtype(self, rng):
        weights = poisson_weights(1000, rng)
        assert weights.shape == (1000,)
        assert weights.dtype == np.int32

    def test_matrix_shape(self, rng):
        matrix = poisson_weight_matrix(500, 64, rng)
        assert matrix.shape == (500, 64)

    def test_mean_close_to_rate(self, rng):
        matrix = poisson_weight_matrix(2000, 50, rng, rate=1.0)
        assert matrix.mean() == pytest.approx(1.0, abs=0.02)

    def test_custom_rate(self, rng):
        matrix = poisson_weight_matrix(2000, 50, rng, rate=2.0)
        assert matrix.mean() == pytest.approx(2.0, abs=0.05)

    def test_resample_size_concentration(self, rng):
        """Column sums concentrate around n (the §5.1 claim)."""
        n = 10_000
        matrix = poisson_weight_matrix(n, 100, rng)
        sizes = matrix.sum(axis=0)
        # 5 sigma band: nearly every resample is within n ± 5*sqrt(n).
        assert (np.abs(sizes - n) < 5 * np.sqrt(n)).all()

    def test_invalid_parameters(self, rng):
        with pytest.raises(SamplingError):
            poisson_weights(-1, rng)
        with pytest.raises(SamplingError):
            poisson_weights(10, rng, rate=0.0)
        with pytest.raises(SamplingError):
            poisson_weight_matrix(10, 0, rng)

    def test_materialized_resample_size_near_n(self, sessions_table, rng):
        resample = materialize_poisson_resample(sessions_table, rng)
        n = sessions_table.num_rows
        assert abs(resample.num_rows - n) < 5 * np.sqrt(n)


class TestPoissonizedResampler:
    def test_blocks_cover_rows(self, rng):
        resampler = PoissonizedResampler(10, rng, block_rows=300)
        blocks = list(resampler.weight_blocks(1000))
        assert [len(b) for b in blocks] == [300, 300, 300, 100]
        assert all(b.shape[1] == 10 for b in blocks)

    def test_full_matrix(self, rng):
        resampler = PoissonizedResampler(5, rng, block_rows=64)
        matrix = resampler.full_matrix(200)
        assert matrix.shape == (200, 5)

    def test_zero_rows(self, rng):
        resampler = PoissonizedResampler(5, rng)
        assert resampler.full_matrix(0).shape == (0, 5)

    def test_invalid_construction(self, rng):
        with pytest.raises(SamplingError):
            PoissonizedResampler(0, rng)
        with pytest.raises(SamplingError):
            PoissonizedResampler(5, rng, block_rows=0)


class TestTupleAugmentation:
    def test_counts_sum_exactly_to_n(self, rng):
        counts = exact_resample_counts(1000, rng)
        assert counts.sum() == 1000

    def test_zero_rows(self, rng):
        assert exact_resample_counts(0, rng).shape == (0,)

    def test_negative_rejected(self, rng):
        with pytest.raises(SamplingError):
            exact_resample_counts(-1, rng)

    def test_materialized_resample_exact_size(self, sessions_table, rng):
        resample = materialize_exact_resample(sessions_table, rng)
        assert resample.num_rows == sessions_table.num_rows

    def test_count_matrix_columns_each_sum_to_n(self, rng):
        resampler = TupleAugmentationResampler(rng)
        matrix = resampler.count_matrix(500, 8)
        assert matrix.shape == (500, 8)
        assert (matrix.sum(axis=0) == 500).all()

    def test_materialized_stream(self, tiny_table, rng):
        resampler = TupleAugmentationResampler(rng)
        resamples = list(resampler.materialized_resamples(tiny_table, 3))
        assert len(resamples) == 3
        assert all(r.num_rows == tiny_table.num_rows for r in resamples)

    def test_invalid_num_resamples(self, tiny_table, rng):
        resampler = TupleAugmentationResampler(rng)
        with pytest.raises(SamplingError):
            list(resampler.materialized_resamples(tiny_table, 0))
        with pytest.raises(SamplingError):
            list(resampler.count_vectors(10, 0))


class TestDisjointSubsamples:
    def test_blocks_are_disjoint_and_sized(self, rng):
        blocks = subsample_index_blocks(1000, 100, 8, rng)
        assert len(blocks) == 8
        all_indices = np.concatenate(blocks)
        assert len(all_indices) == len(np.unique(all_indices))
        assert all(len(b) == 100 for b in blocks)

    def test_without_rng_uses_natural_order(self):
        blocks = subsample_index_blocks(10, 3, 3)
        np.testing.assert_array_equal(blocks[0], [0, 1, 2])
        np.testing.assert_array_equal(blocks[2], [6, 7, 8])

    def test_too_many_subsamples_rejected(self):
        with pytest.raises(DiagnosticError, match="disjoint"):
            subsample_index_blocks(100, 30, 4)

    def test_invalid_parameters(self):
        with pytest.raises(DiagnosticError):
            subsample_index_blocks(100, 0, 4)
        with pytest.raises(DiagnosticError):
            subsample_index_blocks(100, 10, 0)

    def test_table_subsamples(self, sessions_table, rng):
        subs = disjoint_subsamples(sessions_table, 200, 5, rng)
        assert len(subs) == 5
        assert all(s.num_rows == 200 for s in subs)


class TestSampleCatalog:
    def test_register_and_get(self, sessions_table):
        catalog = SampleCatalog(seed=1)
        catalog.register_table("sessions", sessions_table)
        assert catalog.table("sessions") is sessions_table
        assert catalog.has_table("sessions")
        assert catalog.table_names() == ["sessions"]

    def test_unknown_table(self):
        catalog = SampleCatalog()
        with pytest.raises(CatalogError, match="unknown table"):
            catalog.table("nope")

    def test_create_sample_by_fraction(self, sessions_table):
        catalog = SampleCatalog(seed=1)
        catalog.register_table("sessions", sessions_table)
        info = catalog.create_sample("sessions", fraction=0.1)
        assert info.rows == 200
        assert info.scale_factor == pytest.approx(10.0)
        assert info.sampling_fraction == pytest.approx(0.1)

    def test_default_sample_name(self, sessions_table):
        catalog = SampleCatalog(seed=1)
        catalog.register_table("sessions", sessions_table)
        info = catalog.create_sample("sessions", size=100)
        assert info.name == "sessions_sample_100"

    def test_sample_lookup(self, sessions_table):
        catalog = SampleCatalog(seed=1)
        catalog.register_table("sessions", sessions_table)
        catalog.create_sample("sessions", size=100, name="small")
        info, table = catalog.sample("sessions", "small")
        assert info.name == "small"
        assert table.num_rows == 100

    def test_unknown_sample(self, sessions_table):
        catalog = SampleCatalog(seed=1)
        catalog.register_table("sessions", sessions_table)
        with pytest.raises(CatalogError, match="no sample"):
            catalog.sample("sessions", "nope")

    def test_select_sample_largest_within_budget(self, sessions_table):
        catalog = SampleCatalog(seed=1)
        catalog.register_table("sessions", sessions_table)
        catalog.create_sample("sessions", size=100, name="s100")
        catalog.create_sample("sessions", size=500, name="s500")
        catalog.create_sample("sessions", size=1000, name="s1000")
        info, __ = catalog.select_sample("sessions", max_rows=600)
        assert info.name == "s500"

    def test_select_sample_no_budget_picks_largest(self, sessions_table):
        catalog = SampleCatalog(seed=1)
        catalog.register_table("sessions", sessions_table)
        catalog.create_sample("sessions", size=100, name="s100")
        catalog.create_sample("sessions", size=500, name="s500")
        info, __ = catalog.select_sample("sessions")
        assert info.name == "s500"

    def test_select_sample_nothing_fits(self, sessions_table):
        catalog = SampleCatalog(seed=1)
        catalog.register_table("sessions", sessions_table)
        catalog.create_sample("sessions", size=500, name="s500")
        with pytest.raises(CatalogError, match="fits within"):
            catalog.select_sample("sessions", max_rows=100)

    def test_select_sample_without_samples(self, sessions_table):
        catalog = SampleCatalog(seed=1)
        catalog.register_table("sessions", sessions_table)
        with pytest.raises(CatalogError, match="no samples"):
            catalog.select_sample("sessions")

    def test_samples_for_lists_metadata(self, sessions_table):
        catalog = SampleCatalog(seed=1)
        catalog.register_table("sessions", sessions_table)
        catalog.create_sample("sessions", size=100, name="a")
        catalog.create_sample("sessions", size=200, name="b")
        names = {info.name for info in catalog.samples_for("sessions")}
        assert names == {"a", "b"}

    def test_sample_is_shuffled_relative_to_source(self, sessions_table):
        """Stored samples must be in random order (footnote 10)."""
        catalog = SampleCatalog(seed=1)
        catalog.register_table("sessions", sessions_table)
        __, sample = catalog.sample(
            "sessions", catalog.create_sample("sessions", size=2000).name
        )
        # A full-size without-replacement sample is a permutation; it must
        # not be the identity permutation.
        assert not np.array_equal(
            sample.column("time"), sessions_table.column("time")
        )
