"""Unit tests for estimation targets and the estimator interface."""

import numpy as np
import pytest

from repro.core.estimators import EstimationTarget
from repro.engine.aggregates import get_aggregate
from repro.errors import EstimationError


@pytest.fixture
def values(rng):
    return rng.lognormal(1.0, 0.5, size=1000)


@pytest.fixture
def mask(rng):
    return rng.random(1000) < 0.4


class TestTargetGeometry:
    def test_total_rows_is_prefilter(self, values, mask):
        target = EstimationTarget(values, get_aggregate("AVG"), mask=mask)
        assert target.total_sample_rows == 1000

    def test_matched_values_applies_mask(self, values, mask):
        target = EstimationTarget(values, get_aggregate("AVG"), mask=mask)
        assert len(target.matched_values) == mask.sum()

    def test_no_mask_means_all(self, values):
        target = EstimationTarget(values, get_aggregate("AVG"))
        assert len(target.matched_values) == 1000

    def test_mask_shape_validated(self, values):
        with pytest.raises(EstimationError, match="mask shape"):
            EstimationTarget(values, get_aggregate("AVG"), mask=np.ones(5, dtype=bool))

    def test_mask_dtype_validated(self, values):
        with pytest.raises(EstimationError, match="boolean"):
            EstimationTarget(values, get_aggregate("AVG"), mask=np.ones(1000))


class TestScaling:
    def test_intensive_scale_is_one(self, values):
        target = EstimationTarget(
            values, get_aggregate("AVG"), dataset_rows=10**6, extensive=False
        )
        assert target.scale_factor == 1.0

    def test_extensive_scale(self, values):
        target = EstimationTarget(
            values, get_aggregate("SUM"), dataset_rows=10**6, extensive=True
        )
        assert target.scale_factor == pytest.approx(1000.0)

    def test_extensive_without_dataset_rows_unscaled(self, values):
        target = EstimationTarget(values, get_aggregate("SUM"), extensive=True)
        assert target.scale_factor == 1.0

    def test_point_estimate_scaled_sum(self, values):
        target = EstimationTarget(
            values, get_aggregate("SUM"), dataset_rows=10**6, extensive=True
        )
        assert target.point_estimate() == pytest.approx(1000.0 * values.sum())

    def test_point_estimate_avg_unscaled(self, values, mask):
        target = EstimationTarget(
            values, get_aggregate("AVG"), mask=mask, dataset_rows=10**6
        )
        assert target.point_estimate() == pytest.approx(values[mask].mean())

    def test_count_estimates_filtered_cardinality(self, values, mask):
        target = EstimationTarget(
            values,
            get_aggregate("COUNT"),
            mask=mask,
            dataset_rows=100_000,
            extensive=True,
        )
        assert target.point_estimate() == pytest.approx(100 * mask.sum())


class TestSubset:
    def test_subset_shrinks_and_rescales(self, values):
        target = EstimationTarget(
            values, get_aggregate("SUM"), dataset_rows=10**6, extensive=True
        )
        sub = target.subset(np.arange(100))
        assert sub.total_sample_rows == 100
        assert sub.scale_factor == pytest.approx(10_000.0)

    def test_subset_slices_mask(self, values, mask):
        target = EstimationTarget(values, get_aggregate("AVG"), mask=mask)
        sub = target.subset(np.arange(50))
        assert len(sub.matched_values) == mask[:50].sum()

    def test_subset_point_estimates_are_comparable_units(self, values):
        """Extensive subsample estimates stay in full-data units."""
        target = EstimationTarget(
            values, get_aggregate("SUM"), dataset_rows=10**6, extensive=True
        )
        sub = target.subset(np.arange(500))
        # Both estimate the same |D|-level total, so they agree to within
        # sampling noise (generous factor-two band).
        assert sub.point_estimate() == pytest.approx(
            target.point_estimate(), rel=0.5
        )

    def test_resample_estimates_scaled(self, values, rng):
        target = EstimationTarget(
            values, get_aggregate("SUM"), dataset_rows=10**6, extensive=True
        )
        weights = rng.poisson(1.0, size=(1000, 8))
        stats = target.resample_estimates(weights)
        assert stats.shape == (8,)
        assert stats.mean() == pytest.approx(target.point_estimate(), rel=0.2)

    def test_zero_row_scale_rejected(self):
        target = EstimationTarget(
            np.array([]), get_aggregate("SUM"), dataset_rows=100, extensive=True
        )
        with pytest.raises(EstimationError, match="zero-row"):
            target.scale_factor
