"""The materialized catalog and MV-first router.

Covers the PR's contract from every side:

* fingerprinting — formatting variants share a fingerprint, literal
  variants share a *shape*, and structural literals stay structural;
* the two-level plan cache built on those shapes (with
  ``plan_cache.hit``/``plan_cache.miss`` metric assertions);
* exact hits replay the stored answer **bit-identically** to what a
  cold engine computes at the same seed — property-tested across
  worker counts and under injected faults;
* partial hits re-aggregate rollup-cube replicate moments and stay
  statistically consistent with the cold answer;
* staleness (table registration, new samples, TTL), persistence
  (staging → ready promotion), memory-refusal, and the
  ``REPRO_CATALOG`` kill switch that restores pre-catalog behaviour.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog import (
    CATALOG_ENV,
    CatalogConfig,
    MaterializedCatalog,
    RollupCube,
    cube_can_serve,
    materialization_hint,
    resolve_catalog_enabled,
)
from repro.core.pipeline import AQPEngine, EngineConfig
from repro.engine.table import Table
from repro.errors import CatalogError
from repro.faults import FaultPlan
from repro.governor.memory import MemoryAccountant
from repro.obs.metrics import METRICS
from repro.sql.fingerprint import fingerprint_statement
from repro.sql.parser import parse_select

ROWS = 6_000
SAMPLE = 1_500


def _sessions_table(rows: int = ROWS) -> Table:
    rng = np.random.default_rng(123)
    return Table(
        {
            "load_ms": rng.lognormal(3.0, 0.8, rows),
            "score": rng.normal(40.0, 6.0, rows),
            "city": np.char.add(
                "c", rng.integers(0, 5, rows).astype(str)
            ),
            "isp": np.char.add("i", rng.integers(0, 3, rows).astype(str)),
        },
        name="sessions",
    )


def _engine(
    catalog: bool | None = None,
    seed: int = 11,
    table: Table | None = None,
    **config_kwargs,
) -> AQPEngine:
    engine = AQPEngine(
        config=EngineConfig(catalog=catalog, **config_kwargs), seed=seed
    )
    engine.register_table("sessions", table or _sessions_table())
    engine.create_sample("sessions", size=SAMPLE, name="s")
    return engine


def _nan_safe(number):
    if isinstance(number, float) and np.isnan(number):
        return "nan"
    return number


def _snapshot(result):
    """Everything observable about an answer, in comparable form."""
    rows = []
    for row in result.rows:
        values = {}
        for name, value in row.values.items():
            interval = value.interval
            diagnostic = value.diagnostic
            values[name] = (
                _nan_safe(value.estimate),
                None
                if interval is None
                else (
                    _nan_safe(interval.lower),
                    _nan_safe(interval.upper),
                    interval.method,
                ),
                value.method,
                value.fell_back,
                None if diagnostic is None else diagnostic.passed,
            )
        rows.append((tuple(sorted(row.group.items())), values))
    return rows


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------


class TestFingerprint:
    def _fp(self, sql):
        return fingerprint_statement(parse_select(sql))

    def test_formatting_variants_share_fingerprint(self):
        a = self._fp("SELECT AVG(x) FROM t WHERE y > 5")
        b = self._fp("select avg(x)  from t\n where y > 5")
        assert a == b

    def test_literal_variants_share_shape_not_bindings(self):
        a = self._fp("SELECT AVG(x) FROM t WHERE city = 'nyc'")
        b = self._fp("SELECT AVG(x) FROM t WHERE city = 'sf'")
        assert a.shape == b.shape
        assert a.bindings == ("nyc",)
        assert b.bindings == ("sf",)
        assert "?" in a.shape and "'nyc'" not in a.shape

    def test_different_predicates_differ(self):
        a = self._fp("SELECT AVG(x) FROM t WHERE y > 5")
        b = self._fp("SELECT AVG(x) FROM t WHERE y < 5")
        assert a.shape != b.shape

    def test_select_list_literals_stay_structural(self):
        a = self._fp("SELECT PERCENTILE(x, 0.5) FROM t")
        b = self._fp("SELECT PERCENTILE(x, 0.99) FROM t")
        assert a.shape != b.shape
        assert a.bindings == () and b.bindings == ()

    def test_like_patterns_stay_structural(self):
        a = self._fp("SELECT COUNT(*) FROM t WHERE name LIKE 'a%'")
        b = self._fp("SELECT COUNT(*) FROM t WHERE name LIKE 'b%'")
        assert a.shape != b.shape

    def test_in_list_and_between_bind(self):
        a = self._fp(
            "SELECT SUM(x) FROM t WHERE y IN (1, 2) AND z BETWEEN 3 AND 9"
        )
        b = self._fp(
            "SELECT SUM(x) FROM t WHERE y IN (7, 8) AND z BETWEEN 0 AND 4"
        )
        assert a.shape == b.shape
        assert a.bindings == (1, 2, 3, 9)
        assert b.bindings == (7, 8, 0, 4)

    def test_nested_queries_not_rebindable(self):
        fp = self._fp(
            "SELECT AVG(x) FROM (SELECT x FROM t WHERE y > 5) AS sub"
        )
        assert not fp.rebindable
        assert fp.bindings == ()


# ---------------------------------------------------------------------------
# Two-level plan cache (satellite: keyed on canonical shape, not raw SQL)
# ---------------------------------------------------------------------------


class TestPlanCacheShapes:
    def test_literal_variant_is_a_cache_hit(self):
        engine = _engine()
        METRICS.reset()
        engine.analyze_sql("SELECT AVG(load_ms) FROM sessions WHERE city = 'c0'")
        snap = METRICS.snapshot()
        assert snap["plan_cache.miss"]["value"] == 1
        engine.analyze_sql("SELECT AVG(load_ms) FROM sessions WHERE city = 'c1'")
        engine.analyze_sql("SELECT AVG(load_ms) FROM sessions WHERE city = 'c2'")
        snap = METRICS.snapshot()
        assert snap["plan_cache.hit"]["value"] == 2
        assert snap["plan_cache.miss"]["value"] == 1

    def test_formatting_variant_is_a_cache_hit(self):
        engine = _engine()
        METRICS.reset()
        engine.analyze_sql("SELECT AVG(load_ms) FROM sessions WHERE score > 42")
        engine.analyze_sql(
            "select avg(load_ms) from sessions  where score > 42"
        )
        snap = METRICS.snapshot()
        assert snap["plan_cache.hit"]["value"] == 1
        assert snap["plan_cache.miss"]["value"] == 1

    def test_rebound_plan_carries_the_new_literal(self):
        engine = _engine()
        r0 = engine.execute(
            "SELECT COUNT(*) FROM sessions WHERE city = 'c0'"
        )
        r1 = engine.execute(
            "SELECT COUNT(*) FROM sessions WHERE city = 'c1'"
        )
        # Different literals must give different answers even though the
        # second analysis reused the first's template.
        assert r0.single().estimate != r1.single().estimate

    def test_exact_sql_repeat_stays_identity_cached(self):
        engine = _engine()
        a = engine.analyze_sql("SELECT AVG(load_ms) FROM sessions")
        b = engine.analyze_sql("SELECT AVG(load_ms) FROM sessions")
        assert a is b
        assert engine.plan_cache_info()["hits"] == 1


# ---------------------------------------------------------------------------
# Exact hits: bit-identical replay
# ---------------------------------------------------------------------------

_PROPERTY_QUERIES = (
    "SELECT AVG(load_ms) FROM sessions WHERE city = '{city}'",
    "SELECT COUNT(*) FROM sessions WHERE city = '{city}'",
    "SELECT SUM(score) FROM sessions WHERE isp = 'i1'",
    "SELECT city, COUNT(*) FROM sessions GROUP BY city",
    "SELECT AVG(score) FROM sessions",
)


class TestExactHitBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("faults", [None, "rate:0.05"])
    @settings(max_examples=5, deadline=None)
    @given(
        template=st.sampled_from(_PROPERTY_QUERIES),
        city=st.sampled_from(["c0", "c1", "c3"]),
    )
    def test_replay_matches_cold_path(self, workers, faults, template, city):
        """Catalog-on answers — first run and exact-hit replay — are
        bit-identical to a catalog-off engine at the same seed, at any
        worker count, with and without injected faults."""
        sql = template.format(city=city)
        plan = (
            FaultPlan.from_spec(faults, seed=5) if faults else None
        )
        table = _sessions_table()
        cold = _engine(
            catalog=False,
            table=table,
            num_workers=workers,
            fault_plan=plan,
        )
        warm = _engine(
            catalog=True,
            table=table,
            num_workers=workers,
            fault_plan=plan,
        )
        with cold, warm:
            reference = _snapshot(cold.execute(sql))
            first = warm.execute(sql)
            assert first.catalog_route == "miss"
            assert _snapshot(first) == reference
            replay = warm.execute(sql)
            assert replay.catalog_route == "exact"
            assert _snapshot(replay) == reference

    def test_replay_preserves_result_metadata(self):
        engine = _engine(catalog=True)
        sql = "SELECT AVG(load_ms) FROM sessions"
        first = engine.execute(sql)
        replay = engine.execute(sql)
        assert replay.bootstrap_subqueries == first.bootstrap_subqueries
        assert replay.diagnostic_subqueries == first.diagnostic_subqueries
        assert replay.sample.name == first.sample.name

    def test_execution_parameters_split_the_key(self):
        engine = _engine(catalog=True)
        sql = "SELECT AVG(load_ms) FROM sessions"
        engine.execute(sql)
        other = engine.execute(sql, confidence=0.99)
        assert other.catalog_route == "miss"
        assert engine.execute(sql, confidence=0.99).catalog_route == "exact"


# ---------------------------------------------------------------------------
# Partial hits: cube re-aggregation
# ---------------------------------------------------------------------------


class TestCubeServing:
    def test_partial_hit_consistent_with_cold_answer(self):
        table = _sessions_table()
        warm = _engine(catalog=True, table=table)
        warm.materialize("sessions", ("city", "isp"))
        cold = _engine(catalog=False, table=table)
        sql = "SELECT COUNT(*) FROM sessions WHERE city = 'c2'"
        served = warm.execute(sql, run_diagnostics=False)
        assert served.catalog_route == "partial"
        reference = cold.execute(sql, run_diagnostics=False)
        value = served.single()
        ref = reference.single()
        # Same sample, same groups: the cube's point estimate is the
        # plug-in estimate on the identical rows — equal up to float
        # reassociation — and the bootstrap CI must overlap generously.
        assert value.estimate == pytest.approx(ref.estimate, rel=1e-9)
        assert value.interval.half_width == pytest.approx(
            ref.interval.half_width, rel=0.5
        )

    def test_grouped_rollup_served_from_cube(self):
        engine = _engine(catalog=True)
        engine.materialize("sessions", ("city", "isp"))
        result = engine.execute(
            "SELECT city, AVG(score) FROM sessions GROUP BY city",
            run_diagnostics=False,
        )
        assert result.catalog_route == "partial"
        assert sorted(row.group["city"] for row in result.rows) == [
            "c0", "c1", "c2", "c3", "c4",
        ]

    def test_partial_hits_never_store(self):
        engine = _engine(catalog=True)
        engine.materialize("sessions", ("city", "isp"))
        sql = "SELECT COUNT(*) FROM sessions WHERE isp = 'i0'"
        assert engine.execute(
            sql, run_diagnostics=False
        ).catalog_route == "partial"
        assert engine.execute(
            sql, run_diagnostics=False
        ).catalog_route == "partial"

    def test_unservable_shapes_fall_through(self):
        engine = _engine(catalog=True)
        engine.materialize("sessions", ("city", "isp"))
        result = engine.execute(
            "SELECT PERCENTILE(load_ms, 0.9) FROM sessions "
            "WHERE city = 'c0'",
            run_diagnostics=False,
        )
        assert result.catalog_route == "miss"

    def test_predicate_outside_dims_falls_through(self):
        engine = _engine(catalog=True)
        engine.materialize("sessions", ("city",))
        result = engine.execute(
            "SELECT COUNT(*) FROM sessions WHERE isp = 'i0'",
            run_diagnostics=False,
        )
        assert result.catalog_route == "miss"

    def test_structural_servability(self):
        engine = _engine(catalog=True)
        cube = engine.materialize("sessions", ("city", "isp"))
        servable = engine.analyze_sql(
            "SELECT city, AVG(score) FROM sessions GROUP BY city"
        )
        assert cube_can_serve(cube, servable)
        for sql in (
            "SELECT MAX(score) FROM sessions",
            "SELECT COUNT(*) FROM sessions WHERE score > 10",
            "SELECT city, COUNT(*) FROM sessions GROUP BY city "
            "HAVING COUNT(*) > 2",
        ):
            assert not cube_can_serve(cube, engine.analyze_sql(sql))

    def test_materialization_hint_recipe(self):
        engine = _engine()
        hint = materialization_hint(
            engine.analyze_sql(
                "SELECT isp, AVG(score) FROM sessions "
                "WHERE city = 'c0' GROUP BY isp"
            )
        )
        assert hint == ("sessions", ("isp", "city"), ("score",))
        assert (
            materialization_hint(
                engine.analyze_sql("SELECT MAX(score) FROM sessions")
            )
            is None
        )

    def test_repeated_misses_enqueue_then_materialize(self):
        engine = _engine(
            catalog=True,
            catalog_config=CatalogConfig(auto_materialize_after=2),
        )
        base = "SELECT AVG(score) FROM sessions WHERE city = '{}'"
        # Same shape, rotating literals: repeated misses of one shape.
        for i, city in enumerate(["c0", "c1"]):
            engine.execute(base.format(city), run_diagnostics=False)
        assert engine.catalog_info()["queued_materializations"] == 1
        built = engine.process_materialization_queue()
        assert [cube.dims for cube in built] == [("city",)]
        assert engine.catalog_info()["queued_materializations"] == 0
        served = engine.execute(base.format("c3"), run_diagnostics=False)
        assert served.catalog_route == "partial"


# ---------------------------------------------------------------------------
# Staleness and invalidation
# ---------------------------------------------------------------------------


class TestInvalidation:
    def test_register_table_drops_entries_and_cubes(self):
        table = _sessions_table()
        engine = _engine(catalog=True, table=table)
        engine.materialize("sessions", ("city",))
        sql = "SELECT AVG(load_ms) FROM sessions"
        engine.execute(sql)
        assert engine.execute(sql).catalog_route == "exact"
        engine.register_table("sessions", table)
        engine.create_sample("sessions", size=SAMPLE, name="s")
        info = engine.catalog_info()
        assert info["entries"] == 0 and info["cubes"] == 0
        assert engine.execute(sql).catalog_route == "miss"

    def test_new_sample_invalidates(self):
        engine = _engine(catalog=True)
        sql = "SELECT AVG(load_ms) FROM sessions"
        engine.execute(sql)
        engine.create_sample("sessions", size=SAMPLE // 2, name="s2")
        assert engine.execute(sql).catalog_route == "miss"

    def test_ttl_expiry(self):
        engine = _engine(
            catalog=True,
            catalog_config=CatalogConfig(ttl_seconds=0.05),
        )
        sql = "SELECT AVG(load_ms) FROM sessions"
        engine.execute(sql)
        assert engine.execute(sql).catalog_route == "exact"
        time.sleep(0.06)
        METRICS.reset()
        assert engine.execute(sql).catalog_route == "miss"
        assert METRICS.snapshot()["catalog.expirations"]["value"] == 1


# ---------------------------------------------------------------------------
# Persistence: staging -> ready promotion
# ---------------------------------------------------------------------------


class TestPersistence:
    def test_save_promotes_atomically(self, tmp_path):
        engine = _engine(catalog=True)
        cube = engine.materialize("sessions", ("city",))
        path = cube.save(tmp_path)
        assert path.parent.name == "ready"
        assert list((tmp_path / "staging").iterdir()) == []
        loaded = RollupCube.load(path)
        assert loaded.dims == ("city",)
        assert loaded.num_cells == cube.num_cells
        np.testing.assert_array_equal(loaded.counts, cube.counts)
        np.testing.assert_allclose(
            loaded.rep_sums["score"], cube.rep_sums["score"]
        )

    def test_engine_persists_and_reloads(self, tmp_path):
        config = CatalogConfig(directory=str(tmp_path))
        engine = _engine(catalog=True, catalog_config=config)
        engine.materialize("sessions", ("city", "isp"))

        fresh = _engine(catalog=True, catalog_config=config)
        assert fresh.mv_catalog.load_cubes() == 1
        served = fresh.execute(
            "SELECT COUNT(*) FROM sessions WHERE city = 'c1'",
            run_diagnostics=False,
        )
        assert served.catalog_route == "partial"

    def test_loaded_cube_without_sample_declines_diagnostics(self, tmp_path):
        config = CatalogConfig(directory=str(tmp_path))
        engine = _engine(catalog=True, catalog_config=config)
        engine.materialize("sessions", ("city",))
        fresh = _engine(catalog=True, catalog_config=config)
        fresh.mv_catalog.load_cubes()
        # With diagnostics requested, a cube with no row-level sample
        # attached cannot validate the answer, so it must fall through.
        result = fresh.execute(
            "SELECT COUNT(*) FROM sessions WHERE city = 'c1'"
        )
        assert result.catalog_route == "miss"


# ---------------------------------------------------------------------------
# Memory governance
# ---------------------------------------------------------------------------


class TestMemoryGovernance:
    def test_store_refusal_is_not_an_error(self):
        catalog = MaterializedCatalog(
            memory=MemoryAccountant(budget_bytes=1)
        )
        engine = _engine(catalog=True)
        sql = "SELECT AVG(load_ms) FROM sessions"
        engine.mv_catalog = catalog
        METRICS.reset()
        result = engine.execute(sql)
        assert result.catalog_route == "miss"
        assert engine.execute(sql).catalog_route == "miss"
        assert (
            METRICS.snapshot()["catalog.store_rejected"]["value"] == 2
        )

    def test_eviction_releases_reservations(self):
        memory = MemoryAccountant(budget_bytes=1 << 20)
        catalog = MaterializedCatalog(
            memory=memory,
            config=CatalogConfig(max_result_entries=2),
        )
        engine = _engine(catalog=True)
        engine.mv_catalog = catalog
        for i in range(4):
            engine.execute(
                f"SELECT AVG(load_ms) FROM sessions WHERE score > {40 + i}"
            )
        assert engine.catalog_info()["entries"] == 2
        # Two entries' reservations remain; the evicted ones released.
        assert memory.used_bytes == catalog.info()["bytes"]


# ---------------------------------------------------------------------------
# The kill switch
# ---------------------------------------------------------------------------


class TestKillSwitch:
    def test_env_off_matches_catalog_disabled(self, monkeypatch):
        monkeypatch.setenv(CATALOG_ENV, "off")
        table = _sessions_table()
        env_off = _engine(table=table)
        explicit_off = _engine(catalog=False, table=table)
        sql = "SELECT AVG(load_ms) FROM sessions WHERE city = 'c0'"
        a = env_off.execute(sql)
        b = explicit_off.execute(sql)
        assert a.catalog_route is None and b.catalog_route is None
        assert _snapshot(a) == _snapshot(b)
        # Repeats recompute; nothing is stored or counted.
        assert env_off.execute(sql).catalog_route is None
        assert env_off.catalog_info()["enabled"] is False
        assert env_off.catalog_info()["entries"] == 0

    def test_env_values(self, monkeypatch):
        for value in ("on", "1", "true"):
            monkeypatch.setenv(CATALOG_ENV, value)
            assert resolve_catalog_enabled(None) is True
        for value in ("off", "0", "false"):
            monkeypatch.setenv(CATALOG_ENV, value)
            assert resolve_catalog_enabled(None) is False
        monkeypatch.delenv(CATALOG_ENV)
        assert resolve_catalog_enabled(None) is True
        assert resolve_catalog_enabled(False) is False
        monkeypatch.setenv(CATALOG_ENV, "sideways")
        with pytest.raises(CatalogError):
            resolve_catalog_enabled(None)

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv(CATALOG_ENV, "off")
        engine = _engine(catalog=True)
        sql = "SELECT AVG(load_ms) FROM sessions"
        engine.execute(sql)
        assert engine.execute(sql).catalog_route == "exact"


# ---------------------------------------------------------------------------
# Bench harness guard (satellite: unmatched baseline keys warn loudly)
# ---------------------------------------------------------------------------


class TestCompareBenches:
    def test_unmatched_keys_are_reported_not_passed(self):
        import sys
        from pathlib import Path

        sys.path.insert(
            0, str(Path(__file__).resolve().parent.parent / "benchmarks")
        )
        from record_bench import compare_benches

        comparison, regressions, unmatched = compare_benches(
            {"known": 0.10, "brand_new": 0.5},
            {"known": 0.10, "retired": 0.2},
        )
        assert regressions == []
        assert sorted(unmatched) == ["brand_new", "retired"]
        assert comparison["brand_new"]["baseline"] is None
        assert comparison["brand_new"]["regression"] is False

    def test_regression_detection_still_fires(self):
        import sys
        from pathlib import Path

        sys.path.insert(
            0, str(Path(__file__).resolve().parent.parent / "benchmarks")
        )
        from record_bench import compare_benches

        __, regressions, unmatched = compare_benches(
            {"bench": 1.0}, {"bench": 0.5}
        )
        assert regressions == ["bench"]
        assert unmatched == []
