"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.cluster.simulator import _lpt_makespan
from repro.core.ci import symmetric_half_width
from repro.core.ground_truth import Verdict, classify_deltas
from repro.engine import Table, concat_tables
from repro.engine.aggregates import (
    AvgAggregate,
    CountAggregate,
    MaxAggregate,
    MinAggregate,
    PercentileAggregate,
    SumAggregate,
    VarianceAggregate,
    weighted_quantile,
)
from repro.sql import ast
from repro.sql.parser import parse

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

value_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=60),
    elements=finite_floats,
)


@st.composite
def values_with_weights(draw):
    values = draw(value_arrays)
    weights = draw(
        hnp.arrays(
            dtype=np.int64,
            shape=len(values),
            elements=st.integers(min_value=0, max_value=5),
        )
    )
    return values, weights


class TestWeightedAggregatesMatchExpansion:
    """compute(values, weights) ≡ compute(np.repeat(values, weights))."""

    @given(values_with_weights())
    @settings(max_examples=60)
    def test_sum(self, data):
        values, weights = data
        expanded = np.repeat(values, weights)
        assert np.isclose(
            SumAggregate().compute(values, weights),
            expanded.sum(),
            rtol=1e-9,
            atol=1e-6,
        )

    @given(values_with_weights())
    @settings(max_examples=60)
    def test_count(self, data):
        values, weights = data
        assert CountAggregate().compute(values, weights) == weights.sum()

    @given(values_with_weights())
    @settings(max_examples=60)
    def test_avg(self, data):
        values, weights = data
        expanded = np.repeat(values, weights)
        result = AvgAggregate().compute(values, weights)
        if len(expanded) == 0:
            assert np.isnan(result)
        else:
            assert np.isclose(result, expanded.mean(), rtol=1e-9, atol=1e-6)

    @given(values_with_weights())
    @settings(max_examples=60)
    def test_variance(self, data):
        values, weights = data
        expanded = np.repeat(values, weights)
        result = VarianceAggregate().compute(values, weights)
        if len(expanded) < 2:
            assert np.isnan(result)
        else:
            assert np.isclose(
                result, expanded.var(ddof=1), rtol=1e-7, atol=1e-5
            )

    @given(values_with_weights())
    @settings(max_examples=60)
    def test_min_max(self, data):
        values, weights = data
        expanded = np.repeat(values, weights)
        min_result = MinAggregate().compute(values, weights)
        max_result = MaxAggregate().compute(values, weights)
        if len(expanded) == 0:
            assert np.isnan(min_result) and np.isnan(max_result)
        else:
            assert min_result == expanded.min()
            assert max_result == expanded.max()

    @given(
        values_with_weights(),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60)
    def test_quantile(self, data, fraction):
        values, weights = data
        expanded = np.repeat(values, weights)
        result = weighted_quantile(values, weights.astype(float), fraction)
        if len(expanded) == 0:
            assert np.isnan(result)
        else:
            assert result == np.quantile(
                expanded, fraction, method="inverted_cdf"
            )


class TestPartialAggregationInvariants:
    """Split-merge must equal whole-array evaluation at any split point."""

    @given(values_with_weights(), st.integers(min_value=0, max_value=60))
    @settings(max_examples=60)
    def test_split_anywhere(self, data, raw_split):
        values, weights = data
        split = min(raw_split, len(values))
        for aggregate in (SumAggregate(), AvgAggregate(), VarianceAggregate()):
            whole = aggregate.compute(values, weights)
            left = aggregate.make_state(values[:split], weights[:split])
            right = aggregate.make_state(values[split:], weights[split:])
            merged = aggregate.finalize_state(
                aggregate.merge_states(left, right)
            )
            if np.isnan(whole):
                assert np.isnan(merged)
            else:
                # Raw-moment merging carries cancellation error on the
                # scale of values² · machine epsilon.
                scale_atol = 1e-9 * (1.0 + float(np.abs(values).max()) ** 2)
                assert np.isclose(
                    merged, whole, rtol=1e-7, atol=max(1e-5, scale_atol)
                )

    @given(values_with_weights())
    @settings(max_examples=40)
    def test_merge_commutative(self, data):
        values, weights = data
        split = len(values) // 2
        aggregate = VarianceAggregate()
        left = aggregate.make_state(values[:split], weights[:split])
        right = aggregate.make_state(values[split:], weights[split:])
        forward = aggregate.merge_states(left, right)
        backward = aggregate.merge_states(right, left)
        assert np.allclose(forward, backward)


class TestSymmetricIntervalProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=5, max_value=200),
            elements=finite_floats,
        ),
        st.floats(min_value=0.05, max_value=0.99),
    )
    @settings(max_examples=80)
    def test_coverage_at_least_alpha(self, distribution, confidence):
        center = float(np.median(distribution))
        half = symmetric_half_width(distribution, center, confidence)
        covered = np.mean(np.abs(distribution - center) <= half)
        assert covered >= confidence - 1e-12

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=5, max_value=100),
            elements=finite_floats,
        )
    )
    @settings(max_examples=60)
    def test_monotone_in_confidence(self, distribution):
        center = float(distribution.mean())
        narrow = symmetric_half_width(distribution, center, 0.5)
        wide = symmetric_half_width(distribution, center, 0.95)
        assert wide >= narrow


class TestClassifyDeltasProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=100),
            elements=st.floats(
                min_value=-0.19, max_value=0.19,
                allow_nan=False, allow_infinity=False,
            ),
        )
    )
    @settings(max_examples=50)
    def test_in_band_always_correct(self, deltas):
        assert classify_deltas(deltas) is Verdict.CORRECT

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=100),
            elements=st.floats(
                min_value=0.21, max_value=10.0,
                allow_nan=False, allow_infinity=False,
            ),
        )
    )
    @settings(max_examples=50)
    def test_all_above_band_pessimistic(self, deltas):
        assert classify_deltas(deltas) is Verdict.PESSIMISTIC

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=100),
            elements=st.floats(
                min_value=-10.0, max_value=10.0,
                allow_nan=False, allow_infinity=False,
            ),
        )
    )
    @settings(max_examples=50)
    def test_negation_swaps_failure_direction(self, deltas):
        verdict = classify_deltas(deltas)
        mirrored = classify_deltas(-deltas)
        swap = {
            Verdict.PESSIMISTIC: Verdict.OPTIMISTIC,
            Verdict.OPTIMISTIC: Verdict.PESSIMISTIC,
            Verdict.CORRECT: Verdict.CORRECT,
        }
        # Ties (equal exceedance both sides) resolve to OPTIMISTIC on
        # both, so allow the tie case through.
        if verdict is not mirrored:
            assert mirrored is swap[verdict]


class TestTableInvariants:
    @given(value_arrays, st.data())
    @settings(max_examples=50)
    def test_filter_row_count(self, values, data):
        table = Table({"v": values})
        mask = data.draw(
            hnp.arrays(dtype=np.bool_, shape=len(values))
        )
        assert table.filter(mask).num_rows == int(mask.sum())

    @given(value_arrays, st.integers(min_value=1, max_value=7))
    @settings(max_examples=50)
    def test_partition_concat_round_trip(self, values, parts):
        table = Table({"v": values})
        reassembled = concat_tables(table.partition(parts))
        assert reassembled == table

    @given(value_arrays, st.integers(min_value=1, max_value=20))
    @settings(max_examples=50)
    def test_partition_rows_covers_everything(self, values, rows_per_part):
        table = Table({"v": values})
        parts = table.partition_rows(rows_per_part)
        assert sum(p.num_rows for p in parts) == table.num_rows
        assert all(p.num_rows <= rows_per_part for p in parts)


class TestLptMakespanBounds:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=60),
            elements=st.floats(
                min_value=0.001, max_value=100.0,
                allow_nan=False, allow_infinity=False,
            ),
        ),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60)
    def test_bounds(self, durations, slots):
        makespan = _lpt_makespan(durations, slots)
        # Lower bounds: the longest task, and perfect load balance.
        assert makespan >= durations.max() - 1e-9
        assert makespan >= durations.sum() / slots - 1e-9
        # Upper bound: the LPT guarantee (sum/slots + max).
        assert makespan <= durations.sum() / slots + durations.max() + 1e-9


class TestParserRoundTripProperty:
    """Randomly composed queries survive a parse → print → parse cycle."""

    identifiers = st.sampled_from(["a", "b", "c", "col_1", "value"])
    numbers = st.integers(min_value=0, max_value=999)

    @st.composite
    def simple_query(draw):
        agg = draw(st.sampled_from(["AVG", "SUM", "COUNT", "MIN", "MAX"]))
        column = draw(TestParserRoundTripProperty.identifiers)
        table = draw(st.sampled_from(["t", "sessions", "events"]))
        argument = "*" if agg == "COUNT" and draw(st.booleans()) else column
        sql = f"SELECT {agg}({argument}) FROM {table}"
        if draw(st.booleans()):
            threshold = draw(TestParserRoundTripProperty.numbers)
            op = draw(st.sampled_from([">", "<", "=", ">=", "<=", "!="]))
            other = draw(TestParserRoundTripProperty.identifiers)
            sql += f" WHERE {other} {op} {threshold}"
        if draw(st.booleans()):
            key = draw(TestParserRoundTripProperty.identifiers)
            sql += f" GROUP BY {key}"
        return sql

    @given(simple_query())
    @settings(max_examples=100)
    def test_round_trip(self, sql):
        first = parse(sql)
        second = parse(first.to_sql())
        assert first == second
        assert isinstance(first, ast.SelectStatement)
