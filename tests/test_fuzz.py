"""Fuzz-style robustness tests: garbage in, clean exceptions out."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.sql.lexer import tokenize
from repro.sql.parser import parse


class TestLexerNeverCrashes:
    @given(st.text(max_size=200))
    @settings(max_examples=200)
    def test_arbitrary_text(self, text):
        try:
            tokens = tokenize(text)
        except ReproError:
            return  # a clean, library-typed rejection
        # On success the stream must be EOF-terminated and positionally
        # ordered.
        positions = [t.position for t in tokens]
        assert positions == sorted(positions)

    @given(st.text(alphabet="SELECT FROMWHERE()*,.'0123456789abc<>=", max_size=120))
    @settings(max_examples=200)
    def test_sqlish_text(self, text):
        try:
            tokenize(text)
        except ReproError:
            pass


class TestParserNeverCrashes:
    @given(st.text(max_size=150))
    @settings(max_examples=150)
    def test_arbitrary_text(self, text):
        try:
            parse(text)
        except ReproError:
            pass  # TokenizeError/ParseError are the contract

    @given(
        st.lists(
            st.sampled_from(
                [
                    "SELECT", "FROM", "WHERE", "GROUP", "BY", "AND", "OR",
                    "AVG(x)", "COUNT(*)", "t", "x", ",", "(", ")", "1",
                    "'s'", "=", ">", "UNION", "ALL", "AS", "y",
                ]
            ),
            max_size=15,
        )
    )
    @settings(max_examples=200)
    def test_token_soup(self, words):
        try:
            parse(" ".join(words))
        except ReproError:
            pass


class TestEngineRejectsGarbageCleanly:
    @pytest.fixture
    def engine(self, rng):
        from repro.core.pipeline import AQPEngine
        from repro.engine import Table

        engine = AQPEngine(seed=1)
        engine.register_table("t", Table({"v": rng.normal(size=5000)}))
        engine.create_sample("t", size=2000, name="s")
        return engine

    @pytest.mark.parametrize(
        "bad_sql",
        [
            "",
            "SELECT",
            "SELECT AVG(v FROM t",
            "SELECT AVG(nope) FROM t",
            "SELECT AVG(v) FROM missing_table",
            "SELECT v FROM t",  # non-aggregate
            "DROP TABLE t",
            "SELECT AVG(v) FROM t WHERE frobnicate(v) > 1",
            "SELECT AVG(v) FROM t GROUP BY",
        ],
    )
    def test_bad_queries_raise_library_errors(self, engine, bad_sql):
        with pytest.raises(ReproError):
            engine.execute(bad_sql)
