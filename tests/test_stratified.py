"""Unit tests for stratified sampling."""

import numpy as np
import pytest

from repro.engine import Table
from repro.errors import SamplingError
from repro.sampling import (
    SCALE_COLUMN,
    stratified_estimate_count,
    stratified_estimate_sum,
    stratified_group_presence,
    stratified_sample,
)


@pytest.fixture
def skewed_table(rng):
    """A table with one huge group and several rare ones."""
    sizes = {"whale": 50_000, "mid": 3_000, "rare_a": 40, "rare_b": 7}
    groups = np.concatenate(
        [np.full(size, name) for name, size in sizes.items()]
    )
    n = len(groups)
    table = Table(
        {
            "grp": groups,
            "v": rng.lognormal(2.0, 0.5, n),
        }
    )
    return table.take(rng.permutation(n))


class TestStratifiedSample:
    def test_cap_respected(self, skewed_table, rng):
        sample, info = stratified_sample(skewed_table, "grp", cap=500, rng=rng)
        keys, counts = np.unique(sample.column("grp"), return_counts=True)
        assert counts.max() <= 500
        assert info.num_strata == 4

    def test_rare_groups_fully_kept(self, skewed_table, rng):
        sample, __ = stratified_sample(skewed_table, "grp", cap=500, rng=rng)
        keys, counts = np.unique(sample.column("grp"), return_counts=True)
        by_key = dict(zip(keys, counts))
        assert by_key["rare_a"] == 40
        assert by_key["rare_b"] == 7

    def test_all_groups_present(self, skewed_table, rng):
        """The BlinkDB guarantee a uniform sample cannot give."""
        sample, __ = stratified_sample(skewed_table, "grp", cap=100, rng=rng)
        assert stratified_group_presence(sample, "grp") == 4
        # Contrast: a uniform sample of the same size usually misses the
        # 7-row group.
        uniform = skewed_table.sample_rows(sample.num_rows, rng)
        # (probabilistic, but with 7/53047 odds per row the expectation
        # is clear; we only assert the stratified guarantee.)
        assert "rare_b" in set(sample.column("grp"))

    def test_scale_column_attached(self, skewed_table, rng):
        sample, __ = stratified_sample(skewed_table, "grp", cap=500, rng=rng)
        assert SCALE_COLUMN in sample
        scales = sample.column(SCALE_COLUMN)
        assert (scales >= 1.0).all()
        # Fully-kept strata carry scale exactly 1.
        rare_scales = scales[sample.column("grp") == "rare_b"]
        np.testing.assert_allclose(rare_scales, 1.0)

    def test_ht_count_unbiased(self, skewed_table, rng):
        sample, __ = stratified_sample(skewed_table, "grp", cap=500, rng=rng)
        estimate = stratified_estimate_count(sample)
        assert estimate == pytest.approx(skewed_table.num_rows, rel=1e-9)

    def test_ht_sum_estimate_close(self, skewed_table, rng):
        sample, __ = stratified_sample(skewed_table, "grp", cap=2000, rng=rng)
        estimate = stratified_estimate_sum(sample, "v")
        truth = skewed_table.column("v").sum()
        assert estimate == pytest.approx(truth, rel=0.05)

    def test_ht_count_with_mask(self, skewed_table, rng):
        sample, __ = stratified_sample(skewed_table, "grp", cap=500, rng=rng)
        mask = sample.column("grp") == "whale"
        estimate = stratified_estimate_count(sample, mask)
        assert estimate == pytest.approx(50_000, rel=0.02)

    def test_invalid_cap(self, skewed_table, rng):
        with pytest.raises(SamplingError):
            stratified_sample(skewed_table, "grp", cap=0, rng=rng)

    def test_sample_is_shuffled(self, skewed_table, rng):
        sample, __ = stratified_sample(skewed_table, "grp", cap=500, rng=rng)
        # Strata must not be contiguous blocks: the first cap rows should
        # mix groups.
        head_groups = set(sample.head(200).column("grp"))
        assert len(head_groups) > 1
