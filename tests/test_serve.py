"""The serving tier: protocol, journal, fairness, deadlines, drain.

Covers the serving-tier restatement of the honesty contract — **an
accepted query is never silent** — plus the satellites that ride on it:

* line-protocol framing failures are typed (:class:`ProtocolError`),
  never crashes;
* the serving journal survives torn tails, recovers in-flight queries
  as honest ``lost`` outcomes, and compacts atomically;
* the weighted fair queue dispatches in virtual-finish-time order and
  per-tenant rate windows compute exact retry-afters;
* client deadlines propagate end to end (clock-skew clamped), and a
  deadline that expires *while queued* is a typed rejection — the
  query never executes;
* Ctrl-C / client cancel of a queued query removes it cleanly;
* identical concurrent queries share one execution with bit-identical
  fan-out, and a leader failure is isolated from its followers;
* graceful drain finishes in-flight work bit-identically, rejects
  queued work with a retry-after, and leaks nothing (no shm segments,
  no reservations, no staging orphans) across a restart;
* the governor's admission queue distinguishes deadline expiry from
  explicit cancel, each typed, neither feeding the breaker.
"""

from __future__ import annotations

import glob
import json
import os
import socket
import threading
import time
import types
from pathlib import Path

import numpy as np
import pytest

from repro.core.pipeline import AQPEngine, EngineConfig
from repro.engine.table import Table
from repro.errors import (
    AdmissionRejectedError,
    ProtocolError,
    QueryCancelledError,
)
from repro.governor import CancelToken, GovernorConfig, QueryGovernor
from repro.obs.metrics import METRICS
from repro.parallel.shm import SEGMENT_PREFIX
from repro.serve import (
    AQPServer,
    ServeClient,
    ServeConfig,
    ServerThread,
    ServingJournal,
    TenantConfig,
)
from repro.serve import protocol
from repro.serve.client import RemoteQueryError
from repro.serve.tenants import FairQueue, TenantState
from repro.sql.fingerprint import share_key


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------
def _make_engine(seed: int = 7) -> AQPEngine:
    rng = np.random.default_rng(99)
    engine = AQPEngine(
        config=EngineConfig(tracing=False, run_diagnostics=False), seed=seed
    )
    engine.register_table(
        "t",
        Table(
            {
                "x": rng.lognormal(3.0, 1.0, 4000),
                "g": rng.integers(0, 3, 4000).astype(np.float64),
            }
        ),
    )
    engine.create_sample("t", size=1500)
    return engine


class _FakeValue:
    def __init__(self, name="v", estimate=1.0):
        self.name = name
        self.estimate = estimate
        self.interval = None
        self.method = "stub"
        self.fell_back = False
        self.fallback_reason = ""


class _FakeRow:
    def __init__(self):
        self.group = {}
        self.values = {"v": _FakeValue()}


class _FakeResult:
    def __init__(self):
        self.rows = [_FakeRow()]
        self.sample = None
        self.elapsed_seconds = 0.0
        self.degraded = False
        self.execution_report = None
        self.catalog_route = None


class _StubEngine:
    """A controllable engine: ``sleep:X`` blocks X seconds (cancellable),
    ``fail`` raises, anything else returns instantly."""

    def __init__(self):
        self.config = types.SimpleNamespace(memory_wait_seconds=0.2)
        self.memory = None

    def execute(self, sql, cancel=None, degradation=None, **kwargs):
        if sql.startswith("sleep:"):
            seconds = float(sql.split(":", 1)[1])
            deadline = time.monotonic() + seconds
            while time.monotonic() < deadline:
                if cancel is not None:
                    cancel.check()
                time.sleep(0.01)
        if sql == "fail":
            raise ValueError("stub failure")
        return _FakeResult()

    def close(self):
        pass


def _stub_server(
    config: ServeConfig | None = None, max_concurrency: int = 1
) -> ServerThread:
    governor = QueryGovernor(
        _StubEngine, GovernorConfig(max_concurrency=max_concurrency)
    )
    return ServerThread(governor, config or ServeConfig())


def _counter(name: str) -> float:
    return METRICS.counter(name).value


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_roundtrip(self):
        message = {"op": "ping", "n": 1}
        assert protocol.decode_message(
            protocol.encode_message(message)
        ) == message

    def test_oversized_line_is_typed(self):
        with pytest.raises(ProtocolError, match="cap"):
            protocol.decode_message(
                b'{"op":"submit","sql":"'
                + b"x" * protocol.MAX_LINE_BYTES
                + b'"}'
            )

    def test_bad_json_is_typed(self):
        with pytest.raises(ProtocolError, match="JSON"):
            protocol.decode_message(b"{nope}")

    def test_missing_op_is_typed(self):
        with pytest.raises(ProtocolError, match="op"):
            protocol.decode_message(b'{"sql":"SELECT 1"}')
        with pytest.raises(ProtocolError, match="object"):
            protocol.decode_message(b'[1,2]')

    def test_rejection_response_shape(self):
        response = protocol.rejection_response("rate_limited", "slow down", 1.5)
        assert response["ok"] is False
        assert response["error"] == "admission_rejected"
        assert response["reason"] == "rate_limited"
        assert response["retry_after_seconds"] == 1.5


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------
class TestJournal:
    def test_recover_folds_terminal_states(self, tmp_path):
        journal = ServingJournal(tmp_path)
        journal.record("q1", "accepted", tenant="a")
        journal.record("q1", "running", tenant="a")
        journal.record("q1", "done", tenant="a")
        journal.record("q2", "accepted", tenant="b")
        journal.record("q3", "accepted", tenant="a")
        journal.record("q3", "running", tenant="a")
        journal.close()
        open_entries = ServingJournal(tmp_path).recover()
        assert set(open_entries) == {"q2", "q3"}
        assert open_entries["q3"]["state"] == "running"

    def test_torn_tail_is_tolerated(self, tmp_path):
        journal = ServingJournal(tmp_path)
        journal.record("q1", "accepted", tenant="a")
        journal.record("q2", "accepted", tenant="a")
        journal.close()
        path = tmp_path / "serving_journal.jsonl"
        raw = path.read_bytes()
        path.write_bytes(raw[:-7])  # tear the final record mid-JSON
        open_entries = ServingJournal(tmp_path).recover()
        assert set(open_entries) == {"q1"}

    def test_compact_is_atomic_and_keeps_open(self, tmp_path):
        journal = ServingJournal(tmp_path)
        for i in range(20):
            journal.record(f"q{i}", "accepted", tenant="a")
            journal.record(f"q{i}", "done", tenant="a")
        journal.record("live", "running", tenant="a")
        journal.compact({"live": {"id": "live", "state": "running"}})
        journal.close()
        open_entries = ServingJournal(tmp_path).recover()
        assert set(open_entries) == {"live"}
        assert list((tmp_path / "staging").iterdir()) == []


# ---------------------------------------------------------------------------
# Tenants: rate windows and weighted fair queueing
# ---------------------------------------------------------------------------
class TestTenants:
    def test_rate_window_exact_retry_after(self):
        clock = [100.0]
        tenant = TenantState(
            config=TenantConfig("a", rate_limit=2, rate_window_seconds=1.0),
            clock=lambda: clock[0],
        )
        assert tenant.rate_retry_after() is None
        tenant.note_admitted()
        tenant.note_admitted()
        wait = tenant.rate_retry_after()
        assert wait == pytest.approx(1.0)
        clock[0] += 0.6
        assert tenant.rate_retry_after() == pytest.approx(0.4)
        clock[0] += 0.5  # the oldest admission leaves the window
        assert tenant.rate_retry_after() is None

    def test_wfq_weight_proportional_dispatch(self):
        queue = FairQueue()
        heavy = TenantState(config=TenantConfig("heavy", weight=2.0))
        light = TenantState(config=TenantConfig("light", weight=1.0))

        def entry(tenant):
            return types.SimpleNamespace(tenant=tenant.name, vft=0.0)

        for _ in range(4):
            queue.push(heavy, entry(heavy))
        for _ in range(4):
            queue.push(light, entry(light))
        order = [queue.pop().tenant for _ in range(6)]
        # Over any prefix, the weight-2 tenant gets ~2x the service.
        assert order.count("heavy") >= 2 * order.count("light") - 1
        assert order[0] == "heavy"

    def test_push_front_keeps_position(self):
        queue = FairQueue()
        tenant = TenantState(config=TenantConfig("a"))
        first = types.SimpleNamespace(tenant="a", vft=0.0)
        second = types.SimpleNamespace(tenant="a", vft=0.0)
        queue.push(tenant, first)
        queue.push(tenant, second)
        popped = queue.pop()
        assert popped is first
        queue.push_front(popped)
        assert queue.pop() is first

    def test_share_key_identical_only(self):
        a = share_key("SELECT AVG(x) FROM t WHERE g = 1")
        b = share_key("SELECT AVG(x)  FROM t WHERE g = 1")
        c = share_key("SELECT AVG(x) FROM t WHERE g = 2")
        assert a is not None and a == b
        assert a != c  # different bindings are different answers
        assert share_key("not sql at all") is None


# ---------------------------------------------------------------------------
# Server end-to-end (stub engine: deterministic timing)
# ---------------------------------------------------------------------------
class TestServerLifecycle:
    def test_submit_poll_done(self):
        server = _stub_server()
        try:
            host, port = server.start()
            with ServeClient(host, port) as client:
                assert client.ping()["ok"]
                query_id = client.submit("quick", deadline_seconds=10.0)
                payload = client.wait(query_id, timeout=10.0)
                assert payload["state"] == "done"
                values = payload["result"]["rows"][0]["values"]
                assert values[0]["estimate"] == 1.0
        finally:
            server.stop()

    def test_unknown_query_and_bad_requests(self):
        server = _stub_server()
        try:
            host, port = server.start()
            with ServeClient(host, port) as client:
                with pytest.raises(ProtocolError, match="unknown_query"):
                    client.poll("nope")
                response = client.request({"op": "submit"})
                assert response["error"] == "bad_request"
                response = client.request({"op": "wat"})
                assert response["error"] == "unsupported_op"
            # Raw garbage on the wire: typed response, server survives.
            sock = socket.create_connection((host, port), timeout=5.0)
            sock.sendall(b"this is not json\n")
            reply = json.loads(sock.makefile("rb").readline())
            assert reply["error"] == "bad_request"
            sock.close()
            with ServeClient(host, port) as client:
                assert client.ping()["ok"]
        finally:
            server.stop()

    def test_error_query_is_typed_and_recoverable(self):
        server = _stub_server()
        try:
            host, port = server.start()
            with ServeClient(host, port) as client:
                query_id = client.submit("fail")
                payload = client.wait(query_id, timeout=10.0)
                assert payload["state"] == "error"
                assert "stub failure" in payload["message"]
        finally:
            server.stop()

    def test_client_disconnect_does_not_lose_the_query(self):
        server = _stub_server()
        try:
            host, port = server.start()
            first = ServeClient(host, port)
            query_id = first.submit("sleep:0.3")
            first.close()  # disconnect mid-flight
            with ServeClient(host, port) as second:
                payload = second.wait(query_id, timeout=10.0)
                assert payload["state"] == "done"
        finally:
            server.stop()


class TestDeadlines:
    def test_expired_on_arrival_is_typed(self):
        server = _stub_server()
        try:
            host, port = server.start()
            with ServeClient(host, port) as client:
                with pytest.raises(AdmissionRejectedError) as excinfo:
                    client.submit("quick", deadline_seconds=-1.0)
                assert excinfo.value.reason == "deadline_expired"
                # Absolute deadlines beyond any plausible skew likewise.
                with pytest.raises(AdmissionRejectedError) as excinfo:
                    client.submit(
                        "quick", deadline_unix=time.time() - 10_000.0
                    )
                assert excinfo.value.reason == "deadline_expired"
        finally:
            server.stop()

    def test_absolute_deadline_is_skew_clamped(self):
        config = ServeConfig(max_deadline_seconds=5.0)
        server = _stub_server(config)
        try:
            host, port = server.start()
            with ServeClient(host, port) as client:
                # A clock running a year ahead is clamped to the horizon,
                # not granted an unsheddable deadline.
                query_id = client.submit(
                    "quick", deadline_unix=time.time() + 3.0e7
                )
                record = server.server._records[query_id]
                assert record.deadline_seconds <= 5.0
        finally:
            server.stop()

    def test_queued_deadline_expiry_is_typed_and_never_executes(self):
        before = _counter("serve.queue_deadline_expired")
        server = _stub_server(ServeConfig(sweep_interval_seconds=0.05))
        try:
            host, port = server.start()
            with ServeClient(host, port) as client:
                blocker = client.submit("sleep:1.5")
                doomed = client.submit("quick", deadline_seconds=0.2)
                payload = client.wait(doomed, timeout=10.0)
                assert payload["state"] == "rejected"
                assert payload["reason"] == "queue_deadline_expired"
                assert "never executed" in payload["message"]
                assert client.wait(blocker, timeout=10.0)["state"] == "done"
        finally:
            server.stop()
        assert _counter("serve.queue_deadline_expired") > before


class TestQuotasAndFairness:
    def test_rate_limit_rejects_with_retry_after(self):
        config = ServeConfig(
            tenants={
                "a": TenantConfig(
                    "a", rate_limit=2, rate_window_seconds=5.0
                )
            },
            allow_dynamic_tenants=False,
        )
        server = _stub_server(config)
        try:
            host, port = server.start()
            with ServeClient(host, port, tenant="a") as client:
                client.submit("sleep:0.2")
                client.submit("sleep:0.2")
                with pytest.raises(AdmissionRejectedError) as excinfo:
                    client.submit("quick")
                assert excinfo.value.reason == "rate_limited"
                assert 0 < excinfo.value.retry_after_seconds <= 5.0
                with pytest.raises(ProtocolError, match="unknown tenant"):
                    ServeClient(host, port, tenant="b").submit("quick")
        finally:
            server.stop()

    def test_tenant_concurrency_cap(self):
        config = ServeConfig(
            tenants={"a": TenantConfig("a", max_in_flight=1)}
        )
        server = _stub_server(config)
        try:
            host, port = server.start()
            with ServeClient(host, port, tenant="a") as client:
                first = client.submit("sleep:0.5")
                with pytest.raises(AdmissionRejectedError) as excinfo:
                    client.submit("quick")
                assert excinfo.value.reason == "tenant_concurrency"
                assert excinfo.value.retry_after_seconds > 0
                assert client.wait(first, timeout=10.0)["state"] == "done"
        finally:
            server.stop()

    def test_queue_full_is_typed(self):
        config = ServeConfig(max_queue_depth=1)
        server = _stub_server(config)
        try:
            host, port = server.start()
            with ServeClient(host, port) as client:
                client.submit("sleep:0.5")  # occupies the one slot
                client.submit("quick")  # fills the queue
                with pytest.raises(AdmissionRejectedError) as excinfo:
                    client.submit("quick")
                assert excinfo.value.reason == "queue_full"
        finally:
            server.stop()

    def test_wfq_interleaves_a_backlogged_tenant(self):
        """With a flooder backlog queued ahead of it, a second tenant's
        single query still dispatches next by virtual finish time."""
        server = _stub_server(ServeConfig())
        try:
            host, port = server.start()
            flooder = ServeClient(host, port, tenant="flood")
            patient = ServeClient(host, port, tenant="patient")
            ids = [flooder.submit("sleep:0.15") for _ in range(4)]
            lone = patient.submit("quick")
            order = server.server
            payload = patient.wait(lone, timeout=10.0)
            assert payload["state"] == "done"
            # The lone query finished before the flooder's tail.
            tail = flooder.wait(ids[-1], timeout=10.0)
            assert tail["state"] == "done"
            lone_done = order._records[lone].finished_at
            tail_done = order._records[ids[-1]].finished_at
            assert lone_done < tail_done
            flooder.close()
            patient.close()
        finally:
            server.stop()


class TestCancel:
    def test_cancel_while_queued_never_executes(self):
        before = _counter("serve.queue_cancelled")
        server = _stub_server()
        try:
            host, port = server.start()
            with ServeClient(host, port) as client:
                blocker = client.submit("sleep:0.5")
                queued = client.submit("quick")
                payload = client.cancel(queued)
                assert payload["state"] == "cancelled"
                assert "never executed" in payload["message"]
                assert client.wait(blocker, timeout=10.0)["state"] == "done"
        finally:
            server.stop()
        assert _counter("serve.queue_cancelled") > before

    def test_cancel_while_running_is_cooperative(self):
        server = _stub_server()
        try:
            host, port = server.start()
            with ServeClient(host, port) as client:
                query_id = client.submit("sleep:5.0")
                time.sleep(0.1)  # let it start
                response = client.cancel(query_id)
                assert response.get("cancelling") or (
                    response.get("state") == "cancelled"
                )
                payload = client.wait(query_id, timeout=10.0)
                assert payload["state"] == "cancelled"
        finally:
            server.stop()

    def test_client_run_cancels_on_keyboard_interrupt(self, monkeypatch):
        server = _stub_server()
        try:
            host, port = server.start()
            client = ServeClient(host, port)
            blocker = client.submit("sleep:0.6")
            submitted: list[str] = []
            original = ServeClient.submit

            def capture(self, *args, **kwargs):
                query_id = original(self, *args, **kwargs)
                submitted.append(query_id)
                return query_id

            monkeypatch.setattr(ServeClient, "submit", capture)

            def interrupting_wait(self, query_id, **kwargs):
                raise KeyboardInterrupt

            monkeypatch.setattr(ServeClient, "wait", interrupting_wait)
            with pytest.raises(KeyboardInterrupt):
                client.run("quick")
            # The Ctrl-C sent a protocol cancel: the queued query is
            # terminal-cancelled server-side, never executed.
            monkeypatch.undo()
            payload = client.poll(submitted[0])
            assert payload["state"] == "cancelled"
            assert client.wait(blocker, timeout=10.0)["state"] == "done"
            client.close()
        finally:
            server.stop()


class TestSharing:
    def test_identical_queries_share_one_execution(self):
        engine = _make_engine()
        governor = QueryGovernor(engine, GovernorConfig(max_concurrency=1))
        server = ServerThread(governor, ServeConfig())
        sql = "SELECT AVG(x) FROM t WHERE g = 1"
        try:
            host, port = server.start()
            with ServeClient(host, port) as client:
                ids = [client.submit(sql) for _ in range(4)]
                payloads = [client.wait(i, timeout=30.0) for i in ids]
            assert all(p["state"] == "done" for p in payloads)
            estimates = {
                p["result"]["rows"][0]["values"][0]["estimate"]
                for p in payloads
            }
            assert len(estimates) == 1  # bit-identical fan-out
            assert any(
                (p["result"] or {}).get("shared") for p in payloads[1:]
            )
        finally:
            server.stop()
            governor.close()

    def test_different_bindings_never_share(self):
        server = _stub_server()
        try:
            host, port = server.start()
            with ServeClient(host, port) as client:
                # Unparseable SQL has no share key: each runs alone.
                ids = [client.submit("sleep:0.05") for _ in range(3)]
                payloads = [client.wait(i, timeout=10.0) for i in ids]
            assert all(p["state"] == "done" for p in payloads)
            assert not any(
                (p["result"] or {}).get("shared") for p in payloads
            )
        finally:
            server.stop()

    def test_leader_failure_is_isolated_from_followers(self):
        """Followers of a failed leader retry individually and honestly."""
        sql = "SELECT AVG(x) FROM t"

        class _FlakyEngine(_StubEngine):
            calls = []

            def execute(self, sql_text, cancel=None, degradation=None, **kw):
                if sql_text == "block":
                    time.sleep(0.3)  # hold the slot so followers queue
                    return _FakeResult()
                _FlakyEngine.calls.append(sql_text)
                if len(_FlakyEngine.calls) == 1:
                    raise ValueError("leader croaked")
                return _FakeResult()

        _FlakyEngine.calls = []
        governor = QueryGovernor(
            _FlakyEngine, GovernorConfig(max_concurrency=1)
        )
        # The share SQL parses (so sharing engages) but the stub engine
        # fails its first call — exactly one leader fails.
        server = ServerThread(governor, ServeConfig())
        try:
            host, port = server.start()
            with ServeClient(host, port) as client:
                # Occupy the single slot so the three identical queries
                # are all queued together and batch under one leader.
                blocker = client.submit("block")
                ids = [client.submit(sql) for _ in range(3)]
                payloads = [client.wait(i, timeout=30.0) for i in ids]
                assert client.wait(blocker, timeout=10.0)["state"] == "done"
            states = sorted(p["state"] for p in payloads)
            assert states.count("error") == 1  # only the leader
            assert states.count("done") == 2  # followers retried solo
            assert len(_FlakyEngine.calls) == 3  # 1 leader + 2 retries
        finally:
            server.stop()
            governor.close()


class TestBoundedSubmit:
    def test_within_fields_plan_bound_and_refusal(self):
        """Submit-side WITHIN contract: the planned execution carries
        bound + plan on poll, an infeasible bound resolves to a typed
        error with the achievable bound, and an invalid combination is
        rejected at submit."""
        engine = _make_engine()
        governor = QueryGovernor(engine, GovernorConfig(max_concurrency=1))
        server = ServerThread(governor, ServeConfig())
        try:
            host, port = server.start()
            with ServeClient(host, port) as client:
                query_id = client.submit(
                    "SELECT AVG(x) FROM t", within_relative_error=0.2
                )
                payload = client.wait(query_id, timeout=30.0)
                assert payload["state"] == "done"
                result = payload["result"]
                assert result["bound"]["kind"] == "relative"
                assert result["bound"]["target"] == pytest.approx(0.2)
                assert result["bound"]["achieved"] <= 0.2
                assert result["plan"]["summary"].startswith("pilot n=")

                query_id = client.submit(
                    "SELECT AVG(x) FROM t", within_relative_error=1e-4
                )
                payload = client.wait(query_id, timeout=30.0)
                assert payload["state"] == "error"
                assert payload["bound_kind"] == "relative"
                assert payload["achievable_bound"] > 1e-4

                response = client.request(
                    {
                        "op": "submit",
                        "sql": "SELECT AVG(x) FROM t",
                        "tenant": "default",
                        "within_relative_error": 0.1,
                        "within_time_budget_seconds": 1.0,
                    }
                )
                assert response["error"] == "bad_request"
                assert "exactly one" in response["message"]
        finally:
            server.stop()
            governor.close()


# ---------------------------------------------------------------------------
# Graceful drain and crash-consistent restarts
# ---------------------------------------------------------------------------
class TestDrainAndRestart:
    def test_drain_finishes_in_flight_bit_identically(self, tmp_path):
        engine = _make_engine(seed=7)
        baseline = engine.execute("SELECT AVG(x) FROM t")
        base_estimate = next(
            iter(baseline.rows[0].values.values())
        ).estimate
        engine.close()

        def slow_factory():
            # The real engine answers in milliseconds; pad execution so
            # the first query is genuinely in flight when drain fires.
            slowed = _make_engine(seed=7)
            original = slowed.execute

            def delayed(sql, **kwargs):
                time.sleep(0.5)
                return original(sql, **kwargs)

            slowed.execute = delayed
            return slowed

        governor = QueryGovernor(
            slow_factory, GovernorConfig(max_concurrency=1)
        )
        server = ServerThread(
            governor, ServeConfig(journal_dir=str(tmp_path / "journal"))
        )
        try:
            host, port = server.start()
            client = ServeClient(host, port)
            running = client.submit("SELECT AVG(x) FROM t")
            queued = client.submit("SELECT SUM(x) FROM t WHERE g = 2")
            time.sleep(0.2)  # let the dispatcher start the first query
            summary = server.drain(budget_seconds=30.0)
            assert summary["ok"]
            # In-flight finished inside the budget, bit-identical.
            payload = client.poll(running)
            assert payload["state"] == "done"
            estimate = payload["result"]["rows"][0]["values"][0]["estimate"]
            assert estimate == base_estimate
            # Queued was rejected, typed, with a retry-after.
            payload = client.poll(queued)
            assert payload["state"] == "rejected"
            assert payload["reason"] == "draining"
            assert payload["retry_after_seconds"] is not None
            # New submissions are refused while draining.
            with pytest.raises(AdmissionRejectedError) as excinfo:
                client.submit("SELECT AVG(x) FROM t")
            assert excinfo.value.reason == "draining"
            client.close()
        finally:
            server.stop()
            governor.close()
        # Nothing leaked: reservations, shm segments, staging files.
        assert governor.memory.used_bytes == 0
        own = glob.glob(f"/dev/shm/{SEGMENT_PREFIX}_{os.getpid()}_*")
        assert own == []
        staging = tmp_path / "journal" / "staging"
        assert list(staging.iterdir()) == []

    def test_drain_past_budget_cancels_honestly(self):
        server = _stub_server()
        try:
            host, port = server.start()
            client = ServeClient(host, port)
            slow = client.submit("sleep:30")
            time.sleep(0.1)  # ensure it is running
            summary = server.drain(budget_seconds=0.2)
            assert summary["cancelled_in_flight"] == 1
            payload = client.poll(slow)
            assert payload["state"] == "cancelled"
            assert "draining" in payload["message"]
            client.close()
        finally:
            server.stop()

    def test_restart_reports_in_flight_as_lost(self, tmp_path):
        """A crash (no drain) must yield honest ``lost`` outcomes, not
        silence or ``unknown_query``."""
        journal_dir = str(tmp_path / "journal")
        # Simulate the crash by writing the journal a dead server would
        # leave behind: accepted and running entries, no terminal.
        journal = ServingJournal(journal_dir)
        journal.record("qrun", "running", tenant="a", sql="SELECT 1")
        journal.record("qacc", "accepted", tenant="b", sql="SELECT 2")
        journal.close()

        server = _stub_server(ServeConfig(journal_dir=journal_dir))
        try:
            host, port = server.start()
            assert server.server.recovered_lost == 2
            with ServeClient(host, port) as client:
                for query_id in ("qrun", "qacc"):
                    payload = client.poll(query_id)
                    assert payload["state"] == "lost"
                    assert payload["reason"] == "server_restart"
                # The new generation serves normally.
                fresh = client.submit("quick")
                assert client.wait(fresh, timeout=10.0)["state"] == "done"
        finally:
            server.stop()
        # Recovery compacted: a second restart sees nothing open.
        assert ServingJournal(journal_dir).recover() == {}


# ---------------------------------------------------------------------------
# Governor satellites: typed queue outcomes
# ---------------------------------------------------------------------------
class TestGovernorQueueOutcomes:
    def _occupied_governor(self):
        governor = QueryGovernor(
            _StubEngine,
            GovernorConfig(
                max_concurrency=1,
                shed_policy="queue",
                queue_timeout_seconds=30.0,
            ),
        )
        release = threading.Event()
        started = threading.Event()

        def hog():
            class _Blocker(_StubEngine):
                def execute(self, sql, cancel=None, **kw):
                    started.set()
                    release.wait(10.0)
                    return _FakeResult()

            governor._idle_engines = [_Blocker()]
            governor.execute("hog")

        thread = threading.Thread(target=hog, daemon=True)
        thread.start()
        started.wait(5.0)
        return governor, release, thread

    def test_queue_deadline_expiry_is_typed_rejection(self):
        before = _counter("governor.queue_deadline_expired")
        governor, release, thread = self._occupied_governor()
        try:
            token = CancelToken.with_timeout(0.2)
            with pytest.raises(AdmissionRejectedError) as excinfo:
                governor.execute("queued", cancel=token)
            assert excinfo.value.reason == "queue_deadline_expired"
            assert "never executed" in str(excinfo.value)
        finally:
            release.set()
            thread.join(5.0)
            governor.close()
        assert _counter("governor.queue_deadline_expired") > before

    def test_explicit_cancel_while_queued_is_cancellation(self):
        before = _counter("governor.queue_cancelled")
        governor, release, thread = self._occupied_governor()
        try:
            token = CancelToken()
            timer = threading.Timer(
                0.15, token.cancel, args=("interrupted (Ctrl-C)",)
            )
            timer.start()
            with pytest.raises(QueryCancelledError, match="Ctrl-C"):
                governor.execute("queued", cancel=token)
        finally:
            release.set()
            thread.join(5.0)
            governor.close()
        assert _counter("governor.queue_cancelled") > before

    def test_expiry_and_cancel_do_not_feed_the_breaker(self):
        governor, release, thread = self._occupied_governor()
        try:
            fraction_before = governor.breaker.snapshot()[
                "failure_fraction"
            ]
            token = CancelToken.with_timeout(0.15)
            with pytest.raises(AdmissionRejectedError):
                governor.execute("queued", cancel=token)
            assert (
                governor.breaker.snapshot()["failure_fraction"]
                <= fraction_before + 1e-9
            )
        finally:
            release.set()
            thread.join(5.0)
            governor.close()


# ---------------------------------------------------------------------------
# Deadline propagation into the parallel layer
# ---------------------------------------------------------------------------
class TestDeadlinePrecludesRetry:
    def test_supervision_skips_unaffordable_backoff(self):
        from repro.parallel.supervise import Supervision

        supervision = Supervision(deadline=time.monotonic() + 0.05)
        assert supervision.deadline_precludes_retry(1.0)
        assert not supervision.deadline_precludes_retry(0.0)
        roomy = Supervision(deadline=time.monotonic() + 60.0)
        assert not roomy.deadline_precludes_retry(1.0)
        unbounded = Supervision()
        assert not unbounded.deadline_precludes_retry(100.0)

    def test_token_deadline_also_precludes(self):
        from repro.governor.cancel import cancel_scope
        from repro.parallel.supervise import Supervision

        token = CancelToken(deadline=time.monotonic() + 0.05)
        with cancel_scope(token):
            supervision = Supervision()
            assert supervision.deadline_precludes_retry(1.0)
