"""Unit tests for large-deviation-bound error estimation."""

import math

import numpy as np
import pytest

from repro.core.closed_form import ClosedFormEstimator
from repro.core.estimators import EstimationTarget
from repro.core.large_deviation import BernsteinEstimator, HoeffdingEstimator
from repro.engine.aggregates import get_aggregate
from repro.errors import EstimationError


@pytest.fixture
def uniform_target(rng):
    return EstimationTarget(
        rng.uniform(0.0, 1.0, size=10_000), get_aggregate("AVG")
    )


class TestHoeffding:
    def test_formula_for_mean(self, uniform_target):
        ci = HoeffdingEstimator(low=0.0, high=1.0).estimate(uniform_target, 0.95)
        expected = math.sqrt(math.log(2 / 0.05) / (2 * 10_000))
        assert ci.half_width == pytest.approx(expected, rel=1e-9)
        assert ci.method == "hoeffding"

    def test_falls_back_to_sample_range(self, uniform_target):
        ci = HoeffdingEstimator().estimate(uniform_target, 0.95)
        assert 0 < ci.half_width < 0.05

    def test_wider_than_clt(self, uniform_target):
        """The paper's Fig. 1 premise: Hoeffding > CLT width.

        Uniform data is Hoeffding's best case (σ close to range), so the
        factor is modest here; the heavy-tail test below shows the
        order-of-magnitude gap of Fig. 1.
        """
        hoeffding = HoeffdingEstimator(0.0, 1.0).estimate(uniform_target, 0.95)
        clt = ClosedFormEstimator().estimate(uniform_target, 0.95)
        assert hoeffding.half_width > 2 * clt.half_width

    def test_orders_of_magnitude_wider_on_heavy_tails(self, rng):
        """Production-like heavy tails: range ≫ σ ⇒ Hoeffding ≫ CLT (Fig. 1)."""
        values = rng.pareto(2.5, size=50_000) * 100.0
        target = EstimationTarget(values, get_aggregate("AVG"))
        hoeffding = HoeffdingEstimator(0.0, 1e6).estimate(target, 0.95)
        clt = ClosedFormEstimator().estimate(target, 0.95)
        assert hoeffding.half_width > 50 * clt.half_width

    def test_guaranteed_coverage_of_truth(self, rng):
        """Hoeffding intervals essentially never miss the true mean."""
        misses = 0
        for __ in range(50):
            values = rng.uniform(0.0, 1.0, size=1000)
            target = EstimationTarget(values, get_aggregate("AVG"))
            ci = HoeffdingEstimator(0.0, 1.0).estimate(target, 0.95)
            if not ci.contains(0.5):
                misses += 1
        assert misses == 0

    def test_count_aggregate(self, rng):
        mask = rng.random(10_000) < 0.5
        target = EstimationTarget(
            np.ones(10_000),
            get_aggregate("COUNT"),
            mask=mask,
            dataset_rows=1_000_000,
            extensive=True,
        )
        ci = HoeffdingEstimator().estimate(target, 0.95)
        assert ci.contains(500_000 * mask.mean() * 2)

    def test_sum_range_includes_zero(self, rng):
        """Filtered SUM treats non-matching rows as zero contribution."""
        values = rng.uniform(10.0, 20.0, size=1000)
        mask = rng.random(1000) < 0.5
        target = EstimationTarget(
            values, get_aggregate("SUM"), mask=mask, extensive=True,
            dataset_rows=1000,
        )
        ci = HoeffdingEstimator(10.0, 20.0).estimate(target, 0.95)
        # Per-row range must be [0, 20], not [10, 20]: half-width exceeds
        # the bound computed with the narrower range.
        narrower = 10.0 * math.sqrt(1000 * math.log(2 / 0.05) / 2)
        assert ci.half_width > narrower

    def test_unsupported_aggregate(self, rng):
        target = EstimationTarget(rng.normal(size=100), get_aggregate("MAX"))
        estimator = HoeffdingEstimator()
        assert not estimator.applicable(target)
        with pytest.raises(EstimationError, match="only derived"):
            estimator.estimate(target)

    def test_variance_unsupported(self, rng):
        target = EstimationTarget(
            rng.normal(size=100), get_aggregate("VARIANCE")
        )
        assert not HoeffdingEstimator().applicable(target)

    def test_invalid_range(self, uniform_target):
        with pytest.raises(EstimationError, match="invalid value range"):
            HoeffdingEstimator(low=1.0, high=0.0).estimate(uniform_target)

    def test_shrinks_with_sample_size(self, rng):
        small = EstimationTarget(
            rng.uniform(size=100), get_aggregate("AVG")
        )
        large = EstimationTarget(
            rng.uniform(size=100_000), get_aggregate("AVG")
        )
        estimator = HoeffdingEstimator(0.0, 1.0)
        assert (
            estimator.estimate(large).half_width
            < estimator.estimate(small).half_width
        )


class TestBernstein:
    def test_tighter_than_hoeffding_on_low_variance(self, rng):
        """Variance adaptivity: Bernstein ≪ Hoeffding when spread ≪ range."""
        values = np.clip(rng.normal(0.5, 0.01, size=10_000), 0.0, 1.0)
        target = EstimationTarget(values, get_aggregate("AVG"))
        bernstein = BernsteinEstimator(0.0, 1.0).estimate(target, 0.95)
        hoeffding = HoeffdingEstimator(0.0, 1.0).estimate(target, 0.95)
        assert bernstein.half_width < hoeffding.half_width / 3

    def test_still_conservative_vs_clt(self, uniform_target):
        bernstein = BernsteinEstimator(0.0, 1.0).estimate(uniform_target, 0.95)
        clt = ClosedFormEstimator().estimate(uniform_target, 0.95)
        assert bernstein.half_width > clt.half_width

    def test_method_name(self, uniform_target):
        ci = BernsteinEstimator().estimate(uniform_target)
        assert ci.method == "bernstein"

    def test_count_supported(self, rng):
        mask = rng.random(1000) < 0.2
        target = EstimationTarget(
            np.ones(1000), get_aggregate("COUNT"), mask=mask
        )
        ci = BernsteinEstimator().estimate(target, 0.9)
        assert ci.half_width > 0

    def test_invalid_confidence(self, uniform_target):
        with pytest.raises(EstimationError):
            BernsteinEstimator().estimate(uniform_target, confidence=0.0)
