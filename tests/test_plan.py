"""Unit tests for logical plans and the §5.3 rewriter."""

import pytest

from repro.errors import PlanError
from repro.plan.logical import (
    LogicalAggregate,
    LogicalBootstrapSummary,
    LogicalDiagnostic,
    LogicalFilter,
    LogicalProject,
    LogicalResample,
    LogicalScan,
    LogicalUnionAll,
    ResampleSpec,
    build_error_estimation_plan,
    build_naive_error_plan,
    build_plain_plan,
    count_scans,
    explain,
    walk_plan,
)
from repro.plan.rewriter import (
    consolidate_scans,
    push_down_resample,
    rewrite_plan,
)
from repro.sql.analyzer import analyze
from repro.sql.parser import parse_select

SCHEMA = {"time", "city", "bytes"}


def analyzed(text):
    return analyze(parse_select(text), SCHEMA)


@pytest.fixture
def avg_query():
    return analyzed("SELECT AVG(time) AS a FROM sessions WHERE city = 'NYC'")


class TestResampleSpec:
    def test_total_columns_bootstrap_only(self):
        assert ResampleSpec(bootstrap_columns=100).total_weight_columns == 100

    def test_total_columns_with_diagnostics(self):
        spec = ResampleSpec(
            bootstrap_columns=100,
            diagnostic_groups=((50, 100, 100), (100, 100, 100), (200, 100, 100)),
        )
        # The paper's Fig. 6(a) layout: 100 bootstrap + 3 × 100 × 100.
        assert spec.total_weight_columns == 100 + 3 * 100 * 100

    def test_closed_form_diagnostics_need_no_columns(self):
        spec = ResampleSpec(diagnostic_groups=((50, 100, 0),))
        assert spec.total_weight_columns == 0


class TestPlainPlan:
    def test_shape(self, avg_query):
        plan = build_plain_plan(avg_query, sample_name="s")
        assert isinstance(plan, LogicalAggregate)
        assert isinstance(plan.child, LogicalFilter)
        assert isinstance(plan.child.child, LogicalScan)
        assert plan.child.child.sample_name == "s"

    def test_no_filter(self):
        plan = build_plain_plan(analyzed("SELECT AVG(time) FROM sessions"))
        assert isinstance(plan.child, LogicalScan)

    def test_projection_query(self):
        plan = build_plain_plan(analyzed("SELECT time FROM sessions"))
        assert isinstance(plan, LogicalProject)

    def test_explain_renders_tree(self, avg_query):
        text = explain(build_plain_plan(avg_query))
        assert "Aggregate(AVG)" in text
        assert "Filter" in text
        assert "Scan(sessions)" in text


class TestNaivePlan:
    def test_one_subquery_per_resample_plus_plain(self, avg_query):
        plan = build_naive_error_plan(avg_query, 100)
        union = plan.child
        assert isinstance(union, LogicalUnionAll)
        assert len(union.subplans) == 101

    def test_each_resample_subquery_rescans(self, avg_query):
        plan = build_naive_error_plan(avg_query, 50)
        assert count_scans(plan) == 51

    def test_resample_sits_right_after_scan(self, avg_query):
        """The un-optimised position: weights computed before filters."""
        plan = build_naive_error_plan(avg_query, 3)
        resample_nodes = [
            node
            for node in walk_plan(plan)
            if isinstance(node, LogicalResample)
        ]
        assert len(resample_nodes) == 3
        assert all(isinstance(n.child, LogicalScan) for n in resample_nodes)

    def test_rejects_non_aggregate_query(self):
        with pytest.raises(PlanError, match="aggregate"):
            build_naive_error_plan(analyzed("SELECT time FROM sessions"), 10)

    def test_rejects_zero_resamples(self, avg_query):
        with pytest.raises(PlanError, match="positive"):
            build_naive_error_plan(avg_query, 0)


class TestConsolidatedPlan:
    def test_single_scan(self, avg_query):
        plan = build_error_estimation_plan(
            avg_query, ResampleSpec(bootstrap_columns=100)
        )
        assert count_scans(plan) == 1

    def test_diagnostic_operator_added_when_requested(self, avg_query):
        plan = build_error_estimation_plan(
            avg_query,
            ResampleSpec(
                bootstrap_columns=100, diagnostic_groups=((50, 10, 10),)
            ),
        )
        assert isinstance(plan, LogicalDiagnostic)

    def test_no_diagnostic_operator_without_groups(self, avg_query):
        plan = build_error_estimation_plan(
            avg_query, ResampleSpec(bootstrap_columns=100)
        )
        assert isinstance(plan, LogicalBootstrapSummary)


class TestScanConsolidation:
    def test_collapses_union(self, avg_query):
        naive = build_naive_error_plan(avg_query, 100)
        consolidated, changed = consolidate_scans(naive)
        assert changed
        assert count_scans(consolidated) == 1

    def test_combined_weight_columns(self, avg_query):
        naive = build_naive_error_plan(avg_query, 64)
        consolidated, __ = consolidate_scans(naive)
        resample = next(
            node
            for node in walk_plan(consolidated)
            if isinstance(node, LogicalResample)
        )
        assert resample.spec.total_weight_columns == 64

    def test_idempotent(self, avg_query):
        naive = build_naive_error_plan(avg_query, 10)
        once, __ = consolidate_scans(naive)
        twice, changed = consolidate_scans(once)
        assert not changed
        assert twice == once

    def test_plain_plan_unchanged(self, avg_query):
        plan = build_plain_plan(avg_query)
        rewritten, changed = consolidate_scans(plan)
        assert not changed
        assert rewritten == plan


class TestOperatorPushdown:
    def test_moves_resample_below_aggregate(self, avg_query):
        plan = build_error_estimation_plan(
            avg_query, ResampleSpec(bootstrap_columns=10)
        )
        pushed, changed = push_down_resample(plan)
        assert changed
        resample = next(
            node for node in walk_plan(pushed) if isinstance(node, LogicalResample)
        )
        # After pushdown the Resample sits on top of the Filter.
        assert isinstance(resample.child, LogicalFilter)

    def test_aggregate_directly_consumes_resample(self, avg_query):
        plan = build_error_estimation_plan(
            avg_query, ResampleSpec(bootstrap_columns=10)
        )
        pushed, __ = push_down_resample(plan)
        aggregate = next(
            node for node in walk_plan(pushed) if isinstance(node, LogicalAggregate)
        )
        assert isinstance(aggregate.child, LogicalResample)

    def test_no_filter_means_nothing_to_push(self):
        query = analyzed("SELECT AVG(time) FROM sessions")
        plan = build_error_estimation_plan(
            query, ResampleSpec(bootstrap_columns=10)
        )
        __, changed = push_down_resample(plan)
        assert not changed

    def test_idempotent(self, avg_query):
        plan = build_error_estimation_plan(
            avg_query, ResampleSpec(bootstrap_columns=10)
        )
        once, __ = push_down_resample(plan)
        twice, changed = push_down_resample(once)
        assert not changed
        assert twice == once


class TestRewritePlan:
    def test_full_rewrite_of_naive_plan(self, avg_query):
        naive = build_naive_error_plan(avg_query, 100)
        report = rewrite_plan(naive)
        assert report.rules_applied == (
            "scan_consolidation",
            "resample_pushdown",
        )
        assert report.scans_before == 101
        assert report.scans_after == 1

    def test_rewrite_preserves_summary_operator(self, avg_query):
        naive = build_naive_error_plan(avg_query, 10)
        report = rewrite_plan(naive)
        assert isinstance(report.plan, LogicalBootstrapSummary)

    def test_rewrite_of_plain_plan_is_noop(self, avg_query):
        plan = build_plain_plan(avg_query)
        report = rewrite_plan(plan)
        assert report.rules_applied == ()
        assert report.plan == plan
