"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import TokenizeError
from repro.sql.lexer import Token, TokenType, tokenize


def types_of(text):
    return [t.type for t in tokenize(text)]


def values_of(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_keywords_upper_cased(self):
        assert values_of("select from where") == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_preserve_case(self):
        assert values_of("myTable Col_1") == ["myTable", "Col_1"]

    def test_eof_always_appended(self):
        assert tokenize("")[-1].type is TokenType.EOF
        assert tokenize("SELECT")[-1].type is TokenType.EOF

    def test_numbers(self):
        assert values_of("1 2.5 .5 1e3 1.5E-2") == ["1", "2.5", ".5", "1e3", "1.5E-2"]

    def test_number_type(self):
        assert types_of("42")[0] is TokenType.NUMBER

    def test_string_literal(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "hello world"

    def test_string_escape_doubles_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_operators(self):
        assert values_of("<= >= <> != = < > + - * / %") == [
            "<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%",
        ]

    def test_punctuation(self):
        assert values_of("( ) , .") == ["(", ")", ",", "."]

    def test_positions_recorded(self):
        tokens = tokenize("SELECT x")
        assert tokens[0].position == 0
        assert tokens[1].position == 7


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert values_of("SELECT -- a comment\n x") == ["SELECT", "x"]

    def test_comment_at_end_of_input(self):
        assert values_of("SELECT x -- trailing") == ["SELECT", "x"]

    def test_mixed_whitespace(self):
        assert values_of("SELECT\t\n  x") == ["SELECT", "x"]


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(TokenizeError, match="unterminated"):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(TokenizeError, match="unexpected character"):
            tokenize("SELECT #")

    def test_malformed_number(self):
        with pytest.raises(TokenizeError, match="malformed number"):
            tokenize("1e")

    def test_error_carries_position(self):
        with pytest.raises(TokenizeError) as excinfo:
            tokenize("ab @")
        assert excinfo.value.position == 3


class TestTokenMatches:
    def test_matches_type_only(self):
        token = Token(TokenType.KEYWORD, "SELECT", 0)
        assert token.matches(TokenType.KEYWORD)

    def test_matches_type_and_value(self):
        token = Token(TokenType.KEYWORD, "SELECT", 0)
        assert token.matches(TokenType.KEYWORD, "SELECT")
        assert not token.matches(TokenType.KEYWORD, "FROM")

    def test_tablesample_keywords(self):
        assert values_of("TABLESAMPLE POISSONIZED") == [
            "TABLESAMPLE",
            "POISSONIZED",
        ]
