"""Unit tests for automatic parallelism tuning."""

import numpy as np
import pytest

from repro.cluster import (
    AQPQuerySpec,
    ClusterSimulator,
    PAPER_CLUSTER,
    build_phases,
    tune_parallelism,
)
from repro.cluster.config import GB
from repro.cluster.simulator import Job, Stage
from repro.errors import SimulationError


@pytest.fixture
def sim():
    return ClusterSimulator(PAPER_CLUSTER)


@pytest.fixture
def phases():
    spec = AQPQuerySpec(
        sample_bytes=20 * GB,
        sample_rows=40_000_000,
        selectivity=0.2,
        closed_form=False,
    )
    return build_phases(spec, optimized=True)


class TestTuneParallelism:
    def test_finds_interior_optimum(self, sim, phases, rng):
        jobs = [phases.execution, phases.error_estimation, phases.diagnostics]
        result = tune_parallelism(sim, jobs, repetitions=3, rng=rng)
        # The Fig. 8(c) shape: neither serial nor the full fleet.
        assert 4 <= result.best_machines <= 64
        assert result.best_seconds > 0

    def test_beats_default_full_fleet(self, sim, phases, rng):
        jobs = [phases.execution, phases.error_estimation, phases.diagnostics]
        result = tune_parallelism(sim, jobs, repetitions=3, rng=rng)
        full_fleet = result.evaluated[PAPER_CLUSTER.num_machines]
        assert result.best_seconds <= full_fleet

    def test_single_job_accepted(self, sim, phases, rng):
        result = tune_parallelism(
            sim, phases.execution, repetitions=2, rng=rng
        )
        assert result.best_machines >= 1

    def test_evaluated_includes_fleet_and_one(self, sim, phases, rng):
        result = tune_parallelism(
            sim, phases.execution, repetitions=2, rng=rng
        )
        assert 1 in result.evaluated
        assert PAPER_CLUSTER.num_machines in result.evaluated

    def test_huge_scan_prefers_wide_parallelism(self, sim, rng):
        job = Job(
            name="wide", stages=(Stage(name="s", total_bytes=2000 * GB),)
        )
        result = tune_parallelism(sim, job, repetitions=2, rng=rng)
        assert result.best_machines >= 50

    def test_tiny_job_prefers_narrow_parallelism(self, sim, rng):
        job = Job(
            name="tiny", stages=(Stage(name="s", total_bytes=64 * 2**20),)
        )
        result = tune_parallelism(sim, job, repetitions=3, rng=rng)
        assert result.best_machines <= 20

    def test_invalid_repetitions(self, sim, phases, rng):
        with pytest.raises(SimulationError):
            tune_parallelism(sim, phases.execution, repetitions=0, rng=rng)
