"""Smoke tests: every example runs end-to-end at reduced scale."""

import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


@pytest.fixture(autouse=True)
def examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


def test_quickstart(capsys):
    import quickstart

    quickstart.main(num_rows=30_000)
    out = capsys.readouterr().out
    assert "±" in out
    assert "closed_form" in out
    assert "fell back" in out  # the MAX query reroutes

def test_error_estimation_failures(capsys):
    import error_estimation_failures

    error_estimation_failures.main(
        num_rows=60_000, sample_size=4000, num_trials=10
    )
    out = capsys.readouterr().out
    assert "pessimistic" in out  # Hoeffding column
    assert "n/a" in out  # closed form on MAX


def test_conviva_dashboard(capsys):
    import conviva_dashboard

    conviva_dashboard.main(num_rows=60_000)
    out = capsys.readouterr().out
    assert "Session quality overview" in out
    assert "bootstrap" in out
    assert "city_" in out


def test_diagnostic_deep_dive(capsys):
    import diagnostic_deep_dive

    diagnostic_deep_dive.main(num_rows=30_000, num_subsamples=40)
    out = capsys.readouterr().out
    assert "PASS" in out
    assert "FAIL" in out
    assert "reason" in out


def test_cluster_performance(capsys):
    import cluster_performance

    cluster_performance.main()
    out = capsys.readouterr().out
    assert "naive" in out
    assert "fully tuned" in out
    assert "machines" in out
