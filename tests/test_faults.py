"""Fault-tolerant execution: supervision, retries, and honest degradation.

These tests drive deterministic :class:`repro.faults.FaultPlan`
schedules through the supervised execution layer and assert the PR's
contract from every side:

* transient failures (worker crashes, hung tasks) are retried and — when
  retries recover them — results are **bit-identical to a clean run**,
  because a retried unit re-runs on the same child RNG stream;
* failures that exhaust their retries degrade *honestly*: the answer is
  computed from the work that completed, the interval widens, and the
  attached :class:`~repro.parallel.supervise.ExecutionReport` says
  exactly what happened — never a silent wrong answer, never a spurious
  crash;
* repeated pool-level failures degrade the session permanently to
  inline execution (recording why), and orphaned shared-memory segments
  left by dead processes are swept.

The container may expose a single CPU; tests that need a real worker
pool monkeypatch ``os.cpu_count`` (the supervised pool caps worker
counts at the CPU count).  Fault semantics are identical inline and in
workers by construction, so the engine-level tests exercise both.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
import warnings

import numpy as np
import pytest

from repro.core.bootstrap import BootstrapEstimator
from repro.core.estimators import EstimationTarget
from repro.core.pipeline import AQPEngine, EngineConfig
from repro.engine.aggregates import get_aggregate
from repro.engine.table import Table
from repro.errors import (
    DegradedResultWarning,
    ExecutionError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.faults import FAULTS_ENV, FaultPlan, FaultSpec, resolve_fault_plan
from repro.parallel.ops import bootstrap_replicates
from repro.parallel.pool import (
    START_METHOD_ENV,
    WorkerPool,
    resolve_num_workers,
)
from repro.parallel.shm import SEGMENT_PREFIX, sweep_orphans
from repro.parallel.supervise import (
    TASK_FAILED,
    RetryPolicy,
    Supervision,
    backoff_seconds,
    run_supervised_inline,
)


def _square(x):
    return x * x


def _supervision(plan=None, **policy_kwargs) -> Supervision:
    defaults = dict(backoff_base_seconds=0.0, backoff_jitter=0.0)
    defaults.update(policy_kwargs)
    return Supervision(
        plan=plan, policy=RetryPolicy(**defaults), allow_partial=True
    )


@pytest.fixture
def eight_cpus(monkeypatch):
    """Pretend the machine has 8 cores so real pools can exist."""
    monkeypatch.setattr(os, "cpu_count", lambda: 8)


def leaked_segments() -> list[str]:
    import glob

    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}_{os.getpid()}_*")


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_from_spec_grammar(self):
        plan = FaultPlan.from_spec(
            "crash@2, crash@1:*, crash@3!worker, hang@5:0.5, rate:0.05, "
            "shm, pickle"
        )
        kinds = [spec.kind for spec in plan.specs]
        assert kinds == [
            "crash", "crash", "crash", "hang", "crash", "shm", "pickle",
        ]
        assert plan.specs[0] == FaultSpec(kind="crash", task=2, attempt=0)
        assert plan.specs[1].attempt is None
        assert plan.specs[2].worker_only
        assert plan.specs[3].seconds == 0.5
        assert plan.specs[4].rate == 0.05
        assert plan.fails_shm() and plan.fails_pickling()

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(ValueError, match="unparseable fault token"):
            FaultPlan.from_spec("explode@3")
        with pytest.raises(ValueError, match="hang fault needs a duration"):
            FaultPlan.from_spec("hang@3")

    def test_resolve_fault_plan_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert resolve_fault_plan(None) is None
        monkeypatch.setenv(FAULTS_ENV, "crash@1")
        plan = resolve_fault_plan(None)
        assert plan is not None and plan.specs[0].task == 1
        explicit = FaultPlan().with_crash(7)
        assert resolve_fault_plan(explicit) is explicit

    def test_inline_crash_raises_worker_crash_error(self):
        plan = FaultPlan().with_crash(3)
        plan.apply(2, 0)  # wrong task: no fault
        plan.apply(3, 1)  # wrong attempt: retry has recovered
        with pytest.raises(WorkerCrashError):
            plan.apply(3, 0)

    def test_inline_hang_respects_timeout(self):
        plan = FaultPlan().with_hang(0, seconds=5.0)
        with pytest.raises(TaskTimeoutError):
            plan.apply(0, 0, timeout=0.01)
        short = FaultPlan().with_hang(0, seconds=0.01)
        started = time.monotonic()
        short.apply(0, 0, timeout=1.0)  # a straggler, not a failure
        assert time.monotonic() - started >= 0.01

    def test_rate_faults_are_seeded(self):
        plan_a = FaultPlan(seed=11).with_crash_rate(0.3)
        plan_b = FaultPlan(seed=11).with_crash_rate(0.3)
        hits_a = [plan_a._rate_hits(i, 0.3) for i in range(200)]
        hits_b = [plan_b._rate_hits(i, 0.3) for i in range(200)]
        assert hits_a == hits_b
        assert 0 < sum(hits_a) < 200

    def test_simulated_task_delays(self):
        plan = FaultPlan().with_crash(1).with_hang(3, seconds=2.0)
        extra, faulted = plan.simulated_task_delays(
            6, per_task_seconds=1.0, detection_seconds=5.0
        )
        assert faulted == 2
        assert extra[1] == pytest.approx(6.0)  # detection + re-execution
        assert extra[3] == pytest.approx(2.0)  # stall
        assert extra[[0, 2, 4, 5]].sum() == 0.0


# ---------------------------------------------------------------------------
# Supervised inline execution
# ---------------------------------------------------------------------------
class TestSupervisedInline:
    def test_retry_recovers_first_attempt_crash(self):
        sup = _supervision(FaultPlan().with_crash(1))
        results = run_supervised_inline(_square, [1, 2, 3], sup)
        assert results == [1, 4, 9]
        assert sup.report.worker_crashes == 1
        assert sup.report.task_retries == 1
        assert sup.report.recovered and not sup.report.degraded

    def test_permanent_failure_becomes_task_failed(self):
        sup = _supervision(FaultPlan().with_crash(0, attempt=None))
        results = run_supervised_inline(_square, [1, 2], sup)
        assert results[0] is TASK_FAILED
        assert results[1] == 4
        assert sup.report.degraded
        assert "task 0 failed" in sup.report.degradation_reasons[0]

    def test_strict_mode_raises_execution_error(self):
        sup = Supervision(
            plan=FaultPlan().with_crash(0, attempt=None),
            policy=RetryPolicy(backoff_base_seconds=0.0),
        )
        with pytest.raises(ExecutionError, match="task 0 failed"):
            run_supervised_inline(_square, [1, 2], sup)

    def test_deterministic_errors_propagate_immediately(self):
        def boom(x):
            raise RuntimeError("deterministic bug")

        sup = _supervision()
        with pytest.raises(RuntimeError, match="deterministic bug"):
            run_supervised_inline(boom, [1], sup)
        assert sup.report.task_retries == 0

    def test_expired_deadline_drops_all_units(self):
        sup = _supervision()
        sup.deadline = time.monotonic() - 1.0
        results = run_supervised_inline(_square, [1, 2, 3], sup)
        assert results == [TASK_FAILED] * 3
        assert sup.report.deadline_hit and sup.report.degraded

    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(
            backoff_base_seconds=0.05,
            backoff_cap_seconds=0.2,
            backoff_jitter=0.5,
        )
        first = backoff_seconds(policy, 1, 4)
        assert first == backoff_seconds(policy, 1, 4)
        assert backoff_seconds(policy, 10, 0) <= 0.2 * 1.5
        assert first != backoff_seconds(policy, 1, 5)


# ---------------------------------------------------------------------------
# Supervised pools (real worker processes)
# ---------------------------------------------------------------------------
class TestSupervisedPool:
    def test_worker_crash_mid_batch_is_retried(self, eight_cpus):
        sup = _supervision(
            FaultPlan().with_crash(1, worker_only=True),
            task_timeout_seconds=10.0,
        )
        with WorkerPool(4) as pool:
            results = pool.map(_square, list(range(8)), sup)
        assert results == [x * x for x in range(8)]
        assert sup.report.worker_crashes == 1
        assert sup.report.task_retries >= 1
        assert sup.report.pool_restarts == 1
        assert sup.report.recovered

    def test_hung_task_times_out_and_retry_succeeds(self, eight_cpus):
        sup = _supervision(
            FaultPlan().with_hang(2, seconds=30.0),
            task_timeout_seconds=0.5,
        )
        with WorkerPool(4) as pool:
            results = pool.map(_square, list(range(6)), sup)
        assert results == [x * x for x in range(6)]
        assert sup.report.task_timeouts >= 1
        assert not sup.report.degraded

    def test_repeated_pool_failures_degrade_to_inline(self, eight_cpus):
        # Crash task 0 on *every* attempt, but only inside real worker
        # processes: the pool fails max_pool_failures times, then the
        # session permanently degrades to inline execution — where the
        # fault does not fire and every unit completes.
        sup = _supervision(
            FaultPlan().with_crash(0, attempt=None, worker_only=True),
            task_timeout_seconds=1.0,
            max_pool_failures=2,
        )
        with WorkerPool(4) as pool:
            results = pool.map(_square, list(range(6)), sup)
            assert results == [x * x for x in range(6)]
            assert pool.degraded_reason is not None
            assert not pool.is_parallel
            assert sup.report.degraded_to_inline
            assert any("inline" in f for f in sup.report.fallbacks)
            # The degradation is permanent for the session: later maps
            # never touch a worker process again.
            again = pool.map(_square, [7, 8], _supervision())
            assert again == [49, 64]
            assert not pool.processes_spawned
        assert leaked_segments() == []

    def test_injected_pickle_failure_runs_inline(self, eight_cpus):
        sup = _supervision(FaultPlan().with_pickle_failure())
        with WorkerPool(4) as pool:
            results = pool.map(_square, list(range(5)), sup)
            assert results == [x * x for x in range(5)]
            assert not pool.processes_spawned
        assert any("pickling" in f for f in sup.report.fallbacks)

    def test_shm_failure_embeds_arrays_with_identical_results(
        self, eight_cpus, monkeypatch
    ):
        values = np.random.default_rng(3).normal(size=2000)
        target = EstimationTarget(
            values=values, aggregate=get_aggregate("AVG")
        )
        clean = bootstrap_replicates(target, 48, seed=123)
        sup = _supervision(FaultPlan().with_shm_failure())
        with WorkerPool(4) as pool:
            degraded = bootstrap_replicates(
                target, 48, seed=123, pool=pool, supervision=sup
            )
        np.testing.assert_array_equal(clean, degraded)
        assert any("shared-memory" in f for f in sup.report.fallbacks)
        assert leaked_segments() == []


# ---------------------------------------------------------------------------
# Orphaned shared-memory segments
# ---------------------------------------------------------------------------
class TestShmSweep:
    def test_sweep_after_abnormal_process_exit(self):
        # A process that creates a segment and hard-exits (no cleanup,
        # resource tracker suppressed — exactly what a SIGKILL leaves
        # behind).  The janitor identifies the orphan by its embedded
        # owner pid and unlinks it.
        child = subprocess.run(
            [
                sys.executable,
                "-c",
                "import os\n"
                "from multiprocessing import resource_tracker, shared_memory\n"
                "resource_tracker.register = lambda *a, **k: None\n"
                f"name = '{SEGMENT_PREFIX}_' + str(os.getpid()) + '_9999'\n"
                "shared_memory.SharedMemory(name=name, create=True, size=64)\n"
                "print(name, flush=True)\n"
                "os._exit(1)\n",
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        orphan = child.stdout.strip()
        assert orphan
        assert os.path.exists(f"/dev/shm/{orphan}")
        swept = sweep_orphans()
        assert orphan in swept
        assert not os.path.exists(f"/dev/shm/{orphan}")

    def test_sweep_spares_live_owners(self):
        from multiprocessing import shared_memory

        name = f"{SEGMENT_PREFIX}_{os.getpid()}_424242"
        segment = shared_memory.SharedMemory(name=name, create=True, size=64)
        try:
            assert name not in sweep_orphans()
            assert os.path.exists(f"/dev/shm/{name}")
        finally:
            segment.close()
            segment.unlink()


# ---------------------------------------------------------------------------
# Worker-count resolution (satellite hardening)
# ---------------------------------------------------------------------------
class TestWorkerResolution:
    def test_counts_capped_at_cpu_count(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert resolve_num_workers(64) == 4
        assert resolve_num_workers(3) == 3
        assert resolve_num_workers(0) == 4
        monkeypatch.setenv("REPRO_WORKERS", "100")
        assert resolve_num_workers(None) == 4

    def test_invalid_start_method_rejected_eagerly(self, monkeypatch):
        monkeypatch.setenv(START_METHOD_ENV, "teleport")
        with pytest.raises(ValueError) as excinfo:
            resolve_num_workers(2)
        message = str(excinfo.value)
        assert "teleport" in message
        # The error lists what *is* allowed on this platform.
        import multiprocessing

        for method in multiprocessing.get_all_start_methods():
            assert method in message


# ---------------------------------------------------------------------------
# Engine-level degradation: honest answers end to end
# ---------------------------------------------------------------------------
def _make_engine(**config_kwargs) -> AQPEngine:
    config = EngineConfig(
        retry_backoff_seconds=0.0, run_diagnostics=False, **config_kwargs
    )
    engine = AQPEngine(config=config, seed=42)
    rng = np.random.default_rng(9)
    table = Table(
        {"x": rng.normal(100.0, 15.0, 20000)}, name="t"
    )
    engine.register_table("t", table)
    engine.create_sample("t", size=4000, name="s")
    return engine


def _median_query(engine: AQPEngine):
    return engine.execute("SELECT MEDIAN(x) FROM t", sample_name="s")


class TestEngineDegradation:
    def test_recovered_faults_are_bit_identical_to_clean_run(self):
        clean = _median_query(_make_engine())
        plan = FaultPlan().with_crash(0).with_hang(2, seconds=30.0)
        faulty = _median_query(
            _make_engine(fault_plan=plan, task_timeout_seconds=0.25)
        )
        assert clean.single().interval == faulty.single().interval
        report = faulty.execution_report
        assert report.worker_crashes == 1
        assert report.task_timeouts == 1
        assert report.task_retries == 2
        assert report.recovered and not report.degraded
        assert not faulty.degraded

    def test_partial_replicate_loss_widens_interval_honestly(self):
        clean = _median_query(_make_engine())
        plan = FaultPlan().with_crash(0, attempt=None)
        with pytest.warns(DegradedResultWarning):
            degraded = _median_query(_make_engine(fault_plan=plan))
        report = degraded.execution_report
        assert report.replicates_completed < report.replicates_requested
        assert degraded.degraded
        assert report.degradation_reasons
        # The CI comes from the completed replicates only, inflated by
        # sqrt(K/K'): strictly wider than a clean interval would be
        # narrow-silent about the loss.
        inflation = np.sqrt(
            report.replicates_requested / report.replicates_completed
        )
        assert degraded.single().interval.half_width > 0
        assert degraded.single().interval.half_width != pytest.approx(
            clean.single().interval.half_width
        )
        assert inflation > 1.0

    def test_total_bootstrap_loss_returns_flagged_point_estimate(self):
        plan = FaultPlan(specs=(FaultSpec(kind="crash", attempt=None),))
        with pytest.warns(DegradedResultWarning):
            result = _median_query(_make_engine(fault_plan=plan))
        value = result.single()
        assert value.method == "unreliable"
        assert value.fell_back
        assert value.interval is None
        assert np.isfinite(value.estimate)
        assert result.execution_report.degraded

    def test_total_bootstrap_loss_falls_back_to_closed_form(self):
        # AVG is closed-form capable; when its bootstrap (forced via a
        # UDF-free direct estimator path) is unavailable the engine
        # substitutes the closed-form interval instead of giving up.
        engine = _make_engine(
            fault_plan=FaultPlan(specs=(FaultSpec(kind="crash", attempt=None),))
        )
        engine.register_udf("identity", lambda v: v)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            result = engine.execute(
                "SELECT AVG(identity(x)) FROM t", sample_name="s"
            )
        value = result.single()
        assert value.fell_back
        assert value.method == "closed_form"
        assert value.interval is not None
        assert value.interval.half_width > 0

    def test_query_deadline_degrades_not_crashes(self):
        with pytest.warns(DegradedResultWarning):
            result = _median_query(
                _make_engine(query_deadline_seconds=0.0)
            )
        report = result.execution_report
        assert report.deadline_hit
        assert result.single().method == "unreliable"

    def test_acceptance_crash_plus_timeout_with_four_workers(
        self, eight_cpus
    ):
        """The PR's acceptance scenario: crash + hang at num_workers=4.

        An injected worker crash and one hung task, both on first
        attempts, at ``num_workers=4``: the query still returns an
        answer, the ExecutionReport shows the retries, and because both
        failures were recovered by retry the result is bit-identical to
        a clean run.
        """
        clean = _median_query(_make_engine())
        plan = FaultPlan().with_crash(0, worker_only=True).with_hang(
            1, seconds=30.0
        )
        engine = _make_engine(
            fault_plan=plan,
            num_workers=4,
            task_timeout_seconds=1.0,
        )
        try:
            faulty = _median_query(engine)
        finally:
            engine.close()
        report = faulty.execution_report
        assert report.worker_crashes >= 1
        assert report.task_timeouts >= 1
        assert report.task_retries >= 2
        assert report.pool_restarts >= 1
        assert not report.degraded
        assert clean.single().interval == faulty.single().interval
        assert leaked_segments() == []


# ---------------------------------------------------------------------------
# Cluster simulator: the same schedules price §6-style failures
# ---------------------------------------------------------------------------
class TestSimulatorFaults:
    def _job(self):
        from repro.cluster.simulator import Job, Stage

        return Job(
            name="bootstrap",
            stages=(
                Stage(name="replicates", total_rows=5e8, total_weight_cells=5e8),
            ),
        )

    def test_fault_plan_slows_the_job_deterministically(self):
        from repro.cluster.config import ClusterConfig
        from repro.cluster.simulator import ClusterSimulator

        simulator = ClusterSimulator(ClusterConfig())
        job = self._job()
        plan = FaultPlan(seed=5).with_crash_rate(0.10)
        baseline = simulator.simulate(
            job, rng=np.random.default_rng(1)
        )
        faulted = simulator.simulate(
            job, rng=np.random.default_rng(1), fault_plan=plan
        )
        repeat = simulator.simulate(
            job, rng=np.random.default_rng(1), fault_plan=plan
        )
        assert faulted.faulted_tasks > 0
        assert baseline.faulted_tasks == 0
        assert faulted.total_seconds > baseline.total_seconds
        assert faulted.total_seconds == repeat.total_seconds

    def test_speculation_rescues_fault_stragglers(self):
        from repro.cluster.config import ClusterConfig
        from repro.cluster.simulator import ClusterSimulator

        simulator = ClusterSimulator(ClusterConfig())
        job = self._job()
        plan = FaultPlan(seed=5).with_crash_rate(0.10)
        unmitigated = simulator.simulate(
            job, rng=np.random.default_rng(2), fault_plan=plan
        )
        mitigated = simulator.simulate(
            job,
            rng=np.random.default_rng(2),
            fault_plan=plan,
            straggler_mitigation=True,
        )
        assert mitigated.total_seconds <= unmitigated.total_seconds
