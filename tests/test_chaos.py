"""The chaos harness itself: schedules, invariants, and the report.

The harness (:mod:`repro.chaos`) is the PR's end-to-end verifier, so it
gets its own tests: fault schedules must be pure functions of their
seed (a violating seed can be replayed exactly), a small seeded run
must hold every invariant, and the report must round-trip to the
machine-readable JSON the CI job uploads.

The full rotation (``make chaos``) runs 25+ seeds; here we keep to a
couple of cheap ones so the tier-1 suite stays fast.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.chaos import (
    ChaosReport,
    ScheduleResult,
    Violation,
    main,
    random_fault_plan,
    run_chaos,
    run_schedule,
)
from repro.faults.plan import _IO_KINDS, _WORKER_KINDS
from repro.workloads.datagen import conviva_sessions_table


class TestRandomFaultPlan:
    def test_pure_function_of_seed(self):
        for seed in range(20):
            again = random_fault_plan(seed)
            assert random_fault_plan(seed).specs == again.specs
            assert again.seed == seed

    def test_different_seeds_differ(self):
        plans = {random_fault_plan(seed).specs for seed in range(20)}
        assert len(plans) > 1

    def test_only_known_kinds(self):
        legal = set(_WORKER_KINDS) | set(_IO_KINDS)
        for seed in range(50):
            for spec in random_fault_plan(seed).specs:
                assert spec.kind in legal

    def test_both_domains_appear_across_seeds(self):
        kinds = {
            spec.kind
            for seed in range(50)
            for spec in random_fault_plan(seed).specs
        }
        assert kinds & set(_WORKER_KINDS)
        assert kinds & set(_IO_KINDS)

    def test_storage_faults_bound_to_early_ops(self):
        # Materializations are the first few save operations; a fault
        # pinned past them would never fire.
        for seed in range(50):
            for spec in random_fault_plan(seed, save_ops=3).specs:
                if spec.kind in ("torn", "bitflip", "enospc", "crashpromote"):
                    assert spec.task is None or spec.task < 3


class TestRunSchedule:
    @pytest.mark.parametrize("seed", [1, 9])
    def test_seeded_schedule_holds_invariants(self, seed, tmp_path):
        table = conviva_sessions_table(1500, np.random.default_rng(0))
        outcome = run_schedule(
            seed,
            table,
            queries_per_seed=3,
            workers=2,
            workdir=str(tmp_path),
        )
        assert outcome.violations == []
        assert outcome.queries > 0
        # Cold-vs-chaos comparisons happened (the harness did not just
        # skip everything): every answer is identical, flagged, or a
        # typed error.
        assert (
            outcome.identical + outcome.flagged + outcome.typed_errors
            <= outcome.queries
        )
        assert outcome.identical > 0

    def test_schedule_replay_is_stable(self, tmp_path):
        # Same seed, same table: the schedule's observable accounting
        # replays (this is what makes a violating seed debuggable).
        table = conviva_sessions_table(1500, np.random.default_rng(0))
        first = run_schedule(
            3, table, queries_per_seed=3, workers=2,
            workdir=str(tmp_path / "a"),
        )
        second = run_schedule(
            3, table, queries_per_seed=3, workers=2,
            workdir=str(tmp_path / "b"),
        )
        assert first.violations == [] and second.violations == []
        assert first.fault_spec == second.fault_spec
        assert first.queries == second.queries
        assert first.identical == second.identical
        assert first.flagged == second.flagged
        assert first.quarantined == second.quarantined
        assert first.staging_swept == second.staging_swept


class TestReport:
    def _report(self) -> ChaosReport:
        ok = ScheduleResult(seed=0, fault_spec="()", queries=5, identical=5)
        bad = ScheduleResult(
            seed=1,
            fault_spec="()",
            queries=5,
            violations=[Violation(1, "honesty", "silent wrong answer")],
        )
        return ChaosReport(
            seeds=[0, 1],
            schedules=[ok, bad],
            total_queries=10,
            total_violations=1,
        )

    def test_ok_property(self):
        report = self._report()
        assert not report.ok
        report.schedules[1].violations.clear()
        report.total_violations = 0
        assert report.ok

    def test_json_round_trip(self):
        payload = self._report().to_json()
        text = json.dumps(payload)  # must be JSON-serializable as-is
        loaded = json.loads(text)
        assert loaded["ok"] is False
        assert loaded["total_queries"] == 10
        assert loaded["seeds"] == [0, 1]
        violation = loaded["schedules"][1]["violations"][0]
        assert violation["invariant"] == "honesty"

    def test_run_chaos_aggregates(self, capsys):
        report = run_chaos([4], rows=1200, queries_per_seed=2, workers=2)
        assert report.seeds == [4]
        assert report.total_queries == report.schedules[0].queries
        assert report.ok, [
            (v.invariant, v.detail)
            for s in report.schedules
            for v in s.violations
        ]
        assert "seed" in capsys.readouterr().out


class TestMain:
    def test_main_writes_report_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            [
                "--seeds", "1",
                "--first-seed", "2",
                "--rows", "1200",
                "--queries", "2",
                "--out", str(out),
            ]
        )
        capsys.readouterr()
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert payload["seeds"] == [2]
