"""Failure-injection and edge-case tests across the pipeline."""

import numpy as np
import pytest

from repro.core import (
    BootstrapEstimator,
    ClosedFormEstimator,
    EstimationTarget,
    diagnose,
)
from repro.core.diagnostics import DiagnosticConfig
from repro.core.pipeline import AQPEngine, EngineConfig
from repro.engine import Table
from repro.engine.aggregates import get_aggregate
from repro.errors import DiagnosticError, EstimationError


@pytest.fixture
def engine(rng):
    engine = AQPEngine(seed=9)
    n = 40_000
    engine.register_table(
        "t",
        Table(
            {
                "v": rng.lognormal(2.0, 0.5, n),
                "tag": rng.choice(["a", "b"], n, p=[0.999, 0.001]),
                "constant": np.full(n, 7.0),
                "with_nan": np.where(
                    rng.random(n) < 0.01, np.nan, rng.normal(size=n)
                ),
            }
        ),
    )
    engine.create_sample("t", size=10_000, name="s")
    return engine


class TestEmptyAndTinyFilterResults:
    def test_filter_matching_nothing_falls_back_exact(self, engine):
        result = engine.execute(
            "SELECT AVG(v) FROM t WHERE tag = 'missing_tag'",
            run_diagnostics=False,
        )
        value = result.single()
        assert value.fell_back
        assert value.method == "exact"
        assert np.isnan(value.estimate)  # exact answer over zero rows

    def test_rare_group_filter_still_estimates_or_falls_back(self, engine):
        # ~0.1% selectivity: the sample holds only a handful of matches.
        result = engine.execute(
            "SELECT AVG(v) FROM t WHERE tag = 'b'", run_diagnostics=False
        )
        value = result.single()
        # Either a (wide) estimate or a clean fallback — never a crash.
        assert np.isfinite(value.estimate) or value.fell_back

    def test_count_of_empty_filter_is_zero(self, engine):
        result = engine.execute(
            "SELECT COUNT(*) FROM t WHERE tag = 'missing_tag'",
            run_diagnostics=False,
        )
        value = result.single()
        assert value.estimate == 0.0


class TestDegenerateColumns:
    def test_avg_of_constant_column(self, engine):
        result = engine.execute(
            "SELECT AVG(constant) FROM t", run_diagnostics=False
        )
        value = result.single()
        assert value.estimate == 7.0
        assert value.interval.half_width == 0.0

    def test_diagnostic_on_constant_column_fails_cleanly(self, engine):
        result = engine.execute("SELECT AVG(constant) FROM t")
        value = result.single()
        # Degenerate sampling distribution: the diagnostic cannot
        # validate, so the value must have been rerouted.
        assert value.fell_back
        assert value.estimate == 7.0

    def test_bootstrap_zero_width_on_constant(self, rng):
        target = EstimationTarget(np.full(1000, 3.0), get_aggregate("AVG"))
        interval = BootstrapEstimator(50, rng).estimate(target)
        assert interval.half_width == 0.0

    def test_closed_form_zero_width_on_constant(self):
        target = EstimationTarget(np.full(1000, 3.0), get_aggregate("AVG"))
        interval = ClosedFormEstimator().estimate(target)
        assert interval.half_width == 0.0


class TestNaNPropagation:
    def test_nan_column_average_is_nan_exact(self, engine):
        result = engine.execute_exact("SELECT AVG(with_nan) AS a FROM t")
        assert np.isnan(result.column("a")[0])

    def test_is_not_null_filter_cleans_nans(self, engine):
        result = engine.execute(
            "SELECT AVG(with_nan) FROM t WHERE with_nan IS NOT NULL",
            run_diagnostics=False,
        )
        value = result.single()
        assert np.isfinite(value.estimate)
        assert abs(value.estimate) < 0.2  # standard normal mean


class TestSmallSamples:
    def test_two_row_target_closed_form(self):
        target = EstimationTarget(
            np.array([1.0, 2.0]), get_aggregate("AVG")
        )
        interval = ClosedFormEstimator().estimate(target)
        assert interval.half_width > 0

    def test_single_row_target_closed_form_rejected(self):
        target = EstimationTarget(np.array([1.0]), get_aggregate("AVG"))
        with pytest.raises(EstimationError):
            ClosedFormEstimator().estimate(target)

    def test_diagnostic_on_tiny_sample_rejected(self, rng):
        target = EstimationTarget(rng.normal(size=50), get_aggregate("AVG"))
        with pytest.raises(DiagnosticError, match="too small"):
            diagnose(
                target,
                ClosedFormEstimator(),
                0.95,
                DiagnosticConfig(num_subsamples=100, num_sizes=3),
                rng,
            )

    def test_engine_auto_diagnostic_skips_tiny_samples(self, rng):
        engine = AQPEngine(seed=2)
        engine.register_table("tiny", Table({"v": rng.normal(size=120)}))
        engine.create_sample("tiny", size=60, name="s")
        # Diagnostics requested but impossible at this size: the engine
        # skips them rather than crashing.
        result = engine.execute("SELECT AVG(v) FROM tiny")
        value = result.single()
        assert value.diagnostic is None
        assert np.isfinite(value.estimate)


class TestUnicodeAndStrings:
    def test_unicode_group_keys(self, rng):
        engine = AQPEngine(seed=4)
        cities = np.array(["北京", "München", "São Paulo"])
        n = 9000
        engine.register_table(
            "world",
            Table(
                {
                    "city": cities[rng.integers(0, 3, n)],
                    "v": rng.normal(10, 2, n),
                }
            ),
        )
        engine.create_sample("world", size=3000, name="s")
        result = engine.execute(
            "SELECT city, AVG(v) AS a FROM world GROUP BY city",
            run_diagnostics=False,
        )
        assert {row.group["city"] for row in result.rows} == set(cities)

    def test_unicode_string_filter(self, rng):
        engine = AQPEngine(seed=4)
        n = 5000
        labels = np.array(["α", "β"])
        engine.register_table(
            "greek",
            Table({"l": labels[rng.integers(0, 2, n)], "v": np.ones(n)}),
        )
        engine.create_sample("greek", size=2000, name="s")
        result = engine.execute(
            "SELECT COUNT(*) FROM greek WHERE l = 'α'",
            run_diagnostics=False,
        )
        assert result.single().estimate == pytest.approx(n / 2, rel=0.15)


class TestExtremeScaleFactors:
    def test_huge_scale_factor_sum(self, rng):
        """A 0.01% sample: scale factor 10,000."""
        n = 2_000_000
        values = rng.normal(100.0, 5.0, n)
        engine = AQPEngine(seed=8)
        engine.register_table("big", Table({"v": values}))
        engine.create_sample("big", size=200, name="tiny")
        result = engine.execute(
            "SELECT SUM(v) FROM big", run_diagnostics=False
        )
        value = result.single()
        assert value.estimate == pytest.approx(values.sum(), rel=0.05)
