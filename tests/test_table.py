"""Unit tests for the columnar Table."""

import numpy as np
import pytest

from repro.engine import Table, concat_tables
from repro.errors import SchemaError


class TestConstruction:
    def test_basic_construction(self):
        table = Table({"a": [1, 2, 3], "b": [4.0, 5.0, 6.0]})
        assert table.num_rows == 3
        assert table.column_names == ["a", "b"]

    def test_empty_mapping_rejected(self):
        with pytest.raises(SchemaError, match="at least one column"):
            Table({})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SchemaError, match="rows"):
            Table({"a": [1, 2, 3], "b": [1, 2]})

    def test_two_dimensional_column_rejected(self):
        with pytest.raises(SchemaError, match="one-dimensional"):
            Table({"a": np.zeros((2, 2))})

    def test_zero_row_table_allowed(self):
        table = Table({"a": np.array([])})
        assert table.num_rows == 0

    def test_schema_reports_dtypes(self):
        table = Table({"a": np.array([1, 2]), "b": np.array([1.0, 2.0])})
        assert table.schema["a"].kind == "i"
        assert table.schema["b"].kind == "f"

    def test_column_order_preserved(self):
        table = Table({"z": [1], "a": [2], "m": [3]})
        assert table.column_names == ["z", "a", "m"]

    def test_repr_mentions_name_and_rows(self):
        table = Table({"a": [1]}, name="things")
        assert "things" in repr(table)
        assert "rows=1" in repr(table)


class TestAccess:
    def test_column_access(self, tiny_table):
        np.testing.assert_array_equal(
            tiny_table.column("x"), [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        )

    def test_unknown_column_raises(self, tiny_table):
        with pytest.raises(SchemaError, match="unknown column"):
            tiny_table.column("nope")

    def test_contains(self, tiny_table):
        assert "x" in tiny_table
        assert "nope" not in tiny_table

    def test_len(self, tiny_table):
        assert len(tiny_table) == 6

    def test_equality(self, tiny_table):
        clone = Table(tiny_table.columns())
        assert tiny_table == clone

    def test_inequality_on_values(self, tiny_table):
        other = tiny_table.with_column("x", np.zeros(6))
        assert tiny_table != other

    def test_estimated_bytes_positive(self, tiny_table):
        assert tiny_table.estimated_bytes() > 0


class TestTransformations:
    def test_filter(self, tiny_table):
        result = tiny_table.filter(tiny_table.column("x") > 3)
        assert result.num_rows == 3
        np.testing.assert_array_equal(result.column("x"), [4.0, 5.0, 6.0])

    def test_filter_requires_bool_mask(self, tiny_table):
        with pytest.raises(SchemaError, match="boolean"):
            tiny_table.filter(np.ones(6))

    def test_filter_requires_matching_length(self, tiny_table):
        with pytest.raises(SchemaError, match="entries"):
            tiny_table.filter(np.ones(3, dtype=bool))

    def test_take_with_repeats(self, tiny_table):
        result = tiny_table.take(np.array([0, 0, 5]))
        np.testing.assert_array_equal(result.column("x"), [1.0, 1.0, 6.0])

    def test_slice(self, tiny_table):
        result = tiny_table.slice(2, 4)
        np.testing.assert_array_equal(result.column("x"), [3.0, 4.0])

    def test_head(self, tiny_table):
        assert tiny_table.head(2).num_rows == 2
        assert tiny_table.head(100).num_rows == 6

    def test_select_projects_and_orders(self, tiny_table):
        result = tiny_table.select(["y", "x"])
        assert result.column_names == ["y", "x"]

    def test_with_column_adds(self, tiny_table):
        result = tiny_table.with_column("z", np.arange(6))
        assert "z" in result
        assert "z" not in tiny_table  # original unchanged

    def test_with_column_replaces(self, tiny_table):
        result = tiny_table.with_column("x", np.zeros(6))
        assert result.column("x").sum() == 0

    def test_with_column_length_check(self, tiny_table):
        with pytest.raises(SchemaError):
            tiny_table.with_column("z", np.arange(3))

    def test_drop(self, tiny_table):
        result = tiny_table.drop(["y"])
        assert result.column_names == ["x", "g"]

    def test_drop_all_rejected(self, tiny_table):
        with pytest.raises(SchemaError, match="every column"):
            tiny_table.drop(["x", "y", "g"])

    def test_rename(self, tiny_table):
        result = tiny_table.rename({"x": "value"})
        assert "value" in result
        assert "x" not in result


class TestSamplingAndPartitioning:
    def test_sample_without_replacement_size(self, sessions_table, rng):
        sample = sessions_table.sample_rows(100, rng)
        assert sample.num_rows == 100

    def test_sample_without_replacement_too_large(self, tiny_table, rng):
        with pytest.raises(SchemaError, match="without replacement"):
            tiny_table.sample_rows(100, rng)

    def test_sample_with_replacement_can_exceed(self, tiny_table, rng):
        sample = tiny_table.sample_rows(20, rng, replacement=True)
        assert sample.num_rows == 20

    def test_negative_sample_size_rejected(self, tiny_table, rng):
        with pytest.raises(SchemaError, match="non-negative"):
            tiny_table.sample_rows(-1, rng)

    def test_shuffle_preserves_multiset(self, tiny_table, rng):
        shuffled = tiny_table.shuffle(rng)
        assert sorted(shuffled.column("x")) == sorted(tiny_table.column("x"))

    def test_partition_covers_all_rows(self, sessions_table):
        parts = sessions_table.partition(7)
        assert len(parts) == 7
        assert sum(p.num_rows for p in parts) == sessions_table.num_rows

    def test_partition_sizes_near_equal(self, sessions_table):
        parts = sessions_table.partition(7)
        sizes = [p.num_rows for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_partition_invalid_count(self, tiny_table):
        with pytest.raises(SchemaError):
            tiny_table.partition(0)

    def test_partition_rows(self, tiny_table):
        parts = tiny_table.partition_rows(4)
        assert [p.num_rows for p in parts] == [4, 2]

    def test_partition_rows_invalid(self, tiny_table):
        with pytest.raises(SchemaError):
            tiny_table.partition_rows(0)


class TestConversion:
    def test_from_rows_round_trip(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        table = Table.from_rows(rows)
        assert table.to_rows() == rows

    def test_from_rows_empty_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_rows([])

    def test_iter_rows(self, tiny_table):
        first = next(tiny_table.iter_rows())
        assert first == (1.0, 10.0, "a")

    def test_concat_tables(self, tiny_table):
        doubled = concat_tables([tiny_table, tiny_table])
        assert doubled.num_rows == 12

    def test_concat_empty_rejected(self):
        with pytest.raises(SchemaError):
            concat_tables([])

    def test_concat_schema_mismatch_rejected(self, tiny_table):
        other = tiny_table.rename({"x": "q"})
        with pytest.raises(SchemaError, match="differing columns"):
            concat_tables([tiny_table, other])
