"""Unit tests for ground-truth intervals and the §3 evaluation protocol."""

import numpy as np
import pytest

from repro.core.bootstrap import BootstrapEstimator
from repro.core.closed_form import ClosedFormEstimator
from repro.core.ground_truth import (
    DatasetQuery,
    Verdict,
    classify_deltas,
    evaluate_estimator,
    sampling_distribution,
    true_interval,
)
from repro.core.large_deviation import HoeffdingEstimator
from repro.engine.aggregates import get_aggregate
from repro.errors import EstimationError


@pytest.fixture(scope="module")
def dataset():
    return np.random.default_rng(42).lognormal(2.0, 1.0, size=200_000)


@pytest.fixture
def avg_query(dataset):
    return DatasetQuery(values=dataset, aggregate=get_aggregate("AVG"))


class TestDatasetQuery:
    def test_true_answer(self, avg_query, dataset):
        assert avg_query.true_answer() == pytest.approx(dataset.mean())

    def test_true_answer_with_mask(self, dataset):
        mask = dataset > 10.0
        query = DatasetQuery(dataset, get_aggregate("AVG"), mask=mask)
        assert query.true_answer() == pytest.approx(dataset[mask].mean())

    def test_sample_target_shape(self, avg_query, rng):
        target = avg_query.sample_target(1000, rng)
        assert target.total_sample_rows == 1000
        assert target.dataset_rows == 200_000

    def test_oversized_sample_rejected(self, avg_query, rng):
        with pytest.raises(EstimationError, match="exceeds"):
            avg_query.sample_target(10**7, rng)

    def test_extensive_scaling_round_trip(self, dataset, rng):
        query = DatasetQuery(
            dataset, get_aggregate("SUM"), extensive=True
        )
        target = query.sample_target(10_000, rng)
        # Scaled sample SUM estimates the full-data SUM.
        assert target.point_estimate() == pytest.approx(
            query.true_answer(), rel=0.1
        )


class TestSamplingDistribution:
    def test_centered_on_truth(self, avg_query, rng):
        estimates = sampling_distribution(avg_query, 5000, 50, rng)
        assert estimates.mean() == pytest.approx(
            avg_query.true_answer(), rel=0.02
        )

    def test_spread_shrinks_with_n(self, avg_query, rng):
        small = sampling_distribution(avg_query, 500, 50, rng)
        large = sampling_distribution(avg_query, 50_000, 50, rng)
        assert large.std() < small.std()

    def test_requires_two_trials(self, avg_query, rng):
        with pytest.raises(EstimationError, match="at least 2"):
            sampling_distribution(avg_query, 100, 1, rng)


class TestTrueInterval:
    def test_centered_on_true_answer(self, avg_query, rng):
        ci = true_interval(avg_query, 2000, 0.95, 60, rng)
        assert ci.estimate == avg_query.true_answer()
        assert ci.method == "ground_truth"

    def test_width_scales_inverse_sqrt_n(self, avg_query, rng):
        narrow = true_interval(avg_query, 40_000, 0.95, 80, rng)
        wide = true_interval(avg_query, 400, 0.95, 80, rng)
        ratio = wide.half_width / narrow.half_width
        assert 4 < ratio < 25  # ~sqrt(100) = 10 with Monte-Carlo slack


class TestClassifyDeltas:
    def test_all_zero_correct(self):
        assert classify_deltas(np.zeros(100)) is Verdict.CORRECT

    def test_small_deviations_correct(self):
        assert classify_deltas(np.full(100, 0.1)) is Verdict.CORRECT

    def test_mostly_positive_pessimistic(self):
        assert classify_deltas(np.full(100, 0.5)) is Verdict.PESSIMISTIC

    def test_mostly_negative_optimistic(self):
        assert classify_deltas(np.full(100, -0.5)) is Verdict.OPTIMISTIC

    def test_tolerance_respected(self):
        deltas = np.zeros(100)
        deltas[:5] = 10.0  # exactly 5% outside: still acceptable
        assert classify_deltas(deltas) is Verdict.CORRECT
        deltas[:6] = 10.0
        assert classify_deltas(deltas) is Verdict.PESSIMISTIC

    def test_larger_side_wins(self):
        deltas = np.concatenate([np.full(30, -0.5), np.full(10, 0.5), np.zeros(60)])
        assert classify_deltas(deltas) is Verdict.OPTIMISTIC

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            classify_deltas(np.array([]))


class TestEvaluateEstimator:
    """End-to-end §3 behaviour on canonical good and bad cases."""

    def test_closed_form_correct_on_mean(self, avg_query, rng):
        # n = 20000: heavy-tailed data makes per-trial interval widths
        # fluctuate ~sqrt(kurtosis/n), so small n is genuinely borderline
        # under the paper's 0.2-band/5 % rule (that is its §3 finding);
        # the CORRECT verdict needs a comfortably large sample.
        outcome = evaluate_estimator(
            avg_query, ClosedFormEstimator(), 20_000, rng, num_trials=40
        )
        assert outcome.verdict is Verdict.CORRECT
        assert not outcome.failed

    def test_bootstrap_correct_on_mean(self, avg_query, rng):
        outcome = evaluate_estimator(
            avg_query,
            BootstrapEstimator(150, rng),
            20_000,
            rng,
            num_trials=30,
        )
        assert outcome.verdict is Verdict.CORRECT

    def test_hoeffding_pessimistic_on_mean(self, avg_query, rng):
        outcome = evaluate_estimator(
            avg_query, HoeffdingEstimator(), 5000, rng, num_trials=30
        )
        assert outcome.verdict is Verdict.PESSIMISTIC
        assert outcome.deltas.mean() > 1.0

    def test_bootstrap_fails_on_max(self, dataset, rng):
        query = DatasetQuery(dataset, get_aggregate("MAX"))
        outcome = evaluate_estimator(
            query, BootstrapEstimator(60, rng), 5000, rng, num_trials=30
        )
        assert outcome.verdict is Verdict.OPTIMISTIC

    def test_closed_form_not_applicable_to_max(self, dataset, rng):
        query = DatasetQuery(dataset, get_aggregate("MAX"))
        outcome = evaluate_estimator(
            query, ClosedFormEstimator(), 5000, rng, num_trials=10
        )
        assert outcome.verdict is Verdict.NOT_APPLICABLE
        assert len(outcome.deltas) == 0

    def test_reusing_true_ci_skips_recomputation(self, avg_query, rng):
        truth = true_interval(avg_query, 2000, 0.95, 40, rng)
        outcome = evaluate_estimator(
            avg_query,
            ClosedFormEstimator(),
            2000,
            rng,
            num_trials=10,
            true_ci=truth,
        )
        assert outcome.true_ci is truth

    def test_degenerate_query_rejected(self, rng):
        constant = DatasetQuery(np.ones(10_000), get_aggregate("AVG"))
        with pytest.raises(EstimationError, match="degenerate"):
            evaluate_estimator(
                constant, ClosedFormEstimator(), 500, rng, num_trials=5
            )
