"""Unit tests for error-controlled sample-size selection."""

import numpy as np
import pytest

from repro.core import (
    BootstrapEstimator,
    ClosedFormEstimator,
    EstimationTarget,
)
from repro.core.error_control import (
    SampleSizeSelector,
    predict_half_width,
    required_sample_size,
)
from repro.engine.aggregates import get_aggregate
from repro.errors import EstimationError


class TestPredictHalfWidth:
    def test_sqrt_scaling(self):
        assert predict_half_width(1.0, 100, 400) == pytest.approx(0.5)
        assert predict_half_width(1.0, 400, 100) == pytest.approx(2.0)

    def test_same_size_identity(self):
        assert predict_half_width(0.7, 500, 500) == pytest.approx(0.7)

    def test_invalid_rows(self):
        with pytest.raises(EstimationError):
            predict_half_width(1.0, 0, 100)
        with pytest.raises(EstimationError):
            predict_half_width(1.0, 100, 0)


class TestRequiredSampleSize:
    def test_inverse_square_law(self):
        # Half-width 10% of estimate at n=1000 → 4× rows for 5%.
        n = required_sample_size(1.0, 10.0, 1000, 0.05)
        assert n == 4000

    def test_target_already_met(self):
        n = required_sample_size(0.1, 10.0, 1000, 0.05)
        assert n <= 1000

    def test_zero_width_trivial(self):
        assert required_sample_size(0.0, 10.0, 1000, 0.01) == 1

    def test_invalid_inputs(self):
        with pytest.raises(EstimationError, match="positive"):
            required_sample_size(1.0, 10.0, 1000, 0.0)
        with pytest.raises(EstimationError, match="zero estimate"):
            required_sample_size(1.0, 0.0, 1000, 0.1)


@pytest.fixture(scope="module")
def population():
    return np.random.default_rng(3).lognormal(2.0, 0.7, 500_000)


class TestSampleSizeSelector:
    def test_recommendation_is_accurate(self, population, rng):
        """A sample of the recommended size actually meets the target."""
        pilot = EstimationTarget(population[:2000], get_aggregate("AVG"))
        selector = SampleSizeSelector(ClosedFormEstimator())
        recommendation = selector.recommend(
            pilot, target_relative_error=0.02, dataset_rows=len(population)
        )
        assert recommendation.feasible
        rows = min(recommendation.required_rows, len(population))
        verify = EstimationTarget(
            population[:rows], get_aggregate("AVG")
        )
        achieved = ClosedFormEstimator().estimate(verify, 0.95)
        assert achieved.relative_error <= 0.02 * 1.2

    def test_infeasible_target_flagged(self, population):
        pilot = EstimationTarget(population[:2000], get_aggregate("AVG"))
        selector = SampleSizeSelector(ClosedFormEstimator())
        recommendation = selector.recommend(
            pilot, target_relative_error=1e-6, dataset_rows=len(population)
        )
        assert not recommendation.feasible

    def test_pick_smallest_sufficient(self, population, rng):
        pilot = EstimationTarget(population[:2000], get_aggregate("AVG"))
        selector = SampleSizeSelector(ClosedFormEstimator())
        sizes = [1000, 10_000, 100_000, 400_000]
        chosen, recommendation = selector.pick_sample(
            pilot, sizes, target_relative_error=0.02,
            dataset_rows=len(population),
        )
        assert chosen in sizes
        assert chosen >= recommendation.required_rows
        smaller = [s for s in sizes if s < chosen]
        assert all(s < recommendation.required_rows for s in smaller)

    def test_pick_none_when_nothing_suffices(self, population):
        pilot = EstimationTarget(population[:2000], get_aggregate("AVG"))
        selector = SampleSizeSelector(ClosedFormEstimator())
        chosen, __ = selector.pick_sample(
            pilot, [100, 1000], target_relative_error=1e-5
        )
        assert chosen is None

    def test_works_with_bootstrap_pilot(self, population, rng):
        pilot = EstimationTarget(
            population[:2000], get_aggregate("PERCENTILE", 0.5)
        )
        selector = SampleSizeSelector(BootstrapEstimator(100, rng))
        recommendation = selector.recommend(pilot, 0.05, len(population))
        assert recommendation.required_rows > 0
        assert recommendation.pilot_interval.method == "bootstrap"

    def test_safety_factor_inflates(self, population):
        pilot = EstimationTarget(population[:2000], get_aggregate("AVG"))
        plain = SampleSizeSelector(ClosedFormEstimator(), safety_factor=1.0)
        padded = SampleSizeSelector(ClosedFormEstimator(), safety_factor=2.0)
        assert (
            padded.recommend(pilot, 0.02).required_rows
            > plain.recommend(pilot, 0.02).required_rows
        )

    def test_invalid_safety_factor(self):
        with pytest.raises(EstimationError):
            SampleSizeSelector(ClosedFormEstimator(), safety_factor=0.5)
