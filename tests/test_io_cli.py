"""Unit tests for CSV I/O and the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, format_result, main, make_engine
from repro.engine import Table
from repro.engine.io import load_csv, save_csv
from repro.errors import ReproError, SchemaError


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "sessions.csv"
    path.write_text(
        "time,city,hits\n"
        "10.5,NYC,3\n"
        "20.25,SF,1\n"
        "7.75,NYC,4\n"
        "30.0,LA,2\n"
    )
    return path


class TestLoadCsv:
    def test_loads_with_inferred_types(self, csv_file):
        table = load_csv(csv_file)
        assert table.name == "sessions"
        assert table.num_rows == 4
        assert table.schema["time"].kind == "f"
        assert table.schema["hits"].kind == "i"
        assert table.schema["city"].kind in ("U", "O")

    def test_values_round(self, csv_file):
        table = load_csv(csv_file)
        np.testing.assert_allclose(
            table.column("time"), [10.5, 20.25, 7.75, 30.0]
        )
        assert list(table.column("city")) == ["NYC", "SF", "NYC", "LA"]

    def test_empty_cell_becomes_nan(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("k,v\na,1.5\nb,\nc,2.5\n")
        table = load_csv(path)
        assert np.isnan(table.column("v")[1])

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blanks.csv"
        path.write_text("v\n1.5\n\n2.5\n")
        table = load_csv(path)
        assert table.num_rows == 2

    def test_custom_name_and_delimiter(self, tmp_path):
        path = tmp_path / "data.tsv"
        path.write_text("a\tb\n1\t2\n")
        table = load_csv(path, name="custom", delimiter="\t")
        assert table.name == "custom"
        assert table.column("b")[0] == 2

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError, match="empty"):
            load_csv(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        with pytest.raises(SchemaError, match="no data rows"):
            load_csv(path)

    def test_blank_header_rejected(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("a,,c\n1,2,3\n")
        with pytest.raises(SchemaError, match="header"):
            load_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(SchemaError, match="expected 2 fields"):
            load_csv(path)


class TestSaveCsv:
    def test_round_trip(self, tmp_path):
        table = Table(
            {
                "x": np.array([1.5, 2.5]),
                "label": np.array(["p", "q"]),
                "n": np.array([1, 2]),
            },
            name="t",
        )
        path = tmp_path / "out.csv"
        save_csv(table, path)
        loaded = load_csv(path)
        np.testing.assert_allclose(loaded.column("x"), table.column("x"))
        assert list(loaded.column("label")) == ["p", "q"]
        assert list(loaded.column("n")) == [1, 2]


@pytest.fixture
def big_csv(tmp_path, rng):
    path = tmp_path / "events.csv"
    n = 5000
    cities = rng.choice(["NYC", "SF", "LA"], n)
    times = rng.lognormal(3.0, 0.5, n)
    lines = ["time,city"]
    lines += [f"{t:.4f},{c}" for t, c in zip(times, cities)]
    path.write_text("\n".join(lines) + "\n")
    return path


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["--table", "x.csv", "SELECT 1"])
        assert args.sample_fraction == 0.1
        assert args.confidence == 0.95
        assert not args.exact

    def test_requires_table(self, capsys):
        assert main(["SELECT AVG(x) FROM t"]) == 1
        assert "error" in capsys.readouterr().err

    def test_approximate_query(self, big_csv, capsys):
        exit_code = main(
            [
                "--table",
                str(big_csv),
                "--sample-fraction",
                "0.5",
                "--no-diagnostics",
                "--seed",
                "7",
                "SELECT AVG(time) FROM events",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "±" in out
        assert "closed_form" in out
        assert "sample" in out

    def test_exact_query(self, big_csv, capsys):
        exit_code = main(
            [
                "--table",
                str(big_csv),
                "--exact",
                "SELECT city, COUNT(*) AS n FROM events GROUP BY city",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "city" in out
        assert "NYC" in out

    def test_grouped_approximate_query(self, big_csv, capsys):
        exit_code = main(
            [
                "--table",
                str(big_csv),
                "--sample-fraction",
                "0.5",
                "--no-diagnostics",
                "--seed",
                "7",
                "SELECT city, AVG(time) AS t FROM events GROUP BY city",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "city=NYC" in out

    def test_bad_sql_reports_error(self, big_csv, capsys):
        exit_code = main(
            ["--table", str(big_csv), "SELECT FROM nothing"]
        )
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_make_engine_registers_samples(self, big_csv):
        args = build_parser().parse_args(
            ["--table", str(big_csv), "--sample-fraction", "0.2", "q"]
        )
        engine = make_engine(args)
        info, __ = engine.catalog.select_sample("events")
        assert info.rows == 1000

    def test_format_result_shows_fallback(self, big_csv):
        args = build_parser().parse_args(
            ["--table", str(big_csv), "--sample-fraction", "0.5", "q"]
        )
        engine = make_engine(args)
        result = engine.execute(
            "SELECT AVG(time) FROM events", error_bound=1e-9,
            run_diagnostics=False,
        )
        rendered = format_result(result)
        assert "fallback" in rendered
