"""Unit tests for confidence intervals and the δ metric."""

import numpy as np
import pytest

from repro.core.ci import (
    ConfidenceInterval,
    interval_from_distribution,
    relative_width_deviation,
    symmetric_half_width,
)
from repro.errors import EstimationError


class TestConfidenceInterval:
    def test_geometry(self):
        ci = ConfidenceInterval(10.0, 2.0, 0.95, "test")
        assert ci.lower == 8.0
        assert ci.upper == 12.0
        assert ci.width == 4.0
        assert ci.relative_error == pytest.approx(0.2)

    def test_contains(self):
        ci = ConfidenceInterval(10.0, 2.0, 0.95, "test")
        assert ci.contains(10.0)
        assert ci.contains(8.0)
        assert ci.contains(12.0)
        assert not ci.contains(12.1)

    def test_relative_error_zero_estimate(self):
        assert ConfidenceInterval(0.0, 1.0, 0.9, "t").relative_error == float("inf")
        assert ConfidenceInterval(0.0, 0.0, 0.9, "t").relative_error == 0.0

    def test_invalid_confidence(self):
        with pytest.raises(EstimationError):
            ConfidenceInterval(0.0, 1.0, 1.0, "t")
        with pytest.raises(EstimationError):
            ConfidenceInterval(0.0, 1.0, 0.0, "t")

    def test_negative_half_width_rejected(self):
        with pytest.raises(EstimationError):
            ConfidenceInterval(0.0, -1.0, 0.9, "t")

    def test_str_mentions_method(self):
        assert "bootstrap" in str(ConfidenceInterval(1.0, 0.1, 0.95, "bootstrap"))


class TestSymmetricHalfWidth:
    def test_covers_requested_fraction(self, rng):
        distribution = rng.normal(0.0, 1.0, size=10_000)
        half = symmetric_half_width(distribution, 0.0, 0.95)
        covered = np.mean(np.abs(distribution) <= half)
        assert covered >= 0.95
        assert covered < 0.96  # smallest such interval

    def test_matches_normal_quantile(self, rng):
        distribution = rng.normal(0.0, 1.0, size=200_000)
        half = symmetric_half_width(distribution, 0.0, 0.95)
        assert half == pytest.approx(1.96, abs=0.03)

    def test_off_center_widens(self, rng):
        distribution = rng.normal(0.0, 1.0, size=10_000)
        centered = symmetric_half_width(distribution, 0.0, 0.9)
        shifted = symmetric_half_width(distribution, 2.0, 0.9)
        assert shifted > centered

    def test_ignores_nans(self):
        distribution = np.array([1.0, np.nan, -1.0, 0.5, np.nan])
        half = symmetric_half_width(distribution, 0.0, 0.99)
        assert half == 1.0

    def test_all_nan_rejected(self):
        with pytest.raises(EstimationError, match="all-NaN"):
            symmetric_half_width(np.array([np.nan, np.nan]), 0.0, 0.9)

    def test_invalid_confidence(self):
        with pytest.raises(EstimationError):
            symmetric_half_width(np.array([1.0, 2.0]), 0.0, 0.0)

    def test_degenerate_distribution_zero_width(self):
        distribution = np.full(100, 5.0)
        assert symmetric_half_width(distribution, 5.0, 0.95) == 0.0

    def test_interval_from_distribution(self):
        distribution = np.array([9.0, 10.0, 11.0, 10.5, 9.5])
        ci = interval_from_distribution(distribution, 10.0, 0.8, "m")
        assert ci.estimate == 10.0
        assert ci.method == "m"
        assert ci.half_width > 0


class TestDelta:
    def test_sign_convention_pessimistic_positive(self):
        """Too-wide estimates must give positive δ (paper §3 prose)."""
        assert relative_width_deviation(1.0, 2.0) == pytest.approx(1.0)

    def test_sign_convention_optimistic_negative(self):
        assert relative_width_deviation(1.0, 0.5) == pytest.approx(-0.5)

    def test_exact_match_is_zero(self):
        assert relative_width_deviation(3.0, 3.0) == 0.0

    def test_zero_truth_rejected(self):
        with pytest.raises(EstimationError, match="positive"):
            relative_width_deviation(0.0, 1.0)
