"""Unit tests for the Kleiner et al. diagnostic (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.bootstrap import BootstrapEstimator
from repro.core.closed_form import ClosedFormEstimator
from repro.core.diagnostics import (
    DiagnosticConfig,
    diagnose,
)
from repro.core.estimators import EstimationTarget
from repro.engine.aggregates import get_aggregate
from repro.errors import DiagnosticError

#: A compact configuration that keeps unit tests fast while preserving
#: the algorithm's structure (p subsamples at k doubling sizes).
FAST_CONFIG = DiagnosticConfig(num_subsamples=40, num_sizes=3)


@pytest.fixture(scope="module")
def sample_values():
    return np.random.default_rng(7).lognormal(2.0, 1.0, size=40_000)


@pytest.fixture(scope="module")
def benign_values():
    """Moderately-skewed data on which error estimation is reliable.

    Pass/fail unit tests need headroom from the diagnostic's decision
    boundary; with p=40 subsamples the heavy lognormal(σ=1) tail makes
    some well-estimated queries borderline (genuine false negatives,
    which Fig. 4 reports at 3–9 %), so positive cases use σ=0.5.
    """
    return np.random.default_rng(11).lognormal(2.0, 0.5, size=40_000)


class TestConfig:
    def test_resolve_derives_doubling_ladder(self):
        config = DiagnosticConfig(num_subsamples=100, num_sizes=3)
        sizes = config.resolve_sizes(100_000)
        assert sizes == (250, 500, 1000)

    def test_explicit_sizes_sorted(self):
        config = DiagnosticConfig(subsample_sizes=(200, 50, 100), num_subsamples=10)
        assert config.resolve_sizes(10_000) == (50, 100, 200)

    def test_duplicate_sizes_rejected(self):
        config = DiagnosticConfig(subsample_sizes=(100, 100), num_subsamples=10)
        with pytest.raises(DiagnosticError, match="distinct"):
            config.resolve_sizes(10_000)

    def test_oversized_ladder_rejected(self):
        config = DiagnosticConfig(subsample_sizes=(5000,), num_subsamples=10)
        with pytest.raises(DiagnosticError, match="exceeds the sample"):
            config.resolve_sizes(10_000)

    def test_tiny_sample_rejected(self):
        config = DiagnosticConfig(num_subsamples=100, num_sizes=3)
        with pytest.raises(DiagnosticError, match="too small"):
            config.resolve_sizes(500)

    def test_tiny_explicit_size_rejected(self):
        config = DiagnosticConfig(subsample_sizes=(1,), num_subsamples=2)
        with pytest.raises(DiagnosticError, match="too small"):
            config.resolve_sizes(100)


class TestDiagnosePassFail:
    def test_bootstrap_passes_on_mean(self, sample_values, rng):
        target = EstimationTarget(sample_values, get_aggregate("AVG"))
        result = diagnose(
            target, BootstrapEstimator(60, rng), 0.95, FAST_CONFIG, rng
        )
        assert result.passed
        assert bool(result)
        assert result.reason == ""

    def test_closed_form_passes_on_mean(self, sample_values, rng):
        target = EstimationTarget(sample_values, get_aggregate("AVG"))
        result = diagnose(
            target, ClosedFormEstimator(), 0.95, FAST_CONFIG, rng
        )
        assert result.passed

    def test_bootstrap_fails_on_max(self, sample_values, rng):
        target = EstimationTarget(sample_values, get_aggregate("MAX"))
        result = diagnose(
            target, BootstrapEstimator(60, rng), 0.95, FAST_CONFIG, rng
        )
        assert not result.passed
        assert result.reason

    def test_bootstrap_fails_on_extreme_percentile(self, sample_values, rng):
        target = EstimationTarget(
            sample_values, get_aggregate("PERCENTILE", 0.999)
        )
        result = diagnose(
            target, BootstrapEstimator(60, rng), 0.95, FAST_CONFIG, rng
        )
        assert not result.passed

    def test_not_applicable_estimator_fails_fast(self, sample_values, rng):
        target = EstimationTarget(sample_values, get_aggregate("MAX"))
        result = diagnose(target, ClosedFormEstimator(), 0.95, FAST_CONFIG, rng)
        assert not result.passed
        assert "not applicable" in result.reason
        assert result.num_subqueries == 0

    def test_degenerate_statistic_fails(self, rng):
        target = EstimationTarget(np.ones(20_000), get_aggregate("AVG"))
        result = diagnose(
            target, BootstrapEstimator(20, rng), 0.95, FAST_CONFIG, rng
        )
        assert not result.passed
        assert "degenerate" in result.reason


class TestDiagnoseReports:
    def test_reports_one_per_size(self, sample_values, rng):
        target = EstimationTarget(sample_values, get_aggregate("AVG"))
        result = diagnose(
            target, ClosedFormEstimator(), 0.95, FAST_CONFIG, rng
        )
        assert len(result.reports) == 3
        sizes = [r.size for r in result.reports]
        assert sizes == sorted(sizes)

    def test_first_report_has_no_acceptance_flags(self, sample_values, rng):
        target = EstimationTarget(sample_values, get_aggregate("AVG"))
        result = diagnose(target, ClosedFormEstimator(), 0.95, FAST_CONFIG, rng)
        assert result.reports[0].deviation_acceptable is None
        assert result.reports[1].deviation_acceptable is not None

    def test_subquery_count(self, sample_values, rng):
        target = EstimationTarget(sample_values, get_aggregate("AVG"))
        result = diagnose(target, ClosedFormEstimator(), 0.95, FAST_CONFIG, rng)
        assert result.num_subqueries == 40 * 3

    def test_true_widths_shrink_with_size(self, sample_values, rng):
        """x_i reflects θ's sampling error, which shrinks as b_i grows."""
        target = EstimationTarget(sample_values, get_aggregate("AVG"))
        result = diagnose(target, ClosedFormEstimator(), 0.95, FAST_CONFIG, rng)
        widths = [r.true_half_width for r in result.reports]
        assert widths[0] > widths[-1]

    def test_good_case_high_final_proportion(self, sample_values, rng):
        target = EstimationTarget(sample_values, get_aggregate("AVG"))
        result = diagnose(target, ClosedFormEstimator(), 0.95, FAST_CONFIG, rng)
        assert result.reports[-1].proportion_close >= 0.95


class TestDiagnoseWithFiltersAndScaling:
    def test_filtered_avg_passes(self, benign_values, rng):
        mask = benign_values > np.median(benign_values)
        target = EstimationTarget(benign_values, get_aggregate("AVG"), mask=mask)
        result = diagnose(target, ClosedFormEstimator(), 0.95, FAST_CONFIG, rng)
        assert result.passed

    def test_filtered_count_passes(self, sample_values, rng):
        """COUNT with a filter must vary across subsamples (mask retained)."""
        mask = sample_values > np.median(sample_values)
        target = EstimationTarget(
            np.ones_like(sample_values),
            get_aggregate("COUNT"),
            mask=mask,
            dataset_rows=4_000_000,
            extensive=True,
        )
        result = diagnose(target, ClosedFormEstimator(), 0.95, FAST_CONFIG, rng)
        assert result.passed

    def test_unfiltered_count_is_degenerate(self, sample_values, rng):
        """COUNT(*) without a filter has no sampling error: θ(subsample)
        is deterministic, which the diagnostic reports as degenerate."""
        target = EstimationTarget(
            np.ones_like(sample_values),
            get_aggregate("COUNT"),
            dataset_rows=4_000_000,
            extensive=True,
        )
        result = diagnose(target, ClosedFormEstimator(), 0.95, FAST_CONFIG, rng)
        assert not result.passed
        assert "degenerate" in result.reason

    def test_scaled_sum_passes(self, benign_values, rng):
        target = EstimationTarget(
            benign_values,
            get_aggregate("SUM"),
            dataset_rows=4_000_000,
            extensive=True,
        )
        result = diagnose(
            target, BootstrapEstimator(60, rng), 0.95, FAST_CONFIG, rng
        )
        assert result.passed


class TestDeterminism:
    def test_same_rng_same_result(self, sample_values):
        target = EstimationTarget(sample_values, get_aggregate("AVG"))
        first = diagnose(
            target,
            BootstrapEstimator(30),
            0.95,
            FAST_CONFIG,
            np.random.default_rng(5),
        )
        second = diagnose(
            target,
            BootstrapEstimator(30),
            0.95,
            FAST_CONFIG,
            np.random.default_rng(5),
        )
        assert first.passed == second.passed
        assert [r.deviation for r in first.reports] == [
            r.deviation for r in second.reports
        ]
