"""Public API surface guards: exports exist and stay importable."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core",
            "repro.engine",
            "repro.sql",
            "repro.plan",
            "repro.sampling",
            "repro.cluster",
            "repro.workloads",
            "repro.cli",
            "repro.errors",
        ],
    )
    def test_subpackages_importable(self, module_name):
        module = importlib.import_module(module_name)
        assert module is not None

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core",
            "repro.engine",
            "repro.sql",
            "repro.plan",
            "repro.sampling",
            "repro.cluster",
            "repro.workloads",
        ],
    )
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_key_classes_at_top_level(self):
        # The objects the README quickstart depends on.
        from repro import (  # noqa: F401
            AQPEngine,
            BootstrapEstimator,
            ClosedFormEstimator,
            ConfidenceInterval,
            DiagnosticConfig,
            HoeffdingEstimator,
            Table,
            diagnose,
        )

    def test_estimators_share_interface(self):
        from repro import (
            BernsteinEstimator,
            BootstrapEstimator,
            ClosedFormEstimator,
            ErrorEstimator,
            HoeffdingEstimator,
        )
        from repro.core import (
            AdaptiveBootstrapEstimator,
            QuantileClosedFormEstimator,
        )

        for estimator_type in (
            BootstrapEstimator,
            ClosedFormEstimator,
            HoeffdingEstimator,
            BernsteinEstimator,
            AdaptiveBootstrapEstimator,
            QuantileClosedFormEstimator,
        ):
            assert issubclass(estimator_type, ErrorEstimator)
            assert estimator_type.name
