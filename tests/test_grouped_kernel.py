"""The segmented grouped-bootstrap kernel (§5.3.1 across GROUP BY).

Four contracts are enforced here:

1. **Kernel bit-identity** — given the same weight matrix,
   :func:`~repro.core.grouped.grouped_resample_estimates_kernel` in
   ``segmented`` mode is *bit-identical* to the ``reference`` per-group
   masked path for every aggregate (property-based over random data,
   group layouts, and matrices).
2. **Grouped aggregate protocol** — ``compute_grouped`` /
   ``compute_grouped_resamples`` match per-group ``compute`` /
   ``compute_resamples`` (exactly for resamples; the variance family's
   point estimates use a different but equivalent summation order).
3. **Grouping** — multi-key ``_group_rows`` factorisation, including
   the mixed-radix overflow fallback, preserves ids, representatives,
   and ordering.
4. **Engine bit-identity** — grouped queries on the segmented kernel
   return identical results (values, intervals, diagnostic verdicts) at
   any worker count, under injected faults, and at every degradation
   level; ``REPRO_GROUPED_KERNEL=reference`` restores the legacy path.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.plan.executor as executor_mod
from repro.core.grouped import (
    GROUPED_KERNEL_ENV,
    GroupedTarget,
    grouped_closed_form_intervals,
    grouped_half_widths,
    grouped_resample_estimates_kernel,
    resolve_grouped_kernel_mode,
)
from repro.core.pipeline import AQPEngine, EngineConfig
from repro.engine.aggregates import GroupIndex, get_aggregate
from repro.engine.table import Table
from repro.errors import EstimationError
from repro.faults import FaultPlan
from repro.governor.breaker import DegradationLevel
from repro.parallel.ops import grouped_bootstrap_replicates
from repro.plan.executor import _group_rows

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture
def eight_cpus(monkeypatch):
    """Pretend the machine has 8 cores so real pools can exist.

    Without this, ``resolve_num_workers`` caps every requested count to
    ``os.cpu_count()`` and the multi-worker parametrisations silently
    degenerate to inline execution on single-core hosts.
    """
    monkeypatch.setattr(os, "cpu_count", lambda: 8)

#: Every aggregate the grouped kernel must serve, including the holistic
#: ones (PERCENTILE, COUNT_DISTINCT) that ride the sorted-segment
#: fallback, and the extremes whose resamples are selection-based.
ALL_AGGREGATES = (
    get_aggregate("COUNT"),
    get_aggregate("SUM"),
    get_aggregate("AVG"),
    get_aggregate("VARIANCE"),
    get_aggregate("STDEV"),
    get_aggregate("MIN"),
    get_aggregate("MAX"),
    get_aggregate("PERCENTILE", 0.5),
    get_aggregate("COUNT_DISTINCT"),
)


def _case_strategy():
    """(values, group_ids, num_groups, weights) with empty groups allowed."""
    return st.integers(min_value=1, max_value=60).flatmap(
        lambda m: st.tuples(
            st.lists(
                st.integers(min_value=-50, max_value=50),
                min_size=m,
                max_size=m,
            ),
            st.integers(min_value=1, max_value=8).flatmap(
                lambda g: st.tuples(
                    st.just(g),
                    st.lists(
                        st.integers(min_value=0, max_value=g - 1),
                        min_size=m,
                        max_size=m,
                    ),
                )
            ),
            st.integers(min_value=2, max_value=12),
            st.integers(min_value=0, max_value=2**31 - 1),
        )
    )


# ---------------------------------------------------------------------------
# 1. Kernel bit-identity: segmented vs reference on one weight matrix
# ---------------------------------------------------------------------------
class TestKernelBitIdentity:
    @settings(max_examples=25, deadline=None)
    @given(case=_case_strategy())
    def test_segmented_equals_reference(self, case):
        raw_values, (num_groups, ids), num_resamples, seed = case
        values = np.asarray(raw_values, dtype=np.float64)
        group_ids = np.asarray(ids, dtype=np.int64)
        index = GroupIndex.from_ids(group_ids, num_groups)
        rng = np.random.default_rng(seed)
        weights = rng.poisson(1.0, size=(len(values), num_resamples)).astype(
            np.int32
        )
        for aggregate in ALL_AGGREGATES:
            results = {}
            for mode in ("segmented", "reference"):
                results[mode] = grouped_resample_estimates_kernel(
                    values,
                    index,
                    aggregate,
                    weights,
                    np.random.default_rng(seed + 1),
                    extensive=False,
                    dataset_rows=None,
                    total_sample_rows=len(values),
                    mode=mode,
                )
            np.testing.assert_array_equal(
                results["segmented"],
                results["reference"],
                err_msg=f"{aggregate.name} diverged between kernel modes",
            )

    @settings(max_examples=15, deadline=None)
    @given(case=_case_strategy())
    def test_extensive_scaling_matches_between_modes(self, case):
        raw_values, (num_groups, ids), num_resamples, seed = case
        values = np.asarray(raw_values, dtype=np.float64)
        group_ids = np.asarray(ids, dtype=np.int64)
        index = GroupIndex.from_ids(group_ids, num_groups)
        rng = np.random.default_rng(seed)
        weights = rng.poisson(1.0, size=(len(values), num_resamples)).astype(
            np.int32
        )
        results = {}
        for mode in ("segmented", "reference"):
            # Both modes must consume the post-matrix stream identically
            # for the shared unmatched-weight draw.
            results[mode] = grouped_resample_estimates_kernel(
                values,
                index,
                get_aggregate("SUM"),
                weights,
                np.random.default_rng(seed + 1),
                extensive=True,
                dataset_rows=10 * (len(values) + 5),
                total_sample_rows=len(values) + 5,
                mode=mode,
            )
        np.testing.assert_array_equal(
            results["segmented"], results["reference"]
        )

    def test_unknown_mode_rejected(self):
        with pytest.raises(EstimationError, match="unknown grouped kernel"):
            resolve_grouped_kernel_mode("turbo")

    def test_env_selects_mode(self, monkeypatch):
        monkeypatch.setenv(GROUPED_KERNEL_ENV, "reference")
        assert resolve_grouped_kernel_mode() == "reference"
        monkeypatch.delenv(GROUPED_KERNEL_ENV)
        assert resolve_grouped_kernel_mode() == "segmented"


# ---------------------------------------------------------------------------
# 2. Grouped aggregate protocol vs per-group scalars
# ---------------------------------------------------------------------------
class TestGroupedAggregates:
    @settings(max_examples=25, deadline=None)
    @given(case=_case_strategy())
    def test_compute_grouped_matches_per_group(self, case):
        raw_values, (num_groups, ids), _, __ = case
        values = np.asarray(raw_values, dtype=np.float64)
        group_ids = np.asarray(ids, dtype=np.int64)
        index = GroupIndex.from_ids(group_ids, num_groups)
        for aggregate in ALL_AGGREGATES:
            grouped = aggregate.compute_grouped(values, index)
            expected = np.array(
                [
                    aggregate.compute(values[group_ids == g])
                    for g in range(num_groups)
                ]
            )
            if aggregate.name in ("VARIANCE", "STDEV"):
                # Different (equivalent) summation order: np.var is
                # pairwise, the segmented form is a two-pass reduction.
                np.testing.assert_allclose(
                    grouped, expected, rtol=1e-9, equal_nan=True
                )
            else:
                np.testing.assert_array_equal(grouped, expected)

    def test_distinct_count_resamples_match_loop(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 12, 200).astype(np.float64)
        values[rng.random(200) < 0.15] = np.nan  # NaNs count as one value
        weights = rng.poisson(1.0, size=(200, 16)).astype(np.int32)
        aggregate = get_aggregate("COUNT_DISTINCT")
        fast = aggregate.compute_resamples(values, weights)
        present = weights > 0
        slow = np.array(
            [
                float(len(np.unique(values[present[:, k]])))
                for k in range(16)
            ]
        )
        np.testing.assert_array_equal(fast, slow)

    def test_group_index_empty_input(self):
        index = GroupIndex.from_ids(np.empty(0, dtype=np.int64), 3)
        np.testing.assert_array_equal(index.counts, [0, 0, 0])
        sums = index.segment_sum(np.empty(0))
        np.testing.assert_array_equal(sums, np.zeros(3))

    def test_group_index_rejects_out_of_range(self):
        from repro.errors import SamplingError

        with pytest.raises(SamplingError):
            GroupIndex.from_ids(np.array([0, 3]), 3)


# ---------------------------------------------------------------------------
# 3. Multi-key grouping: mixed radix and the overflow fallback
# ---------------------------------------------------------------------------
class TestGroupRows:
    def test_multi_key_ids_and_representatives(self):
        a = np.array([2, 1, 2, 1, 2, 1])
        b = np.array(["x", "y", "x", "x", "y", "y"])
        group_ids, keys = _group_rows([a, b])
        # Lexicographic by factorised key order: (1,x) (1,y) (2,x) (2,y)
        expected_groups = [(1, "x"), (1, "y"), (2, "x"), (2, "y")]
        got = list(zip(keys[0].tolist(), keys[1].tolist()))
        assert got == expected_groups
        for row, gid in enumerate(group_ids):
            assert (a[row], b[row]) == expected_groups[gid]

    def test_overflow_fallback_matches_fast_path(self, monkeypatch):
        rng = np.random.default_rng(5)
        columns = [rng.integers(0, 7, 300) for _ in range(3)]
        fast_ids, fast_keys = _group_rows(columns)
        monkeypatch.setattr(executor_mod, "_GROUP_CODE_LIMIT", 10)
        slow_ids, slow_keys = _group_rows(columns)
        np.testing.assert_array_equal(fast_ids, slow_ids)
        for fast, slow in zip(fast_keys, slow_keys):
            np.testing.assert_array_equal(fast, slow)

    def test_single_key_roundtrip(self):
        values = np.array([5, 3, 5, 3, 9])
        group_ids, keys = _group_rows([values])
        np.testing.assert_array_equal(keys[0], [3, 5, 9])
        np.testing.assert_array_equal(group_ids, [1, 0, 1, 0, 2])


# ---------------------------------------------------------------------------
# 4. Engine-level contracts
# ---------------------------------------------------------------------------
def _grouped_table(rows: int = 12_000) -> Table:
    rng = np.random.default_rng(17)
    return Table(
        {
            "cat": rng.integers(0, 8, rows),
            "val": rng.lognormal(2.0, 0.4, rows),
        },
        name="t",
    )


def _make_engine(workers: int = 1, **config_kwargs) -> AQPEngine:
    config = EngineConfig(
        num_workers=workers, retry_backoff_seconds=0.0, **config_kwargs
    )
    engine = AQPEngine(config=config, seed=42)
    engine.register_table("t", _grouped_table())
    engine.create_sample("t", size=3000, name="s")
    return engine


def _nan_safe(number):
    if isinstance(number, float) and np.isnan(number):
        return "nan"
    return number


def _snapshot(result):
    rows = []
    for row in result.rows:
        values = {}
        for name, value in row.values.items():
            interval = value.interval
            diagnostic = value.diagnostic
            values[name] = (
                _nan_safe(value.estimate),
                None
                if interval is None
                else (
                    _nan_safe(interval.lower),
                    _nan_safe(interval.upper),
                    interval.method,
                ),
                value.method,
                value.fell_back,
                None if diagnostic is None else diagnostic.passed,
            )
        rows.append((tuple(sorted(row.group.items())), values))
    return rows


BOOTSTRAP_SQL = (
    "SELECT cat, MEDIAN(val) AS m FROM t WHERE val > 3 GROUP BY cat"
)
CLOSED_FORM_SQL = (
    "SELECT cat, COUNT(*) AS c, SUM(val) AS s, AVG(val) AS a "
    "FROM t GROUP BY cat"
)


class TestEngineBitIdentity:
    @pytest.mark.parametrize("sql", [BOOTSTRAP_SQL, CLOSED_FORM_SQL])
    def test_identical_at_any_worker_count(self, sql, eight_cpus):
        def run(workers):
            engine = _make_engine(workers)
            with engine:
                import warnings

                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    return _snapshot(engine.execute(sql, sample_name="s"))

        results = [run(w) for w in WORKER_COUNTS]
        assert results[0] == results[1] == results[2]

    def test_identical_under_recovered_faults(self, eight_cpus):
        def run(plan):
            engine = _make_engine(
                2,
                run_diagnostics=False,
                fault_plan=plan,
            )
            with engine:
                import warnings

                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    return _snapshot(
                        engine.execute(BOOTSTRAP_SQL, sample_name="s")
                    )

        clean = run(None)
        faulty = run(FaultPlan().with_crash(0))
        assert clean == faulty

    @pytest.mark.parametrize(
        "level",
        [
            DegradationLevel.FULL,
            DegradationLevel.REDUCED_K,
            DegradationLevel.CLOSED_FORM,
            DegradationLevel.POINT_ESTIMATE,
        ],
    )
    def test_identical_at_every_degradation_level(self, level, eight_cpus):
        def run(workers):
            engine = _make_engine(workers, run_diagnostics=False)
            with engine:
                import warnings

                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    return _snapshot(
                        engine.execute(
                            BOOTSTRAP_SQL,
                            sample_name="s",
                            degradation=level,
                        )
                    )

        results = [run(w) for w in WORKER_COUNTS]
        assert results[0] == results[1] == results[2]

    def test_reference_env_restores_per_group_accounting(self, monkeypatch):
        # The consolidated scan answers all groups with K resample
        # subqueries; the legacy path spends K per group — the cheapest
        # observable proof that the env switch selects the other kernel.
        import warnings

        engine = _make_engine(1, run_diagnostics=False)
        with engine, warnings.catch_warnings():
            warnings.simplefilter("ignore")
            segmented = engine.execute(BOOTSTRAP_SQL, sample_name="s")
        monkeypatch.setenv(GROUPED_KERNEL_ENV, "reference")
        engine = _make_engine(1, run_diagnostics=False)
        with engine, warnings.catch_warnings():
            warnings.simplefilter("ignore")
            reference = engine.execute(BOOTSTRAP_SQL, sample_name="s")
        assert len(segmented.rows) == len(reference.rows)
        groups = len(segmented.rows)
        assert groups > 1
        assert (
            reference.bootstrap_subqueries
            == groups * segmented.bootstrap_subqueries
        )
        # Same estimand: the kernels agree statistically (they consume
        # different RNG streams, so only the point estimates — which are
        # resampling-free — must agree exactly).
        for seg_row, ref_row in zip(segmented.rows, reference.rows):
            assert seg_row.group == ref_row.group
            for name in seg_row.values:
                seg_value = seg_row.values[name]
                ref_value = ref_row.values[name]
                if seg_value.fell_back or ref_value.fell_back:
                    continue
                np.testing.assert_allclose(
                    seg_value.estimate, ref_value.estimate, rtol=1e-9
                )

    def test_where_emptied_group_falls_back_like_legacy(self, monkeypatch):
        import warnings

        def run():
            engine = _make_engine(
                1, run_diagnostics=False, fallback="none"
            )
            sql = (
                "SELECT cat, AVG(val) AS a FROM t "
                "WHERE val > 1e12 GROUP BY cat"
            )
            with engine, warnings.catch_warnings():
                warnings.simplefilter("ignore")
                return engine.execute(sql, sample_name="s")

        # Every group is emptied by the filter; the legacy scalar path
        # owns the edge and the segmented kernel must route to it, so
        # the two kernels agree exactly.
        segmented = run()
        monkeypatch.setenv(GROUPED_KERNEL_ENV, "reference")
        reference = run()
        assert _snapshot(segmented) == _snapshot(reference)
        for row in segmented.rows:
            value = row.values["a"]
            assert value.fell_back and value.method == "untrusted"


# ---------------------------------------------------------------------------
# Ops-level determinism for the grouped fan-out
# ---------------------------------------------------------------------------
class TestGroupedReplicates:
    def test_pool_matches_inline(self, eight_cpus):
        from repro.parallel import pool_scope

        rng = np.random.default_rng(23)
        target = GroupedTarget(
            values=rng.lognormal(1.0, 0.5, 6000),
            group_ids=rng.integers(0, 12, 6000),
            num_groups=12,
            aggregate=get_aggregate("AVG"),
            mask=rng.random(6000) < 0.8,
        )
        inline = grouped_bootstrap_replicates(target, 64, seed=99)
        with pool_scope(3) as pool:
            fanned = grouped_bootstrap_replicates(
                target, 64, seed=99, pool=pool
            )
        np.testing.assert_array_equal(inline, fanned)

    def test_columns_align_with_reference_mode(self):
        # Integer-valued floats keep every weighted sum exact in both
        # summation orders, so the modes agree to the bit.
        rng = np.random.default_rng(29)
        target = GroupedTarget(
            values=rng.integers(0, 100, 2000).astype(np.float64),
            group_ids=rng.integers(0, 5, 2000),
            num_groups=5,
            aggregate=get_aggregate("SUM"),
        )
        segmented = grouped_bootstrap_replicates(target, 32, seed=7)
        reference = grouped_bootstrap_replicates(
            target, 32, seed=7, mode="reference"
        )
        np.testing.assert_array_equal(segmented, reference)

    def test_half_widths_match_scalar(self):
        from repro.core.ci import symmetric_half_width

        rng = np.random.default_rng(31)
        replicates = rng.normal(10, 2, size=(6, 40))
        replicates[3, 5] = np.nan  # scalar fallback row
        replicates[4] = np.nan  # failure row
        centers = replicates[:, 0].copy()
        half_widths, reasons = grouped_half_widths(
            replicates, centers, 0.95
        )
        for g in range(6):
            try:
                expected = symmetric_half_width(
                    replicates[g], centers[g], 0.95
                )
            except EstimationError as error:
                assert reasons[g] == str(error)
                assert np.isnan(half_widths[g])
            else:
                assert reasons[g] is None
                assert half_widths[g] == expected

    def test_closed_form_intervals_flag_inapplicable_groups(self):
        values = np.array([1.0, 2.0, 3.0, 10.0])
        target = GroupedTarget(
            values=values,
            group_ids=np.array([0, 0, 1, 2]),
            num_groups=3,
            aggregate=get_aggregate("AVG"),
        )
        estimates, half_widths = grouped_closed_form_intervals(target, 0.95)
        np.testing.assert_allclose(estimates[:2], [1.5, 3.0])
        assert np.isfinite(half_widths[0])
        # Single-row groups cannot estimate a variance: NaN marks them
        # for per-group routing, exactly where the scalar form raises.
        assert np.isnan(half_widths[1])
        assert np.isnan(half_widths[2])
