"""Integration tests for the end-to-end AQP pipeline (Fig. 5)."""

import numpy as np
import pytest

from repro.core.diagnostics import DiagnosticConfig
from repro.core.pipeline import (
    AQPEngine,
    BlackBoxBootstrapEstimator,
    EngineConfig,
    TableQueryTarget,
)
from repro.engine import Table
from repro.errors import AnalysisError, CatalogError, PlanError
from repro.plan.executor import QueryExecutor, analyze_sql


def make_engine(seed=1, n=200_000, **config_kwargs):
    """An engine over a benign sessions table with a 50k-row sample."""
    rng = np.random.default_rng(seed)
    cities = np.array(["NYC", "SF", "LA", "CHI"])
    table = Table(
        {
            "time": rng.lognormal(3.0, 0.5, n),
            "city": cities[rng.integers(0, 4, n)],
            "bytes": rng.lognormal(6.0, 0.8, n),
        },
        name="sessions",
    )
    engine = AQPEngine(config=EngineConfig(**config_kwargs), seed=seed)
    engine.register_table("sessions", table)
    engine.create_sample("sessions", size=50_000, name="main")
    return engine, table


@pytest.fixture(scope="module")
def engine_and_table():
    # Catalog off: these tests assert cold-path behaviour on a shared
    # engine, and repeated queries must consume the same RNG stream
    # regardless of test ordering.
    return make_engine(catalog=False)


class TestBasicExecution:
    def test_avg_query_accurate_and_trusted(self, engine_and_table):
        engine, table = engine_and_table
        result = engine.execute("SELECT AVG(time) FROM sessions")
        value = result.single()
        assert value.method == "closed_form"
        assert not value.fell_back
        assert value.diagnostic is not None and value.diagnostic.passed
        truth = table.column("time").mean()
        assert value.interval.contains(truth)

    def test_filtered_avg(self, engine_and_table):
        engine, table = engine_and_table
        result = engine.execute(
            "SELECT AVG(time) FROM sessions WHERE city = 'NYC'"
        )
        value = result.single()
        truth = table.column("time")[table.column("city") == "NYC"].mean()
        assert value.estimate == pytest.approx(truth, rel=0.05)

    def test_scaled_count(self, engine_and_table):
        engine, table = engine_and_table
        result = engine.execute(
            "SELECT COUNT(*) FROM sessions WHERE city = 'SF'"
        )
        value = result.single()
        truth = (table.column("city") == "SF").sum()
        assert value.estimate == pytest.approx(truth, rel=0.05)

    def test_scaled_sum(self, engine_and_table):
        engine, table = engine_and_table
        result = engine.execute("SELECT SUM(bytes) FROM sessions")
        value = result.single()
        assert value.estimate == pytest.approx(
            table.column("bytes").sum(), rel=0.05
        )

    def test_udaf_uses_bootstrap(self, engine_and_table):
        engine, __ = engine_and_table
        engine.register_udaf(
            "trimmed_mean",
            lambda v: float(np.mean(np.sort(v)[len(v) // 10 : -len(v) // 10])),
        )
        result = engine.execute(
            "SELECT trimmed_mean(time) FROM sessions", run_diagnostics=False
        )
        assert result.single().method == "bootstrap"

    def test_percentile_uses_bootstrap(self, engine_and_table):
        engine, table = engine_and_table
        result = engine.execute(
            "SELECT PERCENTILE(time, 0.5) FROM sessions",
            run_diagnostics=False,
        )
        value = result.single()
        assert value.method == "bootstrap"
        truth = np.quantile(table.column("time"), 0.5)
        assert value.estimate == pytest.approx(truth, rel=0.05)

    def test_non_aggregate_rejected(self, engine_and_table):
        engine, __ = engine_and_table
        with pytest.raises(AnalysisError, match="aggregate"):
            engine.execute("SELECT time FROM sessions")

    def test_execute_exact(self, engine_and_table):
        engine, table = engine_and_table
        result = engine.execute_exact("SELECT AVG(time) AS a FROM sessions")
        assert result.column("a")[0] == pytest.approx(
            table.column("time").mean()
        )

    def test_unknown_table(self, engine_and_table):
        engine, __ = engine_and_table
        with pytest.raises(CatalogError):
            engine.execute("SELECT AVG(x) FROM nope")

    def test_result_metadata(self, engine_and_table):
        engine, __ = engine_and_table
        result = engine.execute("SELECT AVG(time) FROM sessions")
        assert result.sample.name == "main"
        assert result.elapsed_seconds > 0
        assert result.diagnostic_subqueries > 0


class TestDiagnosticDrivenFallback:
    def test_max_falls_back_to_exact(self, engine_and_table):
        engine, table = engine_and_table
        result = engine.execute("SELECT MAX(time) FROM sessions")
        value = result.single()
        assert value.fell_back
        assert value.method == "exact"
        assert value.estimate == table.column("time").max()
        assert "diagnostic failed" in value.fallback_reason

    def test_fallback_none_returns_flagged_estimate(self):
        engine, __ = make_engine(fallback="none")
        result = engine.execute("SELECT MAX(time) FROM sessions")
        value = result.single()
        assert value.fell_back
        assert value.method == "untrusted"
        assert value.interval is None

    def test_fallback_large_deviation_for_mean_like(self):
        engine, table = make_engine(fallback="large_deviation")
        # Force a fallback via an unreachable error bound.
        result = engine.execute(
            "SELECT AVG(time) FROM sessions", error_bound=1e-9
        )
        value = result.single()
        assert value.fell_back
        assert value.method == "hoeffding"
        assert value.interval.contains(table.column("time").mean())

    def test_fallback_large_deviation_exact_for_max(self):
        engine, table = make_engine(fallback="large_deviation")
        result = engine.execute("SELECT MAX(time) FROM sessions")
        value = result.single()
        # No Hoeffding bound exists for MAX: reliable path is exact.
        assert value.method == "exact"
        assert value.estimate == table.column("time").max()

    def test_diagnostics_can_be_disabled(self, engine_and_table):
        engine, __ = engine_and_table
        result = engine.execute(
            "SELECT MAX(time) FROM sessions", run_diagnostics=False
        )
        value = result.single()
        assert not value.fell_back
        assert value.method == "bootstrap"
        assert value.diagnostic is None

    def test_error_bound_miss_falls_back(self, engine_and_table):
        engine, table = engine_and_table
        result = engine.execute(
            "SELECT AVG(time) FROM sessions", error_bound=1e-9
        )
        value = result.single()
        assert value.fell_back
        assert "exceeds" in value.fallback_reason
        assert value.estimate == pytest.approx(table.column("time").mean())

    def test_error_bound_met_no_fallback(self, engine_and_table):
        engine, __ = engine_and_table
        result = engine.execute(
            "SELECT AVG(time) FROM sessions", error_bound=0.5
        )
        assert not result.single().fell_back


class TestGroupBy:
    def test_one_row_per_group(self, engine_and_table):
        engine, __ = engine_and_table
        result = engine.execute(
            "SELECT city, AVG(time) AS a FROM sessions GROUP BY city",
            run_diagnostics=False,
        )
        groups = {row.group["city"] for row in result.rows}
        assert groups == {"NYC", "SF", "LA", "CHI"}

    def test_group_estimates_near_truth(self, engine_and_table):
        engine, table = engine_and_table
        result = engine.execute(
            "SELECT city, AVG(time) AS a FROM sessions GROUP BY city",
            run_diagnostics=False,
        )
        for row in result.rows:
            mask = table.column("city") == row.group["city"]
            truth = table.column("time")[mask].mean()
            assert row.values["a"].estimate == pytest.approx(truth, rel=0.05)

    def test_grouped_exact_fallback_resolves_per_group(self):
        engine, table = make_engine()
        result = engine.execute(
            "SELECT city, MAX(time) AS m FROM sessions GROUP BY city"
        )
        for row in result.rows:
            mask = table.column("city") == row.group["city"]
            assert row.values["m"].fell_back
            assert row.values["m"].estimate == table.column("time")[mask].max()

    def test_multi_key_grouping(self, engine_and_table):
        engine, table = engine_and_table
        result = engine.execute(
            "SELECT city, bucket, AVG(time) AS a FROM "
            "(SELECT time, city, IF(time > 20, 1, 0) AS bucket "
            "FROM sessions) AS q GROUP BY city, bucket",
            run_diagnostics=False,
        )
        # 4 cities × 2 buckets.
        assert len(result.rows) == 8
        sample_row = result.rows[0]
        assert set(sample_row.group) == {"city", "bucket"}
        # Spot-check one cell against the exact answer.
        for row in result.rows:
            if row.group["city"] == "NYC" and row.group["bucket"] == 1:
                mask = (table.column("city") == "NYC") & (
                    table.column("time") > 20
                )
                truth = table.column("time")[mask].mean()
                assert row.values["a"].estimate == pytest.approx(
                    truth, rel=0.05
                )
                break
        else:
            pytest.fail("expected NYC/bucket=1 group")


class TestNestedQueries:
    def test_pass_through_inner_query(self, engine_and_table):
        engine, table = engine_and_table
        result = engine.execute(
            "SELECT AVG(v) FROM "
            "(SELECT time AS v FROM sessions WHERE city = 'LA') AS q",
            run_diagnostics=False,
        )
        truth = table.column("time")[table.column("city") == "LA"].mean()
        assert result.single().estimate == pytest.approx(truth, rel=0.05)

    def test_nested_aggregation_uses_black_box_bootstrap(self):
        engine, table = make_engine(num_bootstrap_resamples=30)
        engine.create_sample("sessions", size=2000, name="tiny")
        result = engine.execute(
            "SELECT MAX(a) FROM ("
            "SELECT city, AVG(time) AS a FROM sessions GROUP BY city"
            ") AS per_city",
            sample_name="tiny",
            run_diagnostics=False,
        )
        value = result.single()
        assert value.method == "bootstrap"
        exact = (
            engine.execute_exact(
                "SELECT city, AVG(time) AS a FROM sessions GROUP BY city"
            )
            .column("a")
            .max()
        )
        assert value.estimate == pytest.approx(exact, rel=0.1)


class TestSampleSelection:
    def test_named_sample_used(self, engine_and_table):
        engine, __ = engine_and_table
        result = engine.execute(
            "SELECT AVG(time) FROM sessions", sample_name="main"
        )
        assert result.sample.name == "main"

    def test_budgeted_selection(self):
        engine, __ = make_engine()
        engine.create_sample("sessions", size=5000, name="small")
        result = engine.execute(
            "SELECT AVG(time) FROM sessions",
            max_sample_rows=10_000,
            run_diagnostics=False,
        )
        assert result.sample.name == "small"


class TestTableQueryTarget:
    def test_protocol_methods(self, engine_and_table):
        engine, table = engine_and_table
        query = analyze_sql("SELECT AVG(time) FROM sessions", table)
        target = TableQueryTarget(
            table=table.head(1000), query=query, executor=QueryExecutor()
        )
        assert target.total_sample_rows == 1000
        sub = target.subset(np.arange(100))
        assert sub.total_sample_rows == 100
        assert target.point_estimate() == pytest.approx(
            table.head(1000).column("time").mean()
        )

    def test_black_box_estimator_interval(self, engine_and_table):
        engine, table = engine_and_table
        query = analyze_sql("SELECT AVG(time) FROM sessions", table)
        target = TableQueryTarget(
            table=table.head(2000), query=query, executor=QueryExecutor()
        )
        estimator = BlackBoxBootstrapEstimator(40, np.random.default_rng(2))
        ci = estimator.estimate(target, 0.95)
        assert ci.method == "bootstrap"
        assert ci.contains(target.point_estimate())


class TestEngineConfig:
    def test_invalid_fallback_rejected(self):
        with pytest.raises(PlanError, match="fallback"):
            EngineConfig(fallback="panic")

    def test_custom_diagnostic_config_honoured(self):
        config = DiagnosticConfig(num_subsamples=20, num_sizes=2)
        engine, __ = make_engine(diagnostic=config)
        result = engine.execute("SELECT AVG(time) FROM sessions")
        assert result.diagnostic_subqueries == 20 * 2


class TestSampleEscalation:
    """§1's smooth accuracy/time tradeoff: error-bound misses escalate
    to larger catalog samples before falling back to exact."""

    def _engine_with_ladder(self, **config_kwargs):
        engine, table = make_engine(**config_kwargs)
        engine.create_sample("sessions", size=2000, name="tiny")
        engine.create_sample("sessions", size=100_000, name="big")
        return engine, table

    def test_escalates_to_larger_sample(self):
        engine, __ = self._engine_with_ladder()
        tiny_error = (
            engine.execute(
                "SELECT AVG(time) FROM sessions",
                sample_name="tiny",
                run_diagnostics=False,
            )
            .single()
            .relative_error
        )
        # A bound between the tiny and big samples' achievable error.
        result = engine.execute(
            "SELECT AVG(time) FROM sessions",
            sample_name="tiny",
            error_bound=tiny_error / 2,
            run_diagnostics=False,
        )
        value = result.single()
        assert result.sample.rows > 2000
        assert not value.fell_back
        assert value.relative_error <= tiny_error / 2

    def test_exhausted_ladder_falls_back_exact(self, engine_and_table):
        engine, table = engine_and_table
        result = engine.execute(
            "SELECT AVG(time) FROM sessions",
            error_bound=1e-9,
            run_diagnostics=False,
        )
        value = result.single()
        assert value.fell_back
        assert value.method == "exact"

    def test_escalation_can_be_disabled(self):
        engine, __ = self._engine_with_ladder(escalate_samples=False)
        result = engine.execute(
            "SELECT AVG(time) FROM sessions",
            sample_name="tiny",
            error_bound=1e-4,
            run_diagnostics=False,
        )
        assert result.sample.rows == 2000
        assert result.single().fell_back

    def test_diagnostic_failure_does_not_escalate(self):
        engine, __ = self._engine_with_ladder()
        result = engine.execute(
            "SELECT MAX(time) FROM sessions", sample_name="tiny"
        )
        # Fallback happened on the original sample; no pointless retries.
        assert result.sample.rows == 2000
        assert result.single().method == "exact"


class TestQuantileClosedFormOption:
    """An extension ξ plugged into the pipeline, diagnostic-guarded."""

    def test_median_uses_quantile_closed_form(self):
        engine, table = make_engine(use_quantile_closed_form=True)
        result = engine.execute(
            "SELECT PERCENTILE(time, 0.5) FROM sessions"
        )
        value = result.single()
        assert value.method == "quantile_closed_form"
        truth = np.quantile(table.column("time"), 0.5)
        assert value.interval.contains(truth)

    def test_extreme_percentile_still_bootstraps(self):
        engine, __ = make_engine(use_quantile_closed_form=True)
        result = engine.execute(
            "SELECT PERCENTILE(time, 0.999) FROM sessions",
            run_diagnostics=False,
        )
        assert result.single().method == "bootstrap"

    def test_disabled_by_default(self, engine_and_table):
        engine, __ = engine_and_table
        result = engine.execute(
            "SELECT PERCENTILE(time, 0.5) FROM sessions",
            run_diagnostics=False,
        )
        assert result.single().method == "bootstrap"


class TestBlackBoxDiagnostics:
    def test_nested_aggregation_with_diagnostics(self):
        engine, __ = make_engine(num_bootstrap_resamples=20)
        engine.create_sample("sessions", size=3000, name="bb")
        result = engine.execute(
            "SELECT MAX(a) FROM ("
            "SELECT city, AVG(time) AS a FROM sessions GROUP BY city"
            ") AS per_city",
            sample_name="bb",
        )
        value = result.single()
        # The diagnostic ran through the black-box target path.
        assert value.diagnostic is not None
        assert result.diagnostic_subqueries > 0
        # Whatever the verdict, the returned value must be usable: either
        # a trusted bootstrap interval or an exact fallback.
        if value.fell_back:
            assert value.method == "exact"
        else:
            assert value.method == "bootstrap"
