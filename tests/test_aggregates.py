"""Unit tests for weighted aggregate functions."""

import numpy as np
import pytest

from repro.engine.aggregates import (
    AvgAggregate,
    CountAggregate,
    CountDistinctAggregate,
    MaxAggregate,
    MinAggregate,
    PercentileAggregate,
    StdevAggregate,
    SumAggregate,
    UserDefinedAggregate,
    VarianceAggregate,
    get_aggregate,
    register_aggregate,
    weighted_quantile,
)
from repro.errors import EstimationError, SamplingError

VALUES = np.array([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0])
WEIGHTS = np.array([1, 0, 2, 1, 1, 0, 3, 1])


def expanded():
    """The with-replacement expansion the weights encode."""
    return np.repeat(VALUES, WEIGHTS)


class TestUnweightedCompute:
    def test_count(self):
        assert CountAggregate().compute(VALUES) == 8.0

    def test_sum(self):
        assert SumAggregate().compute(VALUES) == VALUES.sum()

    def test_avg(self):
        assert AvgAggregate().compute(VALUES) == pytest.approx(VALUES.mean())

    def test_variance(self):
        assert VarianceAggregate().compute(VALUES) == pytest.approx(
            VALUES.var(ddof=1)
        )

    def test_stdev(self):
        assert StdevAggregate().compute(VALUES) == pytest.approx(
            VALUES.std(ddof=1)
        )

    def test_min_max(self):
        assert MinAggregate().compute(VALUES) == 1.0
        assert MaxAggregate().compute(VALUES) == 9.0

    def test_percentile_median(self):
        assert PercentileAggregate(0.5).compute(VALUES) == np.quantile(
            VALUES, 0.5, method="inverted_cdf"
        )

    def test_count_distinct(self):
        assert CountDistinctAggregate().compute(VALUES) == 7.0

    def test_avg_empty_is_nan(self):
        assert np.isnan(AvgAggregate().compute(np.array([])))

    def test_variance_single_value_is_nan(self):
        assert np.isnan(VarianceAggregate().compute(np.array([1.0])))

    def test_min_empty_is_nan(self):
        assert np.isnan(MinAggregate().compute(np.array([])))


class TestWeightedCompute:
    """Weighted evaluation must match explicit row repetition."""

    def test_count_weighted(self):
        assert CountAggregate().compute(VALUES, WEIGHTS) == len(expanded())

    def test_sum_weighted(self):
        assert SumAggregate().compute(VALUES, WEIGHTS) == pytest.approx(
            expanded().sum()
        )

    def test_avg_weighted(self):
        assert AvgAggregate().compute(VALUES, WEIGHTS) == pytest.approx(
            expanded().mean()
        )

    def test_variance_weighted(self):
        assert VarianceAggregate().compute(VALUES, WEIGHTS) == pytest.approx(
            expanded().var(ddof=1)
        )

    def test_min_weighted_ignores_zero_weight_rows(self):
        # The global minimum 1.0 at index 1 has weight 0 but index 3 has
        # weight 1, so MIN stays 1.0; drop index 3's weight to see it move.
        weights = WEIGHTS.copy()
        weights[3] = 0
        assert MinAggregate().compute(VALUES, weights) == 2.0

    def test_max_weighted_ignores_zero_weight_rows(self):
        assert MaxAggregate().compute(VALUES, WEIGHTS) == 6.0  # 9.0 has w=0

    def test_percentile_weighted(self):
        result = PercentileAggregate(0.5).compute(VALUES, WEIGHTS)
        assert result == np.quantile(expanded(), 0.5, method="inverted_cdf")

    def test_count_distinct_weighted(self):
        assert CountDistinctAggregate().compute(VALUES, WEIGHTS) == len(
            np.unique(expanded())
        )

    def test_weight_shape_mismatch_rejected(self):
        with pytest.raises(SamplingError, match="weights shape"):
            SumAggregate().compute(VALUES, np.ones(3))

    def test_two_dimensional_values_rejected(self):
        with pytest.raises(SamplingError, match="one-dimensional"):
            SumAggregate().compute(np.zeros((2, 2)))


class TestResampleMatrix:
    """compute_resamples must agree column-by-column with compute(weights)."""

    @pytest.fixture
    def weight_matrix(self, rng):
        return rng.poisson(1.0, size=(len(VALUES), 16))

    @pytest.mark.parametrize(
        "aggregate",
        [
            CountAggregate(),
            SumAggregate(),
            AvgAggregate(),
            VarianceAggregate(),
            StdevAggregate(),
            MinAggregate(),
            MaxAggregate(),
            PercentileAggregate(0.5),
            PercentileAggregate(0.9),
            CountDistinctAggregate(),
        ],
        ids=lambda agg: agg.name + getattr(agg, "fraction", 0.0).__repr__(),
    )
    def test_matrix_matches_per_column(self, aggregate, weight_matrix):
        batch = aggregate.compute_resamples(VALUES, weight_matrix)
        for k in range(weight_matrix.shape[1]):
            single = aggregate.compute(VALUES, weight_matrix[:, k])
            if np.isnan(single):
                assert np.isnan(batch[k])
            else:
                assert batch[k] == pytest.approx(single)

    def test_matrix_shape_mismatch_rejected(self):
        with pytest.raises(SamplingError, match="weight matrix"):
            SumAggregate().compute_resamples(VALUES, np.ones((3, 4)))

    def test_min_all_zero_column_is_nan(self):
        matrix = np.zeros((len(VALUES), 2), dtype=np.int64)
        matrix[:, 1] = 1
        result = MinAggregate().compute_resamples(VALUES, matrix)
        assert np.isnan(result[0])
        assert result[1] == 1.0


class TestPartialAggregation:
    """Partition-merge must equal whole-array evaluation."""

    @pytest.mark.parametrize(
        "aggregate",
        [
            CountAggregate(),
            SumAggregate(),
            AvgAggregate(),
            VarianceAggregate(),
            StdevAggregate(),
            MinAggregate(),
            MaxAggregate(),
            PercentileAggregate(0.25),
            CountDistinctAggregate(),
        ],
        ids=lambda agg: agg.name,
    )
    def test_split_merge_equals_whole(self, aggregate):
        whole = aggregate.compute(VALUES, WEIGHTS)
        state_a = aggregate.make_state(VALUES[:3], WEIGHTS[:3])
        state_b = aggregate.make_state(VALUES[3:], WEIGHTS[3:])
        merged = aggregate.finalize_state(aggregate.merge_states(state_a, state_b))
        assert merged == pytest.approx(whole)

    def test_min_merge_with_nan_partition(self):
        aggregate = MinAggregate()
        empty_state = aggregate.make_state(np.array([]))
        full_state = aggregate.make_state(VALUES)
        merged = aggregate.merge_states(empty_state, full_state)
        assert aggregate.finalize_state(merged) == 1.0


class TestClosedForms:
    def test_avg_closed_form_matches_formula(self):
        se = AvgAggregate().closed_form_std_error(VALUES)
        assert se == pytest.approx(np.sqrt(VALUES.var(ddof=1) / len(VALUES)))

    def test_count_requires_total_rows(self):
        with pytest.raises(EstimationError, match="pre-filter"):
            CountAggregate().closed_form_std_error(VALUES)

    def test_count_binomial_std_error(self):
        matched = np.ones(25)
        se = CountAggregate().closed_form_std_error(matched, total_sample_rows=100)
        assert se == pytest.approx(np.sqrt(100 * 0.25 * 0.75))

    def test_sum_requires_total_rows(self):
        with pytest.raises(EstimationError, match="pre-filter"):
            SumAggregate().closed_form_std_error(VALUES)

    def test_sum_std_error_without_filter(self):
        n = len(VALUES)
        se = SumAggregate().closed_form_std_error(VALUES, total_sample_rows=n)
        assert se == pytest.approx(np.sqrt(n * VALUES.var()))

    def test_variance_closed_form(self):
        dev = VALUES - VALUES.mean()
        m2, m4 = np.mean(dev**2), np.mean(dev**4)
        se = VarianceAggregate().closed_form_std_error(VALUES)
        assert se == pytest.approx(np.sqrt((m4 - m2**2) / len(VALUES)))

    def test_min_has_no_closed_form(self):
        with pytest.raises(EstimationError, match="no closed-form"):
            MinAggregate().closed_form_std_error(VALUES)

    def test_avg_requires_two_rows(self):
        with pytest.raises(EstimationError):
            AvgAggregate().closed_form_std_error(np.array([1.0]))

    def test_stdev_delta_method_relation(self):
        var_se = VarianceAggregate().closed_form_std_error(VALUES)
        std_se = StdevAggregate().closed_form_std_error(VALUES)
        s = np.sqrt(np.mean((VALUES - VALUES.mean()) ** 2))
        assert std_se == pytest.approx(var_se / (2 * s))


class TestUserDefinedAggregate:
    def test_plain_compute(self):
        udaf = UserDefinedAggregate("trimmed", lambda v: float(np.mean(v)))
        assert udaf.compute(VALUES) == pytest.approx(VALUES.mean())

    def test_weighted_expansion(self):
        udaf = UserDefinedAggregate("m", lambda v: float(np.mean(v)))
        assert udaf.compute(VALUES, WEIGHTS) == pytest.approx(expanded().mean())

    def test_weighted_fast_path_preferred(self):
        calls = []

        def weighted(values, weights):
            calls.append(True)
            return float((values * weights).sum() / weights.sum())

        udaf = UserDefinedAggregate("m", lambda v: 0.0, weighted_fn=weighted)
        result = udaf.compute(VALUES, WEIGHTS)
        assert calls
        assert result == pytest.approx(expanded().mean())

    def test_resamples_loop(self, rng):
        udaf = UserDefinedAggregate("m", lambda v: float(np.mean(v)))
        matrix = rng.poisson(1.0, size=(len(VALUES), 4))
        batch = udaf.compute_resamples(VALUES, matrix)
        assert len(batch) == 4

    def test_partial_protocol(self):
        udaf = UserDefinedAggregate("m", lambda v: float(np.mean(v)))
        state_a = udaf.make_state(VALUES[:4])
        state_b = udaf.make_state(VALUES[4:])
        merged = udaf.finalize_state(udaf.merge_states(state_a, state_b))
        assert merged == pytest.approx(VALUES.mean())

    def test_no_closed_form(self):
        udaf = UserDefinedAggregate("m", lambda v: float(np.mean(v)))
        with pytest.raises(EstimationError):
            udaf.closed_form_std_error(VALUES)


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_aggregate("avg").name == "AVG"
        assert get_aggregate("AVG").name == "AVG"

    def test_percentile_with_fraction(self):
        agg = get_aggregate("percentile", 0.9)
        assert agg.fraction == 0.9

    def test_median_alias(self):
        agg = get_aggregate("median")
        assert isinstance(agg, PercentileAggregate)
        assert agg.fraction == 0.5

    def test_unknown_aggregate_raises(self):
        with pytest.raises(EstimationError, match="unknown aggregate"):
            get_aggregate("frobnicate")

    def test_register_custom(self):
        register_aggregate("double_sum", lambda: UserDefinedAggregate(
            "double_sum", lambda v: 2.0 * v.sum()
        ))
        assert get_aggregate("double_sum").compute(VALUES) == pytest.approx(
            2 * VALUES.sum()
        )

    def test_invalid_percentile_fraction(self):
        with pytest.raises(SamplingError):
            PercentileAggregate(1.5)


class TestWeightedQuantile:
    def test_matches_expansion(self):
        for fraction in (0.1, 0.25, 0.5, 0.75, 0.9):
            assert weighted_quantile(VALUES, WEIGHTS.astype(float), fraction) == (
                np.quantile(expanded(), fraction, method="inverted_cdf")
            )

    def test_zero_total_weight_is_nan(self):
        assert np.isnan(weighted_quantile(VALUES, np.zeros(len(VALUES)), 0.5))

    def test_invalid_fraction_rejected(self):
        with pytest.raises(SamplingError):
            weighted_quantile(VALUES, WEIGHTS.astype(float), 1.5)
