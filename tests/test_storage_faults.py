"""The storage fault domain and crash-consistent catalog recovery.

The worker fault domain (``tests/test_faults.py``) proves crashes and
hangs degrade honestly; this file does the same for the disk.  It
covers:

* the ``REPRO_FAULTS`` grammar extensions (``torn@N``, ``bitflip@N``,
  ``enospc[@N]``, ``slowdisk:T``, ``crashpromote@N``) and the
  :class:`StorageFaultInjector` that turns them into byte-level damage;
* the stage → fsync → promote protocol: integrity sidecars written at
  stage time, verified at load time, with every corrupt / truncated /
  sidecar-less / version-mismatched artifact quarantined — a bad cube
  costs a catalog miss, never a wrong answer;
* the startup sweep of orphaned ``staging/`` files (the storage mirror
  of ``shm.sweep_orphans``);
* TTL expiry and version invalidation under an injectable clock — no
  real sleeping, no wall-clock flakiness.
"""

from __future__ import annotations

import errno
import json
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro.catalog import CatalogConfig, MaterializedCatalog, RollupCube
from repro.catalog.store import sidecar_path, verify_artifact
from repro.core.pipeline import AQPEngine, EngineConfig
from repro.engine.table import Table
from repro.errors import (
    CorruptArtifactError,
    StorageError,
    StorageUnavailableError,
)
from repro.faults import FaultPlan, StorageFaultInjector
from repro.obs.metrics import METRICS
from repro.sampling.catalog import SampleInfo
from repro.catalog.store import ResultKey

ROWS = 3_000
SAMPLE = 800


def _sessions_table(rows: int = ROWS) -> Table:
    rng = np.random.default_rng(321)
    return Table(
        {
            "load_ms": rng.lognormal(3.0, 0.8, rows),
            "score": rng.normal(40.0, 6.0, rows),
            "city": np.char.add(
                "c", rng.integers(0, 4, rows).astype(str)
            ),
        },
        name="sessions",
    )


def _engine(**config_kwargs) -> AQPEngine:
    engine = AQPEngine(
        config=EngineConfig(catalog=True, **config_kwargs), seed=5
    )
    engine.register_table("sessions", _sessions_table())
    engine.create_sample("sessions", size=SAMPLE, name="s")
    return engine


def _cube(engine: AQPEngine) -> RollupCube:
    return engine.materialize("sessions", ("city",))


# ---------------------------------------------------------------------------
# Spec grammar and plan interrogation
# ---------------------------------------------------------------------------


class TestSpecGrammar:
    def test_storage_tokens_parse(self):
        plan = FaultPlan.from_spec(
            "torn@0, bitflip@1, enospc, slowdisk:0.01, crashpromote@2"
        )
        kinds = [(s.kind, s.task) for s in plan.specs]
        assert kinds == [
            ("torn", 0),
            ("bitflip", 1),
            ("enospc", None),
            ("slowdisk", None),
            ("crashpromote", 2),
        ]
        assert plan.specs[3].seconds == pytest.approx(0.01)

    def test_enospc_scoped_to_one_op(self):
        plan = FaultPlan.from_spec("enospc@3")
        assert plan.specs[0].kind == "enospc"
        assert plan.specs[0].task == 3

    def test_storage_faults_fire_on_every_attempt(self):
        # Disk damage does not heal on retry: storage specs must not
        # inherit the worker domain's attempt=0 default.
        plan = FaultPlan.from_spec("torn@0,crashpromote@1")
        assert all(spec.attempt is None for spec in plan.specs)

    def test_mixed_worker_and_storage_spec(self):
        plan = FaultPlan.from_spec("crash@2,hang@5:0.5,torn@0,slowdisk:0.02")
        assert plan.has_storage_faults()
        assert plan.fsync_delay_seconds() == pytest.approx(0.02)
        assert plan.storage_fault_for(0).kind == "torn"
        assert plan.storage_fault_for(9) is None

    def test_worker_only_plan_has_no_storage_faults(self):
        plan = FaultPlan.from_spec("crash@2,rate:0.1")
        assert not plan.has_storage_faults()
        assert plan.fsync_delay_seconds() == 0.0

    def test_unparseable_storage_token(self):
        with pytest.raises(ValueError, match="unparseable"):
            FaultPlan.from_spec("torn")
        with pytest.raises(ValueError):
            FaultPlan.from_spec("slowdisk")

    def test_error_hierarchy(self):
        assert issubclass(CorruptArtifactError, StorageError)
        assert issubclass(StorageUnavailableError, StorageError)


# ---------------------------------------------------------------------------
# The injector: deterministic byte-level damage
# ---------------------------------------------------------------------------


class TestInjector:
    def test_inactive_injector_passes_through(self):
        injector = StorageFaultInjector(FaultPlan(seed=0))
        assert not injector.active
        op = injector.begin_save()
        assert injector.corrupt_payload(op, b"abc") == b"abc"
        injector.before_promote(op)  # no raise

    def test_ops_count_up(self):
        injector = StorageFaultInjector(FaultPlan(seed=0))
        assert [injector.begin_save() for _ in range(3)] == [0, 1, 2]

    def test_torn_write_truncates(self):
        injector = StorageFaultInjector(FaultPlan(seed=0).with_torn_write(0))
        data = bytes(range(100))
        torn = injector.corrupt_payload(0, data)
        assert 0 < len(torn) < len(data)
        assert data.startswith(torn)
        # Only op 0 is torn.
        assert injector.corrupt_payload(1, data) == data

    def test_bitflip_is_seeded(self):
        plan = FaultPlan(seed=13).with_bitflip(0)
        a = StorageFaultInjector(plan).corrupt_payload(0, bytes(64))
        b = StorageFaultInjector(plan).corrupt_payload(0, bytes(64))
        assert a == b
        assert a != bytes(64)
        assert len(a) == 64
        assert sum(x != 0 for x in a) == 1  # exactly one byte flipped

    def test_enospc_raises_oserror(self):
        injector = StorageFaultInjector(FaultPlan(seed=0).with_enospc(0))
        with pytest.raises(OSError) as excinfo:
            injector.corrupt_payload(0, b"abc")
        assert excinfo.value.errno == errno.ENOSPC

    def test_crashpromote_raises_before_promotion(self):
        plan = FaultPlan(seed=0).with_crash_between_stage_and_promote(0)
        injector = StorageFaultInjector(plan)
        with pytest.raises(StorageUnavailableError):
            injector.before_promote(0)
        injector.before_promote(1)  # later save promotes fine


# ---------------------------------------------------------------------------
# Sidecar protocol: stage, verify, promote
# ---------------------------------------------------------------------------


class TestSidecar:
    def test_save_writes_verifiable_sidecar(self, tmp_path):
        engine = _engine()
        path = _cube(engine).save(tmp_path)
        sidecar = sidecar_path(path)
        assert sidecar.is_file()
        record = verify_artifact(path)
        assert record["sidecar_version"] == 1
        assert record["payload_bytes"] == path.stat().st_size
        assert record["payload_crc32"] == zlib.crc32(path.read_bytes())
        assert record["table_name"] == "sessions"
        # No staged leftovers after a clean promote.
        assert list((tmp_path / "staging").iterdir()) == []

    def test_loader_requires_sidecar(self, tmp_path):
        engine = _engine()
        path = _cube(engine).save(tmp_path)
        sidecar_path(path).unlink()
        # Permissive mode (direct tooling) still loads...
        assert RollupCube.load(path).dims == ("city",)
        # ...but the catalog's mode refuses unchecked payloads.
        with pytest.raises(CorruptArtifactError) as excinfo:
            RollupCube.load(path, require_sidecar=True)
        assert excinfo.value.reason == "meta_missing"

    def test_truncated_payload_detected(self, tmp_path):
        engine = _engine()
        path = _cube(engine).save(tmp_path)
        path.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(CorruptArtifactError) as excinfo:
            verify_artifact(path)
        assert excinfo.value.reason == "truncated"

    def test_bitflipped_payload_detected(self, tmp_path):
        engine = _engine()
        path = _cube(engine).save(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptArtifactError) as excinfo:
            verify_artifact(path)
        assert excinfo.value.reason == "crc_mismatch"

    def test_garbage_sidecar_detected(self, tmp_path):
        engine = _engine()
        path = _cube(engine).save(tmp_path)
        sidecar_path(path).write_text("{not json")
        with pytest.raises(CorruptArtifactError) as excinfo:
            verify_artifact(path)
        assert excinfo.value.reason == "meta_invalid"

    def test_schema_version_mismatch_rejected(self, tmp_path):
        # A payload from the future: valid zip, valid sidecar, wrong
        # schema.  Must be rejected as corrupt, not half-parsed.
        ready = tmp_path / "ready"
        ready.mkdir(parents=True)
        path = ready / "future.npz"
        import io as _io

        buffer = _io.BytesIO()
        np.savez(buffer, meta=json.dumps({"schema_version": 2}))
        payload = buffer.getvalue()
        path.write_bytes(payload)
        sidecar_path(path).write_text(
            json.dumps(
                {
                    "sidecar_version": 1,
                    "payload_crc32": zlib.crc32(payload),
                    "payload_bytes": len(payload),
                }
            )
        )
        with pytest.raises(CorruptArtifactError) as excinfo:
            RollupCube.load(path, require_sidecar=True)
        assert excinfo.value.reason == "schema_version"

    def test_valid_zip_invalid_cube_rejected(self, tmp_path):
        # Passes CRC (sidecar matches what was written) and is a real
        # npz — but not a cube.  The loader must still refuse it.
        path = tmp_path / "junk.npz"
        import io as _io

        buffer = _io.BytesIO()
        np.savez(buffer, meta=json.dumps({"schema_version": 1}))
        payload = buffer.getvalue()
        path.write_bytes(payload)
        sidecar_path(path).write_text(
            json.dumps(
                {
                    "sidecar_version": 1,
                    "payload_crc32": zlib.crc32(payload),
                    "payload_bytes": len(payload),
                }
            )
        )
        with pytest.raises(CorruptArtifactError) as excinfo:
            RollupCube.load(path, require_sidecar=True)
        assert excinfo.value.reason == "payload_invalid"


# ---------------------------------------------------------------------------
# Quarantine: corruption degrades to a miss, evidence is preserved
# ---------------------------------------------------------------------------


class TestQuarantine:
    def _persisted_engine(self, tmp_path):
        config = CatalogConfig(directory=str(tmp_path))
        engine = _engine(catalog_config=config)
        _cube(engine)
        return engine

    def test_bitflipped_artifact_quarantined_on_load(self, tmp_path):
        self._persisted_engine(tmp_path)
        victim = next((tmp_path / "ready").glob("*.npz"))
        raw = bytearray(victim.read_bytes())
        raw[10] ^= 0xFF
        victim.write_bytes(bytes(raw))

        METRICS.reset()
        fresh = _engine(catalog_config=CatalogConfig(directory=str(tmp_path)))
        assert fresh.mv_catalog.load_cubes() == 0
        assert fresh.mv_catalog.quarantined == 1
        assert METRICS.snapshot()["catalog.quarantined"]["value"] == 1
        quarantine = tmp_path / "quarantine"
        # Payload AND sidecar moved, never deleted.
        assert (quarantine / victim.name).is_file()
        assert (quarantine / f"{victim.name}.meta.json").is_file()
        assert list((tmp_path / "ready").glob("*.npz")) == []
        # The corrupted cube costs a miss, never a wrong answer.
        result = fresh.execute(
            "SELECT COUNT(*) FROM sessions WHERE city = 'c1'",
            run_diagnostics=False,
        )
        assert result.catalog_route == "miss"

    def test_truncated_artifact_quarantined(self, tmp_path):
        self._persisted_engine(tmp_path)
        victim = next((tmp_path / "ready").glob("*.npz"))
        victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 3])
        catalog = MaterializedCatalog(
            config=CatalogConfig(directory=str(tmp_path))
        )
        assert catalog.load_cubes() == 0
        assert catalog.quarantined == 1

    def test_sidecarless_artifact_quarantined(self, tmp_path):
        self._persisted_engine(tmp_path)
        victim = next((tmp_path / "ready").glob("*.npz"))
        sidecar_path(victim).unlink()
        catalog = MaterializedCatalog(
            config=CatalogConfig(directory=str(tmp_path))
        )
        assert catalog.load_cubes() == 0
        assert catalog.quarantined == 1
        assert (tmp_path / "quarantine" / victim.name).is_file()

    def test_orphan_sidecar_quarantined(self, tmp_path):
        self._persisted_engine(tmp_path)
        victim = next((tmp_path / "ready").glob("*.npz"))
        victim.unlink()
        catalog = MaterializedCatalog(
            config=CatalogConfig(directory=str(tmp_path))
        )
        assert catalog.load_cubes() == 0
        assert catalog.quarantined == 1
        assert (
            tmp_path / "quarantine" / f"{victim.name}.meta.json"
        ).is_file()

    def test_good_neighbours_survive_a_bad_artifact(self, tmp_path):
        config = CatalogConfig(directory=str(tmp_path))
        engine = _engine(catalog_config=config)
        engine.materialize("sessions", ("city",))
        ready = sorted((tmp_path / "ready").glob("*.npz"))
        assert len(ready) == 1
        # Drop a corrupt stranger next to the good cube.
        bad = ready[0].with_name("zzz_bad.npz")
        bad.write_bytes(b"not a zip at all")
        sidecar_path(bad).write_text(json.dumps({"payload_crc32": 0}))

        catalog = MaterializedCatalog(config=config)
        assert catalog.load_cubes() == 1
        assert catalog.quarantined == 1

    def test_quarantine_name_collisions_get_suffixes(self, tmp_path):
        self._persisted_engine(tmp_path)
        victim = next((tmp_path / "ready").glob("*.npz"))
        catalog = MaterializedCatalog(
            config=CatalogConfig(directory=str(tmp_path))
        )
        catalog.quarantine_artifact(victim, "crc_mismatch")
        # Same name corrupted again in a later generation.
        victim.write_bytes(b"second generation")
        catalog.quarantine_artifact(victim, "crc_mismatch")
        quarantine = tmp_path / "quarantine"
        assert (quarantine / victim.name).is_file()
        assert (quarantine / f"{victim.name}.1").is_file()
        assert catalog.quarantined == 2


# ---------------------------------------------------------------------------
# Injected save-path faults
# ---------------------------------------------------------------------------


class TestInjectedSaveFaults:
    def test_enospc_raises_typed_and_leaves_ready_untouched(self, tmp_path):
        engine = _engine()
        cube = _cube(engine)
        injector = StorageFaultInjector(FaultPlan(seed=0).with_enospc())
        METRICS.reset()
        with pytest.raises(StorageUnavailableError):
            cube.save(tmp_path, injector=injector)
        assert (
            METRICS.snapshot()["catalog.storage_unavailable"]["value"] == 1
        )
        assert list((tmp_path / "ready").glob("*.npz")) == []

    def test_save_cubes_is_best_effort(self, tmp_path):
        # First save op fails; the catalog keeps going and the process
        # stays up — durability must never take the engine down.
        engine = _engine()
        _cube(engine)
        injector = StorageFaultInjector(FaultPlan(seed=0).with_enospc(0))
        saved = engine.mv_catalog.save_cubes(tmp_path, injector=injector)
        assert saved == []

    def test_crashpromote_leaves_staging_for_the_sweep(self, tmp_path):
        engine = _engine()
        cube = _cube(engine)
        plan = FaultPlan(seed=0).with_crash_between_stage_and_promote(0)
        with pytest.raises(StorageUnavailableError):
            cube.save(tmp_path, injector=StorageFaultInjector(plan))
        staged = sorted(p.name for p in (tmp_path / "staging").iterdir())
        assert len(staged) == 2  # payload + sidecar, both staged
        assert list((tmp_path / "ready").glob("*.npz")) == []

        METRICS.reset()
        catalog = MaterializedCatalog(
            config=CatalogConfig(directory=str(tmp_path))
        )
        swept = catalog.sweep_staging()
        assert sorted(swept) == staged
        assert catalog.staging_orphans_swept == 2
        assert (
            METRICS.snapshot()["catalog.staging_orphans_swept"]["value"] == 2
        )
        assert list((tmp_path / "staging").iterdir()) == []

    def test_engine_startup_sweeps_staging(self, tmp_path):
        engine = _engine()
        cube = _cube(engine)
        plan = FaultPlan(seed=0).with_crash_between_stage_and_promote(0)
        with pytest.raises(StorageUnavailableError):
            cube.save(tmp_path, injector=StorageFaultInjector(plan))
        assert len(list((tmp_path / "staging").iterdir())) == 2

        fresh = _engine(
            catalog_config=CatalogConfig(directory=str(tmp_path))
        )
        assert fresh.mv_catalog.staging_orphans_swept == 2
        assert list((tmp_path / "staging").iterdir()) == []

    def test_torn_write_promotes_then_quarantines_on_reload(self, tmp_path):
        # The tear hits the bytes on disk while the sidecar records the
        # intended CRC — latent corruption only the loader can catch.
        engine = _engine()
        cube = _cube(engine)
        injector = StorageFaultInjector(FaultPlan(seed=0).with_torn_write(0))
        path = cube.save(tmp_path, injector=injector)
        assert path.is_file()
        catalog = MaterializedCatalog(
            config=CatalogConfig(directory=str(tmp_path))
        )
        assert catalog.load_cubes() == 0
        assert catalog.quarantined == 1

    def test_bitflip_promotes_then_quarantines_on_reload(self, tmp_path):
        engine = _engine()
        cube = _cube(engine)
        injector = StorageFaultInjector(FaultPlan(seed=0).with_bitflip(0))
        cube.save(tmp_path, injector=injector)
        catalog = MaterializedCatalog(
            config=CatalogConfig(directory=str(tmp_path))
        )
        assert catalog.load_cubes() == 0
        assert catalog.quarantined == 1

    def test_faulted_op_does_not_poison_later_saves(self, tmp_path):
        engine = _engine()
        cube = _cube(engine)
        injector = StorageFaultInjector(FaultPlan(seed=0).with_enospc(0))
        with pytest.raises(StorageUnavailableError):
            cube.save(tmp_path, injector=injector)
        # Save op 1 is clean: promotes and verifies.
        path = cube.save(tmp_path, injector=injector)
        assert verify_artifact(path)["table_name"] == "sessions"

    def test_engine_materialize_survives_enospc(self, tmp_path):
        # The engine's own injector (REPRO_FAULTS path): materialize
        # still returns a resident cube even when persistence fails.
        engine = _engine(
            catalog_config=CatalogConfig(directory=str(tmp_path)),
            fault_plan=FaultPlan(seed=0).with_enospc(),
        )
        cube = engine.materialize("sessions", ("city",))
        assert cube.num_cells > 0
        assert list((tmp_path / "ready").glob("*.npz")) == []
        # Served from memory regardless.
        result = engine.execute(
            "SELECT COUNT(*) FROM sessions WHERE city = 'c1'",
            run_diagnostics=False,
        )
        assert result.catalog_route == "partial"


# ---------------------------------------------------------------------------
# TTL expiry and version invalidation under an injectable clock
# ---------------------------------------------------------------------------


def _result_key(shape: str = "q0") -> ResultKey:
    return ResultKey(
        shape=shape,
        bindings=(),
        confidence=0.95,
        error_bound=None,
        sample_name="s",
        max_sample_rows=None,
        diagnostics=True,
    )


def _sample_info() -> SampleInfo:
    return SampleInfo(
        name="s",
        table_name="sessions",
        rows=SAMPLE,
        dataset_rows=ROWS,
        cached_fraction=1.0,
    )


class FakeClock:
    def __init__(self, now: float = 1_000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestInjectableClock:
    def test_ttl_expiry_without_sleeping(self):
        clock = FakeClock()
        catalog = MaterializedCatalog(
            config=CatalogConfig(ttl_seconds=60.0), clock=clock
        )
        key = _result_key()
        catalog.store_result(key, (), _sample_info(), "sessions", 0, 0)
        assert catalog.lookup_result(key) is not None

        clock.advance(59.0)
        assert catalog.lookup_result(key) is not None

        clock.advance(2.0)
        METRICS.reset()
        assert catalog.lookup_result(key) is None
        assert METRICS.snapshot()["catalog.expirations"]["value"] == 1
        # The expired entry is gone, not resurrectable.
        assert catalog.lookup_result(key) is None

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        catalog = MaterializedCatalog(
            config=CatalogConfig(ttl_seconds=None), clock=clock
        )
        key = _result_key()
        catalog.store_result(key, (), _sample_info(), "sessions", 0, 0)
        clock.advance(1e9)
        assert catalog.lookup_result(key) is not None

    def test_version_invalidation_beats_ttl(self):
        # A fresh entry (well inside its TTL) still dies when the table
        # is re-registered: version staleness is not time staleness.
        clock = FakeClock()
        catalog = MaterializedCatalog(
            config=CatalogConfig(ttl_seconds=3600.0), clock=clock
        )
        key = _result_key()
        catalog.store_result(key, (), _sample_info(), "sessions", 0, 0)
        catalog.note_table_changed("sessions")
        assert catalog.lookup_result(key) is None

    def test_entries_for_other_tables_survive_invalidation(self):
        clock = FakeClock()
        catalog = MaterializedCatalog(clock=clock)
        mine = _result_key("mine")
        other = _result_key("other")
        catalog.store_result(mine, (), _sample_info(), "sessions", 0, 0)
        catalog.store_result(other, (), _sample_info(), "clicks", 0, 0)
        catalog.note_table_changed("sessions")
        assert catalog.lookup_result(mine) is None
        assert catalog.lookup_result(other) is not None

    def test_store_uses_injected_clock_for_created_at(self):
        clock = FakeClock(now=42.0)
        catalog = MaterializedCatalog(clock=clock)
        key = _result_key()
        catalog.store_result(key, (), _sample_info(), "sessions", 0, 0)
        assert catalog.lookup_result(key).created_at == 42.0
