"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse, parse_expression, parse_select


class TestSelectStructure:
    def test_minimal_select(self):
        stmt = parse("SELECT x FROM t")
        assert isinstance(stmt, ast.SelectStatement)
        assert stmt.source.name == "t"
        assert len(stmt.items) == 1

    def test_select_star(self):
        stmt = parse_select("SELECT * FROM t")
        assert isinstance(stmt.items[0].expression, ast.Star)

    def test_multiple_items_with_aliases(self):
        stmt = parse_select("SELECT a AS first, b second, c FROM t")
        assert stmt.items[0].alias == "first"
        assert stmt.items[1].alias == "second"
        assert stmt.items[2].alias is None

    def test_where_clause(self):
        stmt = parse_select("SELECT x FROM t WHERE x > 5")
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.where.op == ">"

    def test_group_by_multiple_keys(self):
        stmt = parse_select("SELECT city, AVG(x) FROM t GROUP BY city, state")
        assert len(stmt.group_by) == 2

    def test_having(self):
        stmt = parse_select(
            "SELECT city, AVG(x) FROM t GROUP BY city HAVING AVG(x) > 3"
        )
        assert stmt.having is not None

    def test_order_by_directions(self):
        stmt = parse_select("SELECT x FROM t ORDER BY a ASC, b DESC, c")
        assert [o.ascending for o in stmt.order_by] == [True, False, True]

    def test_limit(self):
        assert parse_select("SELECT x FROM t LIMIT 10").limit == 10

    def test_subquery_in_from(self):
        stmt = parse_select("SELECT AVG(v) FROM (SELECT x AS v FROM t) AS inner_q")
        assert stmt.source.subquery is not None
        assert stmt.source.alias == "inner_q"

    def test_tablesample_poissonized(self):
        stmt = parse_select("SELECT x FROM t TABLESAMPLE POISSONIZED (100)")
        assert stmt.source.sample.rate == 100.0

    def test_union_all(self):
        stmt = parse("SELECT x FROM t UNION ALL SELECT x FROM t UNION ALL SELECT x FROM t")
        assert isinstance(stmt, ast.UnionAll)
        assert len(stmt.selects) == 3

    def test_paper_baseline_query_shape(self):
        """The §5.2 rewrite pattern parses end-to-end."""
        text = (
            "SELECT AVG(col_s) AS resample_answer FROM s "
            "TABLESAMPLE POISSONIZED (100) "
            "UNION ALL "
            "SELECT AVG(col_s) AS resample_answer FROM s "
            "TABLESAMPLE POISSONIZED (100)"
        )
        stmt = parse(text)
        assert isinstance(stmt, ast.UnionAll)
        assert all(s.source.sample.rate == 100.0 for s in stmt.selects)


class TestExpressions:
    def test_precedence_multiplication_over_addition(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_and_over_or(self):
        expr = parse_expression("a OR b AND c")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not_binds_tighter_than_and(self):
        expr = parse_expression("NOT a AND b")
        assert expr.op == "AND"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus(self):
        expr = parse_expression("-x")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "-"

    def test_unary_plus_is_dropped(self):
        expr = parse_expression("+x")
        assert isinstance(expr, ast.ColumnRef)

    def test_comparison_normalises_diamond(self):
        expr = parse_expression("a <> b")
        assert expr.op == "!="

    def test_in_list(self):
        expr = parse_expression("city IN ('NYC', 'SF')")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 2

    def test_not_in_list(self):
        expr = parse_expression("city NOT IN ('NYC')")
        assert expr.negated

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 10")
        assert isinstance(expr, ast.Between)

    def test_not_between(self):
        expr = parse_expression("x NOT BETWEEN 1 AND 10")
        assert expr.negated

    def test_is_null_and_is_not_null(self):
        assert not parse_expression("x IS NULL").negated
        assert parse_expression("x IS NOT NULL").negated

    def test_like(self):
        expr = parse_expression("name LIKE 'A%'")
        assert isinstance(expr, ast.Like)
        assert expr.pattern == "A%"

    def test_case_when(self):
        expr = parse_expression("CASE WHEN x > 1 THEN 2 ELSE 3 END")
        assert isinstance(expr, ast.CaseWhen)
        assert len(expr.branches) == 1
        assert expr.default is not None

    def test_case_without_else(self):
        expr = parse_expression("CASE WHEN x > 1 THEN 2 END")
        assert expr.default is None

    def test_qualified_column(self):
        expr = parse_expression("t.x")
        assert expr.table == "t"
        assert expr.name == "x"

    def test_function_call_upper_cased(self):
        expr = parse_expression("avg(x)")
        assert expr.name == "AVG"

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert isinstance(expr.args[0], ast.Star)

    def test_count_distinct(self):
        expr = parse_expression("COUNT(DISTINCT x)")
        assert expr.distinct

    def test_percentile_two_args(self):
        expr = parse_expression("PERCENTILE(x, 0.95)")
        assert len(expr.args) == 2

    def test_boolean_and_null_literals(self):
        assert parse_expression("TRUE").value is True
        assert parse_expression("FALSE").value is False
        assert parse_expression("NULL").value is None

    def test_integer_vs_float_literals(self):
        assert isinstance(parse_expression("3").value, int)
        assert isinstance(parse_expression("3.5").value, float)

    def test_select_star_vs_multiplication(self):
        stmt = parse_select("SELECT a * b FROM t")
        assert isinstance(stmt.items[0].expression, ast.BinaryOp)


class TestRoundTrips:
    """Parsing the printed SQL must yield the identical AST."""

    @pytest.mark.parametrize(
        "text",
        [
            "SELECT AVG(time) FROM sessions WHERE city = 'NYC'",
            "SELECT COUNT(*) FROM t",
            "SELECT city, SUM(bytes) AS total FROM t GROUP BY city",
            "SELECT x FROM t WHERE a > 1 AND b < 2 OR NOT c = 3",
            "SELECT PERCENTILE(latency, 0.99) FROM requests",
            "SELECT x FROM t WHERE v BETWEEN 1 AND 2",
            "SELECT x FROM t WHERE city IN ('NYC', 'SF')",
            "SELECT x FROM t WHERE name LIKE 'A_%'",
            "SELECT MAX(x) FROM (SELECT y AS x FROM u) AS sub",
            "SELECT x FROM t TABLESAMPLE POISSONIZED (100)",
            "SELECT x FROM t ORDER BY x DESC LIMIT 5",
            "SELECT CASE WHEN x > 0 THEN 1 ELSE 0 END AS sgn FROM t",
            "SELECT COUNT(DISTINCT user_id) FROM visits",
        ],
    )
    def test_round_trip(self, text):
        first = parse(text)
        second = parse(first.to_sql())
        assert first == second


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "SELECT",
            "SELECT FROM t",
            "SELECT x",
            "SELECT x FROM",
            "SELECT x FROM t WHERE",
            "SELECT x FROM t GROUP city",
            "SELECT x FROM t UNION SELECT x FROM t",  # missing ALL
            "SELECT x FROM t LIMIT x",
            "SELECT x FROM (SELECT y FROM u",  # unclosed subquery
            "SELECT f(x FROM t",
            "SELECT x FROM t WHERE a NOT b",
            "SELECT CASE END FROM t",
            "SELECT x FROM t extra garbage (",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(ParseError):
            parse(text)

    def test_error_reports_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse("SELECT x FROM t WHERE ")
        assert excinfo.value.position is not None

    def test_parse_select_rejects_union(self):
        with pytest.raises(ParseError, match="single SELECT"):
            parse_select("SELECT x FROM t UNION ALL SELECT x FROM t")
