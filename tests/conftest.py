"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Table


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def sessions_table(rng) -> Table:
    """A small sessions-like table used across tests.

    Columns mirror the paper's running example: per-session time, city,
    and a numeric bytes column with a heavy tail.
    """
    n = 2000
    cities = np.array(["NYC", "SF", "LA", "CHI"])
    return Table(
        {
            "time": rng.lognormal(mean=3.0, sigma=1.0, size=n),
            "city": cities[rng.integers(0, len(cities), size=n)],
            "bytes": rng.pareto(2.5, size=n) * 1000.0,
            "user_id": rng.integers(0, 500, size=n),
        },
        name="sessions",
    )


@pytest.fixture
def tiny_table() -> Table:
    """A deterministic 6-row table for exact-value assertions."""
    return Table(
        {
            "x": np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
            "y": np.array([10.0, 20.0, 30.0, 40.0, 50.0, 60.0]),
            "g": np.array(["a", "a", "b", "b", "c", "c"]),
        },
        name="tiny",
    )
