"""Unit tests for exact query execution and costed plan running."""

import numpy as np
import pytest

from repro.engine import Table
from repro.errors import ExecutionError, PlanError
from repro.plan.executor import PlanRunner, QueryExecutor, analyze_sql
from repro.plan.logical import (
    ResampleSpec,
    build_error_estimation_plan,
    build_naive_error_plan,
    build_plain_plan,
)
from repro.plan.rewriter import rewrite_plan
from repro.sampling import SampleCatalog
from repro.sql.functions import default_function_registry


@pytest.fixture
def table(rng):
    n = 10_000
    cities = np.array(["NYC", "SF", "LA", "CHI"])
    return Table(
        {
            "time": rng.lognormal(3.0, 1.0, n),
            "city": cities[rng.integers(0, 4, n)],
            "bytes": rng.pareto(2.0, n) * 100.0,
        },
        name="sessions",
    )


@pytest.fixture
def catalog(table):
    catalog = SampleCatalog(seed=3)
    catalog.register_table("sessions", table)
    catalog.create_sample("sessions", size=4000, name="s4k")
    return catalog


class TestExactExecution:
    def test_scalar_average(self, table):
        query = analyze_sql("SELECT AVG(time) FROM sessions", table)
        result = QueryExecutor().scalar(query, table)
        assert result == pytest.approx(table.column("time").mean())

    def test_filtered_aggregate(self, table):
        query = analyze_sql(
            "SELECT SUM(bytes) FROM sessions WHERE city = 'NYC'", table
        )
        expected = table.column("bytes")[table.column("city") == "NYC"].sum()
        assert QueryExecutor().scalar(query, table) == pytest.approx(expected)

    def test_count_star(self, table):
        query = analyze_sql("SELECT COUNT(*) FROM sessions", table)
        assert QueryExecutor().scalar(query, table) == table.num_rows

    def test_multiple_aggregates(self, table):
        query = analyze_sql(
            "SELECT AVG(time) AS a, MAX(time) AS m FROM sessions", table
        )
        result = QueryExecutor().execute(query, table)
        assert result.num_rows == 1
        assert result.column("m")[0] == table.column("time").max()

    def test_group_by(self, table):
        query = analyze_sql(
            "SELECT city, AVG(time) AS a FROM sessions GROUP BY city", table
        )
        result = QueryExecutor().execute(query, table)
        assert result.num_rows == 4
        nyc_row = result.filter(result.column("city") == "NYC")
        expected = table.column("time")[table.column("city") == "NYC"].mean()
        assert nyc_row.column("a")[0] == pytest.approx(expected)

    def test_group_by_multiple_keys(self, rng):
        table = Table(
            {
                "a": np.array(["x", "x", "y", "y"]),
                "b": np.array([1, 2, 1, 1]),
                "v": np.array([1.0, 2.0, 3.0, 5.0]),
            }
        )
        query = analyze_sql(
            "SELECT a, b, SUM(v) AS s FROM t GROUP BY a, b", table
        )
        result = QueryExecutor().execute(query, table)
        assert result.num_rows == 3
        rows = {
            (r["a"], r["b"]): r["s"] for r in result.to_rows()
        }
        assert rows[("y", 1)] == 8.0

    def test_having_filters_groups(self, table):
        query = analyze_sql(
            "SELECT city, COUNT(*) AS n FROM sessions GROUP BY city "
            "HAVING COUNT(*) > 100",
            table,
        )
        result = QueryExecutor().execute(query, table)
        assert (result.column("n") > 100).all()

    def test_having_with_aggregate_not_in_select(self, table):
        query = analyze_sql(
            "SELECT city, COUNT(*) AS n FROM sessions GROUP BY city "
            "HAVING AVG(time) > 0",
            table,
        )
        result = QueryExecutor().execute(query, table)
        assert result.num_rows == 4
        assert result.column_names == ["city", "n"]

    def test_order_by_and_limit(self, table):
        query = analyze_sql(
            "SELECT city, AVG(time) AS a FROM sessions GROUP BY city "
            "ORDER BY a DESC LIMIT 2",
            table,
        )
        result = QueryExecutor().execute(query, table)
        assert result.num_rows == 2
        assert result.column("a")[0] >= result.column("a")[1]

    def test_projection_query(self, table):
        query = analyze_sql(
            "SELECT time, bytes / 1000 AS kb FROM sessions WHERE time > 100",
            table,
        )
        result = QueryExecutor().execute(query, table)
        assert result.column_names == ["time", "kb"]
        assert (result.column("time") > 100).all()

    def test_nested_subquery(self, table):
        query = analyze_sql(
            "SELECT AVG(v) FROM "
            "(SELECT time AS v FROM sessions WHERE city = 'SF') AS q",
            table,
        )
        expected = table.column("time")[table.column("city") == "SF"].mean()
        assert QueryExecutor().scalar(query, table) == pytest.approx(expected)

    def test_udf_in_projection(self, table):
        registry = default_function_registry()
        registry.register_udf("half", lambda v: v / 2.0)
        query = analyze_sql(
            "SELECT AVG(half(time)) FROM sessions", table, registry
        )
        result = QueryExecutor(registry).scalar(query, table)
        assert result == pytest.approx(table.column("time").mean() / 2.0)

    def test_scalar_rejects_multi_row(self, table):
        query = analyze_sql(
            "SELECT city, AVG(time) FROM sessions GROUP BY city", table
        )
        with pytest.raises(ExecutionError, match="exactly one value"):
            QueryExecutor().scalar(query, table)


class TestPlanRunner:
    def test_plain_plan_single_pass(self, catalog, table):
        query = analyze_sql("SELECT AVG(time) AS a FROM sessions", table)
        plan = build_plain_plan(query, sample_name="s4k")
        result = PlanRunner(catalog).run(plan)
        assert result.cost.input_passes == 1
        assert result.cost.rows_scanned == 4000
        assert "a" in result.estimates

    def test_naive_plan_costs_many_passes(self, catalog, table, rng):
        query = analyze_sql(
            "SELECT AVG(time) AS a FROM sessions WHERE city = 'NYC'", table
        )
        plan = build_naive_error_plan(query, 50, sample_name="s4k")
        result = PlanRunner(catalog, rng=rng).run(plan)
        assert result.cost.input_passes == 51
        assert result.cost.subqueries == 51
        # Naive position: weights generated for every scanned row.
        assert result.cost.weight_cells == 50 * 4000
        assert "a" in result.intervals

    def test_rewritten_plan_single_pass_fewer_weights(self, catalog, table, rng):
        query = analyze_sql(
            "SELECT AVG(time) AS a FROM sessions WHERE city = 'NYC'", table
        )
        naive = build_naive_error_plan(query, 50, sample_name="s4k")
        rewritten = rewrite_plan(naive).plan
        result = PlanRunner(catalog, rng=rng).run(rewritten)
        assert result.cost.input_passes == 1
        # Pushdown: weights only for rows that pass the filter (~1/4).
        assert result.cost.weight_cells < 50 * 4000 / 2
        assert "a" in result.intervals

    def test_naive_and_rewritten_agree_statistically(self, catalog, table):
        query = analyze_sql(
            "SELECT AVG(time) AS a FROM sessions WHERE city = 'NYC'", table
        )
        naive = build_naive_error_plan(query, 100, sample_name="s4k")
        rewritten = rewrite_plan(naive).plan
        naive_result = PlanRunner(catalog, rng=np.random.default_rng(1)).run(naive)
        optimized_result = PlanRunner(
            catalog, rng=np.random.default_rng(2)
        ).run(rewritten)
        assert naive_result.intervals["a"].estimate == pytest.approx(
            optimized_result.intervals["a"].estimate
        )
        assert naive_result.intervals["a"].half_width == pytest.approx(
            optimized_result.intervals["a"].half_width, rel=0.5
        )

    def test_consolidated_plan_direct(self, catalog, table, rng):
        query = analyze_sql(
            "SELECT SUM(bytes) AS s FROM sessions WHERE time > 10", table
        )
        plan = build_error_estimation_plan(
            query, ResampleSpec(bootstrap_columns=80), sample_name="s4k"
        )
        result = PlanRunner(catalog, rng=rng).run(rewrite_plan(plan).plan)
        assert len(result.resample_distributions["s"]) == 80
        assert result.cost.weight_columns == 80

    def test_group_by_plan_rejected(self, catalog, table):
        query = analyze_sql(
            "SELECT city, AVG(time) AS a FROM sessions GROUP BY city", table
        )
        plan = build_plain_plan(query, sample_name="s4k")
        with pytest.raises(PlanError, match="GROUP BY"):
            PlanRunner(catalog).run(plan)

    def test_base_table_scan(self, catalog, table):
        query = analyze_sql("SELECT COUNT(*) AS n FROM sessions", table)
        plan = build_plain_plan(query)
        result = PlanRunner(catalog).run(plan)
        assert result.estimates["n"] == table.num_rows


class TestPlanRunnerDiagnosticPlans:
    def test_consolidated_plan_with_diagnostic_groups(self, catalog, table, rng):
        """A Resample spec carrying diagnostic weight groups generates
        the combined column count in one pass (Fig. 6(a) layout)."""
        from repro.plan.logical import LogicalDiagnostic

        query = analyze_sql(
            "SELECT AVG(time) AS a FROM sessions WHERE city = 'NYC'", table
        )
        spec = ResampleSpec(
            bootstrap_columns=20,
            diagnostic_groups=((50, 5, 20), (100, 5, 20)),
        )
        plan = build_error_estimation_plan(
            query, spec, sample_name="s4k"
        )
        assert isinstance(plan, LogicalDiagnostic)
        rewritten = rewrite_plan(plan).plan
        result = PlanRunner(catalog, rng=rng).run(rewritten)
        expected_columns = 20 + 2 * 5 * 20
        assert result.cost.weight_columns == expected_columns
        assert result.cost.input_passes == 1
        assert "a" in result.intervals
