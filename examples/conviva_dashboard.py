"""A media-analytics dashboard over Conviva-like session data.

Recreates the paper's motivating scenario: an analyst exploring video
quality-of-experience metrics interactively over a large sessions table.
Every number comes back in well under a second of engine work with
error bars, and the diagnostic silently reroutes untrustworthy ones.

Run with::

    python examples/conviva_dashboard.py
"""

import numpy as np

from repro import AQPEngine
from repro.workloads import conviva_sessions_table
from repro.workloads.queries import register_workload_functions


def show(title: str, value) -> None:
    estimate = value.estimate
    if value.interval is not None and value.interval.half_width > 0:
        detail = (
            f"{estimate:12.2f} ± {value.interval.half_width:8.2f}  "
            f"[{value.method}]"
        )
    else:
        detail = f"{estimate:12.2f}              [{value.method}]"
    flag = "  (diagnostic rerouted)" if value.fell_back else ""
    print(f"  {title:42s}{detail}{flag}")


def main(num_rows: int = 800_000) -> None:
    rng = np.random.default_rng(11)
    table = conviva_sessions_table(num_rows, rng)
    engine = AQPEngine(seed=3)
    engine.register_table("media_sessions", table)
    register_workload_functions(engine)
    info = engine.create_sample("media_sessions", fraction=0.06, name="dash")
    print(
        f"dashboard sample: {info.rows:,} rows "
        f"({info.sampling_fraction:.0%} of {info.dataset_rows:,})\n"
    )

    print("Session quality overview")
    result = engine.execute("SELECT AVG(session_time) FROM media_sessions")
    show("average session time (s)", result.single())

    result = engine.execute(
        "SELECT AVG(buffering_ratio) FROM media_sessions "
        "WHERE bitrate > 1000"
    )
    show("buffering ratio @ high bitrate", result.single())

    result = engine.execute(
        "SELECT PERCENTILE(startup_ms, 0.95) FROM media_sessions",
        run_diagnostics=False,
    )
    show("p95 startup latency (ms)", result.single())

    result = engine.execute(
        "SELECT COUNT(*) FROM media_sessions WHERE buffering_ratio > 0.2"
    )
    show("sessions with heavy buffering", result.single())

    # A UDAF: black-box statistic, bootstrap error bars.
    result = engine.execute(
        "SELECT trimmed_mean(session_time) FROM media_sessions",
        run_diagnostics=False,
    )
    show("trimmed mean session time (UDAF)", result.single())

    # Bootstrap-hostile: the diagnostic reroutes to exact execution.
    result = engine.execute("SELECT MAX(bytes_streamed) FROM media_sessions")
    show("largest stream (bytes)", result.single())

    print("\nPer-city engagement (grouped, error bars per group)")
    result = engine.execute(
        "SELECT city, AVG(session_time) AS t FROM media_sessions "
        "GROUP BY city",
        run_diagnostics=False,
    )
    top_rows = sorted(
        result.rows, key=lambda row: -row.values["t"].estimate
    )[:5]
    for row in top_rows:
        show(f"avg session time — {row.group['city']}", row.values["t"])


if __name__ == "__main__":
    main()
