"""Quickstart: approximate queries with reliable error bars.

Builds a million-row sessions table, registers a 5 % sample, and runs a
few aggregate queries through the full pipeline: approximate answer →
error bars → diagnostic → fallback when the error bars can't be trusted.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import AQPEngine, Table


def build_sessions(num_rows: int, seed: int = 0) -> Table:
    """A sessions table like the paper's running example (§2.1)."""
    rng = np.random.default_rng(seed)
    cities = np.array(["NYC", "SF", "LA", "CHI", "SEA"])
    return Table(
        {
            "time": rng.lognormal(3.0, 0.8, num_rows),
            "city": cities[rng.integers(0, len(cities), num_rows)],
            "bytes": rng.pareto(2.5, num_rows) * 1000.0,
        },
        name="sessions",
    )


def describe(label: str, value) -> None:
    parts = [f"{label:50s} {value.estimate:12.3f}"]
    if value.interval is not None and value.interval.half_width > 0:
        parts.append(f"± {value.interval.half_width:.3f}")
        parts.append(f"({value.interval.confidence:.0%}, {value.method})")
    else:
        parts.append(f"({value.method})")
    if value.fell_back:
        parts.append(f"[fell back: {value.fallback_reason.split(';')[0]}]")
    print(" ".join(parts))


def main(num_rows: int = 1_000_000) -> None:
    table = build_sessions(num_rows)
    engine = AQPEngine(seed=42)
    engine.register_table("sessions", table)
    info = engine.create_sample("sessions", fraction=0.05, name="s5pct")
    print(
        f"sample {info.name}: {info.rows:,} of {info.dataset_rows:,} rows "
        f"(scale factor {info.scale_factor:.0f}x)\n"
    )

    # 1. The paper's running example: a mean with closed-form error bars.
    result = engine.execute("SELECT AVG(time) FROM sessions WHERE city = 'NYC'")
    describe("AVG(time) WHERE city='NYC'", result.single())
    truth = table.column("time")[table.column("city") == "NYC"].mean()
    print(f"{'  (exact answer for reference)':50s} {truth:12.3f}\n")

    # 2. An extensive aggregate: scaled by |D| / |S| automatically.
    result = engine.execute("SELECT COUNT(*) FROM sessions WHERE time > 100")
    describe("COUNT(*) WHERE time > 100", result.single())
    print(f"{'  (exact answer for reference)':50s} "
          f"{(table.column('time') > 100).sum():12.0f}\n")

    # 3. A bootstrap-only aggregate (no closed form exists).
    result = engine.execute("SELECT PERCENTILE(time, 0.9) FROM sessions")
    describe("PERCENTILE(time, 0.9)", result.single())
    print()

    # 4. A query whose error bars CANNOT be trusted: the diagnostic
    #    catches it and the engine falls back to exact execution.
    result = engine.execute("SELECT MAX(bytes) FROM sessions")
    describe("MAX(bytes)  [bootstrap-hostile]", result.single())
    print()

    # 5. Grouped results: one estimate (and one diagnostic) per group.
    result = engine.execute(
        "SELECT city, AVG(time) AS avg_time FROM sessions GROUP BY city",
        run_diagnostics=False,
    )
    for row in result.rows:
        describe(f"AVG(time) for {row.group['city']}", row.values["avg_time"])


if __name__ == "__main__":
    main()
