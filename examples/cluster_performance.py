"""Cluster performance: why the optimisations matter (§5–§7).

Simulates one bootstrap-only query (QSet-2 style, 20 GB cached sample)
on the paper's 100-node cluster in four configurations — naive §5.2,
plan-optimised §5.3, and fully tuned §6 — and then sweeps the degree of
parallelism to show the Fig. 8(c) sweet spot.

Run with::

    python examples/cluster_performance.py
"""

import numpy as np

from repro.cluster import (
    AQPQuerySpec,
    ClusterSimulator,
    PAPER_CLUSTER,
    build_phases,
)
from repro.cluster.config import GB


def simulate_total(sim, phases, rng, **kwargs) -> tuple[float, dict]:
    breakdown = {}
    for label, job in (
        ("query execution", phases.execution),
        ("error estimation", phases.error_estimation),
        ("diagnostics", phases.diagnostics),
    ):
        breakdown[label] = sim.simulate(job, rng=rng, **kwargs).total_seconds
    return sum(breakdown.values()), breakdown


def print_config(name, total, breakdown) -> None:
    detail = "  ".join(f"{k}={v:7.2f}s" for k, v in breakdown.items())
    print(f"  {name:34s} total={total:8.2f}s   {detail}")


def main() -> None:
    rng = np.random.default_rng(0)
    sim = ClusterSimulator(PAPER_CLUSTER)
    spec = AQPQuerySpec(
        sample_bytes=20 * GB,
        sample_rows=40_000_000,
        selectivity=0.2,
        closed_form=False,  # QSet-2: bootstrap-only error bars
    )

    print("One QSet-2 query (20 GB cached sample, K=100 bootstrap, "
          "p=100/k=3 diagnostic):\n")
    naive = build_phases(spec, optimized=False)
    optimized = build_phases(spec, optimized=True)

    total, breakdown = simulate_total(sim, naive, rng)
    print_config("naive (§5.2 query rewriting)", total, breakdown)

    total, breakdown = simulate_total(sim, optimized, rng)
    print_config("plan-optimised (§5.3)", total, breakdown)

    total, breakdown = simulate_total(
        sim, optimized, rng, num_machines=20, straggler_mitigation=True
    )
    print_config("fully tuned (§6: 20 machines + spec. exec.)",
                 total, breakdown)

    print("\nDegree-of-parallelism sweep (plan-optimised, all 3 phases):")
    for machines in (1, 2, 5, 10, 20, 40, 60, 80, 100):
        totals = [
            simulate_total(
                sim, optimized, rng,
                num_machines=machines, straggler_mitigation=True,
            )[0]
            for __ in range(5)
        ]
        mean = float(np.mean(totals))
        bar = "#" * max(1, int(mean * 2))
        print(f"  {machines:3d} machines  {mean:7.2f}s  {bar}")
    print(
        "\nThe sweet spot sits around 10–20 machines (Fig. 8(c)): beyond\n"
        "it, per-task overheads, many-to-one aggregation, and coordination\n"
        "costs outgrow the parallelism gains."
    )


if __name__ == "__main__":
    main()
