"""Inside the diagnostic: watching Algorithm 1 accept and reject.

Runs Kleiner et al.'s diagnostic on one benign query (AVG) and one
hostile query (MAX) and prints the per-subsample-size statistics the
acceptance criteria inspect: the relative deviation Δᵢ, the relative
spread σᵢ, and the proportion πᵢ of error estimates close to the truth.

Run with::

    python examples/diagnostic_deep_dive.py
"""

import numpy as np

from repro import BootstrapEstimator, DiagnosticConfig, EstimationTarget, diagnose
from repro.engine.aggregates import get_aggregate


def report(label: str, result) -> None:
    print(f"{label}: {'PASS' if result.passed else 'FAIL'}")
    print(
        f"  {'b_i (rows)':>12s} {'x_i (true)':>12s} {'mean x̂':>12s} "
        f"{'Δ_i':>8s} {'σ_i':>8s} {'π_i':>6s}"
    )
    for row in result.reports:
        print(
            f"  {row.size:12d} {row.true_half_width:12.4f} "
            f"{row.mean_estimated_half_width:12.4f} {row.deviation:8.3f} "
            f"{row.spread:8.3f} {row.proportion_close:6.2f}"
        )
    if not result.passed:
        print(f"  reason: {result.reason}")
    print(f"  subqueries executed: {result.num_subqueries} point estimates "
          "(plus K bootstrap resamples each)\n")


def main(num_rows: int = 120_000, num_subsamples: int = 100) -> None:
    rng = np.random.default_rng(5)
    sample = rng.lognormal(2.0, 0.8, num_rows)
    config = DiagnosticConfig(num_subsamples=num_subsamples, num_sizes=3)
    estimator = BootstrapEstimator(100, rng)

    print(
        "The diagnostic cuts the sample into p disjoint subsamples at k\n"
        "increasing sizes, compares the estimator's error bars x̂ against\n"
        "the empirically-true spread x at each size, and accepts only if\n"
        "the agreement improves as subsamples grow (Appendix A).\n"
    )

    avg_target = EstimationTarget(sample, get_aggregate("AVG"))
    report("AVG over lognormal data (benign)",
           diagnose(avg_target, estimator, 0.95, config, rng))

    max_target = EstimationTarget(sample, get_aggregate("MAX"))
    report("MAX over lognormal data (bootstrap-hostile)",
           diagnose(max_target, estimator, 0.95, config, rng))

    # Parameter sensitivity: a stricter ρ rejects borderline queries.
    strict = DiagnosticConfig(
        num_subsamples=num_subsamples, num_sizes=3, min_final_proportion=0.999
    )
    p999_target = EstimationTarget(sample, get_aggregate("PERCENTILE", 0.999))
    report(
        "P99.9 with the default ρ=0.95",
        diagnose(p999_target, estimator, 0.95, config, rng),
    )
    report(
        "AVG again at ρ=0.999 (passes only when every x̂ is close)",
        diagnose(avg_target, estimator, 0.95, strict, rng),
    )


if __name__ == "__main__":
    main()
