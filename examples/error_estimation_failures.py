"""When error estimation fails (§3) — and how badly.

Evaluates three error-estimation procedures — the bootstrap, CLT closed
forms, and Hoeffding bounds — against the ground truth on four queries:
two benign (mean-like) and two hostile (extreme statistics on
heavy-tailed data).  For each, it reports the paper's δ metric and the
correct / optimistic / pessimistic verdict.

Run with::

    python examples/error_estimation_failures.py
"""

import numpy as np

from repro import (
    BootstrapEstimator,
    ClosedFormEstimator,
    DatasetQuery,
    HoeffdingEstimator,
    Verdict,
    evaluate_estimator,
)
from repro.engine.aggregates import get_aggregate


def build_queries(rng: np.random.Generator, num_rows: int = 400_000) -> list[DatasetQuery]:
    """Two benign and two hostile queries on heavy-tailed data."""
    durations = rng.lognormal(3.0, 1.0, num_rows)
    payload = (rng.pareto(1.5, num_rows) + 1.0) * 1000.0  # very heavy tail
    return [
        DatasetQuery(durations, get_aggregate("AVG"), label="AVG(duration)"),
        DatasetQuery(
            durations,
            get_aggregate("SUM"),
            extensive=True,
            label="SUM(duration)",
        ),
        DatasetQuery(payload, get_aggregate("MAX"), label="MAX(payload)"),
        DatasetQuery(
            payload,
            get_aggregate("PERCENTILE", 0.999),
            label="P99.9(payload)",
        ),
    ]


def main(num_rows: int = 400_000, sample_size: int = 20_000, num_trials: int = 30) -> None:
    rng = np.random.default_rng(7)
    estimators = [
        BootstrapEstimator(100, rng),
        ClosedFormEstimator(),
        HoeffdingEstimator(),
    ]

    print(f"sample size n = {sample_size:,}; {num_trials} trial samples per cell; "
          "δ is the relative width deviation (0 = perfect)\n")
    header = f"{'query':18s}" + "".join(
        f"{est.name:>28s}" for est in estimators
    )
    print(header)
    print("-" * len(header))
    for query in build_queries(rng, num_rows):
        cells = []
        for estimator in estimators:
            outcome = evaluate_estimator(
                query, estimator, sample_size, rng, num_trials=num_trials
            )
            if outcome.verdict is Verdict.NOT_APPLICABLE:
                cells.append(f"{'n/a':>28s}")
            else:
                mean_delta = float(outcome.deltas.mean())
                cells.append(
                    f"{outcome.verdict.value:>15s} (δ̄={mean_delta:+6.2f})"
                )
        print(f"{query.label:18s}" + "".join(cells))

    print(
        "\nReading the table: the bootstrap and closed forms are accurate\n"
        "for mean-like queries but the bootstrap collapses (optimistic,\n"
        "δ̄ ≈ -1) on MAX and extreme percentiles, while Hoeffding bounds\n"
        "are reliable but massively pessimistic — exactly the paper's §3\n"
        "findings, and the reason a runtime diagnostic is needed."
    )


if __name__ == "__main__":
    main()
