PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test faults bench bench-baseline bench-smoke audit-smoke stress serve-stress chaos

check: lint test

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check .; \
	elif $(PYTHON) -c "import ruff" >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check .; \
	else \
		echo "ruff not installed; skipping lint (pip install ruff)"; \
	fi

test:
	$(PYTHON) -m pytest -x -q

# Fault-tolerance suite under forced parallelism: injected crashes,
# hangs, shm failures, and degradation paths at 4 workers.
faults:
	REPRO_WORKERS=4 $(PYTHON) -m pytest tests/test_faults.py -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ -q

bench-baseline:
	$(PYTHON) benchmarks/record_bench.py

# Seconds-long CI canary: shrunken bench workloads recorded to
# BENCH_smoke.json plus one traced query exported as chrome://tracing
# JSON; both are uploaded as build artifacts.  The timings are also
# diffed against the committed BENCH_smoke_baseline.json — the target
# FAILS if any tier-1 bench regresses by more than 25% beyond the noise
# floor, and the per-bench comparison table is written to
# benchmarks/results/bench_smoke_compare.json for the artifact upload.
# The catalog serving bench then replays the Conviva dashboard mix
# cold vs. warm and FAILS unless the warm hit rate is >= 90% and the
# median speedup >= 20x (report in
# benchmarks/results/catalog_serving.json).
bench-smoke:
	$(PYTHON) benchmarks/record_bench.py --smoke \
		--out benchmarks/results/BENCH_smoke.json \
		--trace-sample benchmarks/results/trace_sample.json \
		--compare --baseline BENCH_smoke_baseline.json \
		--compare-out benchmarks/results/bench_smoke_compare.json
	$(PYTHON) benchmarks/bench_catalog_serving.py --smoke \
		--out benchmarks/results/catalog_serving.json --check
	$(PYTHON) benchmarks/bench_bounded_queries.py --smoke \
		--out benchmarks/results/bounded_queries.json --check

# Calibration-audit smoke: ~1000 audited dashboard queries across
# cold/exact/partial routes and every degradation level, a seeded
# stale-cube fault, and the breach -> invalidate -> recover loop.
# FAILS if realized coverage leaves the +/- tolerance band around
# nominal, if the fault goes undetected, or if recovery stalls; the
# JSON report lands in benchmarks/results/audit.json.
audit-smoke:
	$(PYTHON) benchmarks/bench_audit_calibration.py \
		--out benchmarks/results/audit.json

# Overload stress: concurrent clients vs. the query governor at a
# quarter of the ungoverned peak memory.  Asserts zero crashes, zero
# dishonest answers, and budget compliance; writes the shed-rate /
# degradation-mix report to benchmarks/results/overload.json.
stress:
	$(PYTHON) benchmarks/bench_overload.py --smoke \
		--out benchmarks/results/overload.json

# Serving-tier stress: 4 tenants x closed-loop clients against the
# network serving tier at 1/4 of the ungoverned peak memory, then the
# same load plus a flooding tenant.  Asserts zero crashes, zero
# dishonest answers, flood containment within quota, steady-tenant p99
# within 2x of isolated, Jain fairness >= 0.8, and no accepted query
# left unresolved; writes the p50/p99/shed-rate/fairness report to
# benchmarks/results/serving.json.
serve-stress:
	$(PYTHON) benchmarks/bench_serving.py --smoke \
		--out benchmarks/results/serving.json

# End-to-end chaos harness: >= 25 seeded randomized fault schedules
# (worker + storage domains at once) against the Conviva dashboard
# mix.  Each schedule asserts the robustness invariants — no dishonest
# answers, bit-identity where promised, corrupt artifacts quarantined,
# zero orphaned shm segments or staging files, zero leaked memory
# reservations, governor never deadlocks — and the machine-readable
# invariant report lands in benchmarks/results/chaos.json.  FAILS on
# any violation.  The run also includes >= 10 serving-tier schedules
# (client disconnects mid-poll, slow readers, a flooding tenant, and a
# graceful drain fired mid-burst) asserting that every accepted query
# resolves to a result, a typed rejection, or an honest cancellation.
chaos:
	$(PYTHON) -m repro.chaos --seeds 25 --rows 2000 --queries 5 \
		--serving-seeds 10 \
		--out benchmarks/results/chaos.json
